//! Shared helpers for baseline planners.

use std::collections::BTreeMap;
use std::sync::Arc;

use spindle_cluster::ClusterSpec;
use spindle_core::{curves_for, MetaGraph, MetaOpId, PlanError, SpindleSession};
use spindle_estimator::{ScalabilityEstimator, ScalingCurve};
use spindle_graph::{ComputationGraph, TaskId};

/// Contracted graph, per-MetaOp curves and per-task MetaOp lists — the inputs
/// every baseline planner needs.
#[derive(Debug)]
pub struct BaselineContext {
    /// The contracted MetaGraph.
    pub metagraph: MetaGraph,
    /// Scaling curves per MetaOp.
    pub curves: BTreeMap<MetaOpId, Arc<ScalingCurve>>,
    /// The estimator (for memory queries). Shared with the planning session
    /// when the context is built through [`from_session`](Self::from_session),
    /// so baselines profile through the same persistent curve cache.
    pub estimator: Arc<ScalabilityEstimator>,
    /// MetaOps of each task, in dependency-level order.
    pub task_metaops: BTreeMap<TaskId, Vec<MetaOpId>>,
    /// Cluster size in devices.
    pub num_devices: u32,
}

impl BaselineContext {
    /// Builds the context for a workload on a cluster, with a fresh estimator
    /// (cold curve cache).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or an operator cannot be
    /// profiled.
    pub fn build(graph: &ComputationGraph, cluster: &ClusterSpec) -> Result<Self, PlanError> {
        Self::with_estimator(
            graph,
            Arc::new(ScalabilityEstimator::new(cluster)),
            cluster.num_devices() as u32,
        )
    }

    /// Builds the context for a workload inside a planning session, reusing
    /// the session's estimator and therefore its cross-plan curve cache.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or an operator cannot be
    /// profiled.
    pub fn from_session(
        graph: &ComputationGraph,
        session: &SpindleSession,
    ) -> Result<Self, PlanError> {
        Self::with_estimator(
            graph,
            session.estimator_handle(),
            session.cluster().num_devices() as u32,
        )
    }

    fn with_estimator(
        graph: &ComputationGraph,
        estimator: Arc<ScalabilityEstimator>,
        num_devices: u32,
    ) -> Result<Self, PlanError> {
        if num_devices == 0 {
            return Err(PlanError::EmptyCluster);
        }
        let metagraph = MetaGraph::contract(graph);
        let curves = curves_for(&metagraph, &estimator)?;
        let mut task_metaops: BTreeMap<TaskId, Vec<MetaOpId>> = BTreeMap::new();
        // Level-major order gives a valid sequential execution order per task.
        for level in metagraph.levels() {
            for &id in &level.metaops {
                task_metaops
                    .entry(metagraph.metaop(id).task())
                    .or_default()
                    .push(id);
            }
        }
        Ok(Self {
            metagraph,
            curves,
            estimator,
            task_metaops,
            num_devices,
        })
    }

    /// Per-device memory bytes of `layers` operators of a MetaOp at allocation
    /// `devices`.
    #[must_use]
    pub fn memory_per_device(&self, metaop: MetaOpId, devices: u32, layers: u32) -> u64 {
        let rep = self.metagraph.metaop(metaop).representative();
        self.estimator
            .memory_bytes(rep, devices)
            .saturating_mul(u64::from(layers))
    }

    /// The largest valid allocation of a MetaOp not exceeding `limit`.
    #[must_use]
    pub fn largest_valid_allocation(&self, metaop: MetaOpId, limit: u32) -> u32 {
        self.curves[&metaop]
            .valid_allocations()
            .iter()
            .filter(|&&(n, _)| n <= limit)
            .map(|&(n, _)| n)
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    #[test]
    fn context_collects_per_task_metaops_in_level_order() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("vl", [Modality::Vision, Modality::Text], 8);
        let enc = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(8, 257, 768),
                4,
            )
            .unwrap();
        let lm = b
            .add_op_chain(t, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 1024), 4)
            .unwrap();
        b.add_flow(*enc.last().unwrap(), lm[0]).unwrap();
        let graph = b.build().unwrap();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let ctx = BaselineContext::build(&graph, &cluster).unwrap();
        assert_eq!(ctx.num_devices, 8);
        assert_eq!(ctx.task_metaops.len(), 1);
        let metaops = &ctx.task_metaops[&TaskId(0)];
        assert_eq!(metaops.len(), 2);
        assert!(
            ctx.metagraph.metaop(metaops[0]).level() <= ctx.metagraph.metaop(metaops[1]).level()
        );
        assert!(ctx.largest_valid_allocation(metaops[0], 8) >= 4);
        assert!(ctx.memory_per_device(metaops[0], 8, 4) > 0);
    }

    #[test]
    fn session_contexts_share_the_curve_cache() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("vl", [Modality::Vision, Modality::Text], 8);
        b.add_op_chain(
            t,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(8, 257, 768),
            4,
        )
        .unwrap();
        let graph = b.build().unwrap();
        let session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let first = BaselineContext::from_session(&graph, &session).unwrap();
        let fits = session.curve_fits();
        assert!(fits > 0);
        let second = BaselineContext::from_session(&graph, &session).unwrap();
        // The second context re-used every curve the first one fitted.
        assert_eq!(session.curve_fits(), fits);
        assert!(Arc::ptr_eq(&first.estimator, &second.estimator));
    }
}
