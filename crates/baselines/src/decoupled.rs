//! Decoupled, sequentially executed baselines: Megatron-LM, DeepSpeed and
//! Spindle-Seq.
//!
//! The paper notes that naïvely decoupling sub-models onto separate devices is
//! impractical, so the SOTA baselines are evaluated by decoupling on the
//! *temporal* dimension: within an iteration each task occupies the whole
//! cluster for a slice of time and its operators execute one after another
//! (§5.1). Megatron-LM tunes a hybrid (data × tensor)-parallel configuration
//! per operator; DeepSpeed uses ZeRO-style pure data parallelism.

use std::time::Instant;

use spindle_cluster::{ClusterSpec, DeviceGroup, DeviceId};
use spindle_core::{ExecutionPlan, PlanError, PlanningSystem, SpindleSession, Wave, WaveEntry};
use spindle_estimator::{AnalyticGpuModel, ParallelConfig};
use spindle_graph::ComputationGraph;

use crate::common::BaselineContext;

/// The per-operator parallelisation style of a decoupled baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoupledParallelism {
    /// Megatron-LM-style: the best valid hybrid data × tensor configuration
    /// (manually tuned, here chosen by exhaustive search over valid configs).
    HybridBest,
    /// DeepSpeed-style: ZeRO data parallelism only.
    DataParallelOnly,
}

/// Planner for the decoupled (task-sequential, whole-cluster) baselines.
#[derive(Debug, Clone, Copy)]
pub struct DecoupledPlanner {
    parallelism: DecoupledParallelism,
}

impl DecoupledPlanner {
    /// Creates a decoupled planner with the given parallelisation style.
    #[must_use]
    pub fn new(parallelism: DecoupledParallelism) -> Self {
        Self { parallelism }
    }

    /// Produces the decoupled execution plan for `graph` on `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or profiling fails.
    pub fn plan(
        &self,
        graph: &ComputationGraph,
        cluster: &ClusterSpec,
    ) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let ctx = BaselineContext::build(graph, cluster)?;
        self.plan_with_context(ctx, cluster, started)
    }

    /// Lays out the decoupled schedule over an already-built context.
    fn plan_with_context(
        &self,
        ctx: BaselineContext,
        cluster: &ClusterSpec,
        started: Instant,
    ) -> Result<ExecutionPlan, PlanError> {
        let model = AnalyticGpuModel::new(cluster);
        let mut waves: Vec<Wave> = Vec::new();
        let mut now = 0.0f64;

        // Tasks execute one after another; within a task, operators execute in
        // dependency order, each occupying the whole cluster.
        for metaops in ctx.task_metaops.values() {
            for &metaop_id in metaops {
                let metaop = ctx.metagraph.metaop(metaop_id);
                let rep = metaop.representative();
                let (devices, time_per_op) = match self.parallelism {
                    DecoupledParallelism::HybridBest => {
                        let n = ctx.largest_valid_allocation(metaop_id, ctx.num_devices);
                        let t = ctx.curves[&metaop_id]
                            .time_at(n)
                            .unwrap_or_else(|| ctx.curves[&metaop_id].time(f64::from(n)));
                        (n, t)
                    }
                    DecoupledParallelism::DataParallelOnly => {
                        // Largest data-parallel degree that divides the batch.
                        let batch = rep.input_shape().batch;
                        let mut dp = 1;
                        for n in 1..=ctx.num_devices.min(batch) {
                            if batch % n == 0 {
                                dp = n;
                            }
                        }
                        let config = ParallelConfig { dp, tp: 1 };
                        (dp, model.execution_time_with_config(rep, config))
                    }
                };
                let layers = metaop.num_ops();
                let mut entry = WaveEntry::new(metaop_id, layers, devices, time_per_op);
                entry.memory_per_device = ctx.memory_per_device(metaop_id, devices, layers);
                entry.placement = Some(DeviceGroup::contiguous(DeviceId(0), devices as usize));
                let duration = entry.exec_time;
                waves.push(Wave {
                    index: waves.len(),
                    level: 0,
                    start: now,
                    duration,
                    entries: vec![entry],
                });
                now += duration;
            }
        }

        Ok(ExecutionPlan::new(
            waves,
            ctx.metagraph,
            ctx.num_devices,
            0.0,
            started.elapsed(),
        ))
    }
}

impl PlanningSystem for DecoupledPlanner {
    fn name(&self) -> &str {
        match self.parallelism {
            DecoupledParallelism::HybridBest => "Megatron-LM",
            DecoupledParallelism::DataParallelOnly => "DeepSpeed",
        }
    }

    fn plan(
        &mut self,
        graph: &ComputationGraph,
        session: &mut SpindleSession,
    ) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let ctx = BaselineContext::from_session(graph, session)?;
        self.plan_with_context(ctx, session.cluster(), started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_runtime::RuntimeEngine;
    use spindle_workloads::multitask_clip;

    #[test]
    fn decoupled_plan_is_valid_and_sequential() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = DecoupledPlanner::new(DecoupledParallelism::HybridBest)
            .plan(&graph, &cluster)
            .unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
        // One wave per MetaOp, strictly sequential.
        assert_eq!(plan.num_waves(), plan.metagraph().num_metaops());
        for pair in plan.waves().windows(2) {
            assert!(pair[1].start >= pair[0].end() - 1e-12);
        }
    }

    #[test]
    fn hybrid_is_at_least_as_fast_as_dp_only() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let megatron = DecoupledPlanner::new(DecoupledParallelism::HybridBest)
            .plan(&graph, &cluster)
            .unwrap();
        let deepspeed = DecoupledPlanner::new(DecoupledParallelism::DataParallelOnly)
            .plan(&graph, &cluster)
            .unwrap();
        assert!(megatron.makespan() <= deepspeed.makespan() * 1.001);
    }

    #[test]
    fn decoupled_execution_runs_through_the_runtime() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = DecoupledPlanner::new(DecoupledParallelism::DataParallelOnly)
            .plan(&graph, &cluster)
            .unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        assert!(report.iteration_time_ms() > 0.0);
    }

    #[test]
    fn whole_cluster_utilisation_fluctuates_for_heterogeneous_tasks() {
        // Fig. 1: decoupled execution of heterogeneous tasks leaves devices
        // underutilised during light operators.
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = DecoupledPlanner::new(DecoupledParallelism::HybridBest)
            .plan(&graph, &cluster)
            .unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let trace = report.utilization_trace();
        let max = trace.iter().map(|s| s.tflops_per_s).fold(0.0, f64::max);
        let min_busy = trace
            .iter()
            .filter(|s| s.tflops_per_s > 0.0)
            .map(|s| s.tflops_per_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max / min_busy > 2.0,
            "expected fluctuating utilisation, got {min_busy}..{max}"
        );
    }
}
