//! DistMM-MT: per-task intra-task resource allocation, tasks executed
//! sequentially (§5.1 baseline 3).
//!
//! DistMM allocates resources across the multi-tower modality encoders of a
//! *single* multi-modal task; DistMM-MT applies it to each task of an MT MM
//! workload in turn. Within one task this planner uses the same continuous
//! relaxation + discretisation + wave crafting machinery as Spindle — the
//! difference is purely that it never co-schedules operators of different
//! tasks, which is exactly the gap the paper attributes to it.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use spindle_cluster::ClusterSpec;
use spindle_core::{
    allocator, mpsp, placement, wavefront, ExecutionPlan, MetaOpId, PlacementStrategy, PlanError,
    PlanningSystem, SpindleSession, Wave,
};
use spindle_graph::ComputationGraph;

use crate::common::BaselineContext;

/// Planner implementing the DistMM-MT strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistMmMtPlanner;

impl DistMmMtPlanner {
    /// Creates the planner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Produces the DistMM-MT execution plan for `graph` on `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or profiling fails.
    pub fn plan(
        &self,
        graph: &ComputationGraph,
        cluster: &ClusterSpec,
    ) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let ctx = BaselineContext::build(graph, cluster)?;
        self.plan_with_context(ctx, cluster, started)
    }

    /// Lays out the DistMM-MT schedule over an already-built context.
    fn plan_with_context(
        &self,
        ctx: BaselineContext,
        cluster: &ClusterSpec,
        started: Instant,
    ) -> Result<ExecutionPlan, PlanError> {
        let mut waves: Vec<Wave> = Vec::new();
        let mut now = 0.0f64;

        for metaops in ctx.task_metaops.values() {
            // Group this task's MetaOps by dependency level.
            let mut by_level: BTreeMap<usize, Vec<MetaOpId>> = BTreeMap::new();
            for &id in metaops {
                by_level
                    .entry(ctx.metagraph.metaop(id).level())
                    .or_default()
                    .push(id);
            }
            for (level, ids) in by_level {
                let items: Vec<mpsp::MpspItem> = ids
                    .iter()
                    .map(|&id| mpsp::MpspItem {
                        metaop: id,
                        num_ops: ctx.metagraph.metaop(id).num_ops(),
                        curve: Arc::clone(&ctx.curves[&id]),
                    })
                    .collect();
                let solution = mpsp::solve(&items, ctx.num_devices, mpsp::DEFAULT_EPSILON);
                let alloc = allocator::discretize(&solution, &items);
                let curve_map: wavefront::CurveMap = ids
                    .iter()
                    .map(|&id| (id, Arc::clone(&ctx.curves[&id])))
                    .collect();
                let (mut level_waves, end) = wavefront::schedule_level(
                    &alloc,
                    &curve_map,
                    ctx.num_devices,
                    level,
                    now,
                    waves.len(),
                );
                for wave in &mut level_waves {
                    for entry in &mut wave.entries {
                        entry.memory_per_device =
                            ctx.memory_per_device(entry.metaop, entry.devices, entry.layers);
                    }
                }
                waves.extend(level_waves);
                now = end;
            }
        }

        // DistMM-MT plans every task against the full cluster, so waves of the
        // same task never overlap and placement can reuse Spindle's
        // locality-aware mechanism.
        let mut plan = ExecutionPlan::new(
            waves,
            ctx.metagraph,
            ctx.num_devices,
            0.0,
            started.elapsed(),
        );
        placement::place(&mut plan, cluster, PlacementStrategy::Locality)?;
        Ok(plan)
    }
}

impl PlanningSystem for DistMmMtPlanner {
    fn name(&self) -> &str {
        "DistMM-MT"
    }

    fn plan(
        &mut self,
        graph: &ComputationGraph,
        session: &mut SpindleSession,
    ) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let ctx = BaselineContext::from_session(graph, session)?;
        self.plan_with_context(ctx, session.cluster(), started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecoupledParallelism, DecoupledPlanner};
    use spindle_runtime::RuntimeEngine;
    use spindle_workloads::multitask_clip;

    #[test]
    fn distmm_plan_is_valid() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = DistMmMtPlanner::new().plan(&graph, &cluster).unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
    }

    #[test]
    fn distmm_beats_fully_decoupled_execution_on_multitower_tasks() {
        // DistMM-MT parallelises the two towers of each CLIP task, so it must
        // finish the compute portion faster than the one-operator-at-a-time
        // decoupled baseline.
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let distmm = DistMmMtPlanner::new().plan(&graph, &cluster).unwrap();
        let decoupled = DecoupledPlanner::new(DecoupledParallelism::DataParallelOnly)
            .plan(&graph, &cluster)
            .unwrap();
        assert!(distmm.makespan() < decoupled.makespan());
    }

    #[test]
    fn distmm_runs_through_runtime() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = DistMmMtPlanner::new().plan(&graph, &cluster).unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        assert!(report.iteration_time_ms() > 0.0);
    }
}
