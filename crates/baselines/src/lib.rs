//! # spindle-baselines
//!
//! The comparison systems of the Spindle evaluation (§5.1, Tab. 1a),
//! re-implemented as planners over the same computation-graph / cluster /
//! estimator substrate so that every system is executed by the same runtime
//! engine and measured identically:
//!
//! | System | Inter-task heterogeneity | Intra-task heterogeneity |
//! |---|---|---|
//! | Megatron-LM / DeepSpeed | ✗ | ✗ |
//! | DistMM-MT | ✗ | ✓ |
//! | Spindle-Optimus | ✓ | ✗ |
//! | Spindle | ✓ | ✓ |
//!
//! * **Megatron-LM / DeepSpeed** decouple the tasks in time: each task's
//!   sub-model takes the whole cluster for a slice of the iteration and its
//!   operators run one after another. Megatron-LM tunes a hybrid
//!   (data × tensor)-parallel configuration per operator; DeepSpeed uses
//!   ZeRO-style pure data parallelism.
//! * **DistMM-MT** extends DistMM to multiple tasks: within each task it
//!   allocates resources across the task's modality towers, but tasks still
//!   execute sequentially.
//! * **Spindle-Optimus** allocates whole-task device shares using Optimus'
//!   marginal-gain rule and runs tasks concurrently, each task executing its
//!   operators sequentially on its own devices.
//! * **Spindle-Seq** (Appendix H) is the decoupled strategy expressed through
//!   Spindle's own plan machinery — it quantifies the overhead of the Spindle
//!   implementation itself.
//!
//! All planners return ordinary [`ExecutionPlan`](spindle_core::ExecutionPlan)s.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
mod decoupled;
mod distmm;
mod optimus;
mod system;

pub use decoupled::{DecoupledParallelism, DecoupledPlanner};
pub use distmm::DistMmMtPlanner;
pub use optimus::OptimusPlanner;
pub use system::{BaselineSystem, SystemKind};

// Every planner here implements `PlanningSystem` against a `SpindleSession`;
// re-exported so harnesses depending on this crate get the trait in one hop.
pub use spindle_core::{PlanningSystem, SpindlePlanner, SpindleSession};
