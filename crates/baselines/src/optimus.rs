//! Spindle-Optimus: workload-aware *task-level* resource allocation
//! (§5.1 baseline 4).
//!
//! Inspired by the Optimus cluster scheduler, this baseline treats each task
//! as an indivisible job. Devices are handed out one valid increment at a time
//! to the task with the largest marginal gain
//! `(T(n) − T(n′)) / (n′ − n)` — the reduction in task completion time per
//! additional device. Tasks then run concurrently, each executing its
//! operators sequentially on its own device share. The coarse granularity is
//! the point: it captures inter-task heterogeneity but not the intra-task kind,
//! which is what separates it from Spindle in the evaluation.

use std::collections::BTreeMap;
use std::time::Instant;

use spindle_cluster::{ClusterSpec, DeviceGroup, DeviceId};
use spindle_core::{ExecutionPlan, PlanError, PlanningSystem, SpindleSession, Wave, WaveEntry};
use spindle_graph::{ComputationGraph, TaskId};

use crate::common::BaselineContext;

/// Planner implementing the Spindle-Optimus strategy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimusPlanner;

impl OptimusPlanner {
    /// Creates the planner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Produces the Spindle-Optimus execution plan for `graph` on `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or profiling fails.
    pub fn plan(
        &self,
        graph: &ComputationGraph,
        cluster: &ClusterSpec,
    ) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let ctx = BaselineContext::build(graph, cluster)?;
        self.plan_with_context(ctx, started)
    }

    /// Lays out the Spindle-Optimus schedule over an already-built context.
    fn plan_with_context(
        &self,
        ctx: BaselineContext,
        started: Instant,
    ) -> Result<ExecutionPlan, PlanError> {
        let tasks: Vec<TaskId> = ctx.task_metaops.keys().copied().collect();
        let n = ctx.num_devices;

        let mut waves: Vec<Wave> = Vec::new();
        let mut now = 0.0f64;
        // More tasks than devices: run them in concurrent groups of at most N.
        for group in tasks.chunks(n as usize) {
            let allocations = allocate_marginal_gain(&ctx, group, n);
            let group_end = self.emit_task_waves(&ctx, group, &allocations, now, &mut waves);
            now = group_end;
        }

        let mut plan = ExecutionPlan::new(
            waves,
            ctx.metagraph,
            ctx.num_devices,
            0.0,
            started.elapsed(),
        );
        sort_waves_by_start(&mut plan);
        Ok(plan)
    }

    /// Plans within a session, reusing its curve cache.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or profiling fails.
    pub fn plan_in_session(
        &self,
        graph: &ComputationGraph,
        session: &SpindleSession,
    ) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let ctx = BaselineContext::from_session(graph, session)?;
        self.plan_with_context(ctx, started)
    }

    /// Lays out each task's sequential operator execution on its contiguous
    /// device range, all tasks starting at `start`. Returns the end time of
    /// the slowest task.
    fn emit_task_waves(
        &self,
        ctx: &BaselineContext,
        tasks: &[TaskId],
        allocations: &BTreeMap<TaskId, u32>,
        start: f64,
        waves: &mut Vec<Wave>,
    ) -> f64 {
        let mut first_device = 0u32;
        let mut group_end = start;
        for &task in tasks {
            let devices = allocations[&task];
            let placement_base = DeviceId(first_device);
            let mut now = start;
            for &metaop_id in &ctx.task_metaops[&task] {
                let metaop = ctx.metagraph.metaop(metaop_id);
                let alloc = ctx.largest_valid_allocation(metaop_id, devices);
                let time_per_op = ctx.curves[&metaop_id]
                    .time_at(alloc)
                    .unwrap_or_else(|| ctx.curves[&metaop_id].time(f64::from(alloc)));
                let layers = metaop.num_ops();
                let mut entry = WaveEntry::new(metaop_id, layers, alloc, time_per_op);
                entry.memory_per_device = ctx.memory_per_device(metaop_id, alloc, layers);
                entry.placement = Some(DeviceGroup::contiguous(placement_base, alloc as usize));
                let duration = entry.exec_time;
                waves.push(Wave {
                    index: 0, // re-indexed after sorting
                    level: 0,
                    start: now,
                    duration,
                    entries: vec![entry],
                });
                now += duration;
            }
            group_end = group_end.max(now);
            first_device += devices;
        }
        group_end
    }
}

impl PlanningSystem for OptimusPlanner {
    fn name(&self) -> &str {
        "Spindle-Optimus"
    }

    fn plan(
        &mut self,
        graph: &ComputationGraph,
        session: &mut SpindleSession,
    ) -> Result<ExecutionPlan, PlanError> {
        self.plan_in_session(graph, session)
    }
}

/// Completion time of a task when its operators execute sequentially on `n`
/// devices.
fn task_time(ctx: &BaselineContext, task: TaskId, n: u32) -> f64 {
    ctx.task_metaops[&task]
        .iter()
        .map(|&id| {
            let alloc = ctx.largest_valid_allocation(id, n);
            let t = ctx.curves[&id]
                .time_at(alloc)
                .unwrap_or_else(|| ctx.curves[&id].time(f64::from(alloc)));
            t * f64::from(ctx.metagraph.metaop(id).num_ops())
        })
        .sum()
}

/// The next allocation larger than `current` at which the task actually runs
/// faster (Optimus' "next valid allocation number larger than n"). Returns the
/// allocation and the resulting task time, or `None` if no larger allocation
/// within `limit` helps.
fn next_useful_allocation(
    ctx: &BaselineContext,
    task: TaskId,
    current: u32,
    limit: u32,
) -> Option<(u32, f64)> {
    let t_current = task_time(ctx, task, current);
    (current + 1..=limit)
        .map(|n| (n, task_time(ctx, task, n)))
        .find(|&(_, t)| t < t_current * (1.0 - 1e-9))
}

/// Optimus marginal-gain allocation: every task starts with one device; spare
/// devices go, one valid increment at a time, to the task whose completion
/// time shrinks the most per added device.
fn allocate_marginal_gain(
    ctx: &BaselineContext,
    tasks: &[TaskId],
    num_devices: u32,
) -> BTreeMap<TaskId, u32> {
    let mut alloc: BTreeMap<TaskId, u32> = tasks.iter().map(|&t| (t, 1u32)).collect();
    let mut remaining = num_devices.saturating_sub(tasks.len() as u32);
    while remaining > 0 {
        let mut best: Option<(TaskId, u32, f64)> = None;
        for &task in tasks {
            let current = alloc[&task];
            let limit = current + remaining;
            let Some((next, t_next)) = next_useful_allocation(ctx, task, current, limit) else {
                continue;
            };
            let gain = (task_time(ctx, task, current) - t_next) / f64::from(next - current);
            if best.map_or(true, |(_, _, g)| gain > g) {
                best = Some((task, next, gain));
            }
        }
        match best {
            Some((task, next, gain)) if gain > 0.0 => {
                let current = alloc[&task];
                remaining -= next - current;
                *alloc.get_mut(&task).expect("task present") = next;
            }
            // No task benefits from more devices: stop handing them out.
            _ => break,
        }
    }
    alloc
}

/// Sorts waves by start time and re-indexes them (waves of concurrent tasks
/// interleave on the timeline).
fn sort_waves_by_start(plan: &mut ExecutionPlan) {
    let mut waves = plan.waves().to_vec();
    waves.sort_by(|a, b| a.start.total_cmp(&b.start));
    for (i, wave) in waves.iter_mut().enumerate() {
        wave.index = i;
    }
    *plan = ExecutionPlan::new(
        waves,
        plan.metagraph().clone(),
        plan.num_devices(),
        plan.theoretical_optimum(),
        plan.planning_time(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DecoupledParallelism, DecoupledPlanner};
    use spindle_runtime::RuntimeEngine;
    use spindle_workloads::{multitask_clip, ofasys};

    #[test]
    fn optimus_plan_is_valid_and_runs() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = OptimusPlanner::new().plan(&graph, &cluster).unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        assert!(report.iteration_time_ms() > 0.0);
    }

    #[test]
    fn concurrent_tasks_use_disjoint_devices() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = OptimusPlanner::new().plan(&graph, &cluster).unwrap();
        // Any two waves overlapping in time must not share devices.
        let waves = plan.waves();
        for (i, a) in waves.iter().enumerate() {
            for b in waves.iter().skip(i + 1) {
                let overlap = a.start < b.end() - 1e-12 && b.start < a.end() - 1e-12;
                if !overlap {
                    continue;
                }
                for ea in &a.entries {
                    for eb in &b.entries {
                        let ga = ea.placement.as_ref().unwrap();
                        let gb = eb.placement.as_ref().unwrap();
                        assert!(
                            !ga.overlaps(gb),
                            "waves {} and {} overlap on devices",
                            a.index,
                            b.index
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn task_parallelism_beats_pure_sequential_execution_at_scale() {
        // Fig. 8 shows Spindle-Optimus losing to DeepSpeed on one node but
        // clearly winning at four nodes, where task-level parallelism has room
        // to pay off; this checks the four-node side of that trend.
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(4, 8);
        let optimus = OptimusPlanner::new().plan(&graph, &cluster).unwrap();
        let decoupled = DecoupledPlanner::new(DecoupledParallelism::DataParallelOnly)
            .plan(&graph, &cluster)
            .unwrap();
        assert!(optimus.makespan() < decoupled.makespan());
    }

    #[test]
    fn heavier_tasks_receive_more_devices() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let ctx = BaselineContext::build(&graph, &cluster).unwrap();
        let tasks: Vec<TaskId> = ctx.task_metaops.keys().copied().collect();
        let alloc = allocate_marginal_gain(&ctx, &tasks, 16);
        let total: u32 = alloc.values().sum();
        assert!(total <= 16);
        // The heaviest task (by serial time) gets at least as many devices as
        // the lightest.
        let heaviest = tasks
            .iter()
            .copied()
            .max_by(|&a, &b| task_time(&ctx, a, 1).total_cmp(&task_time(&ctx, b, 1)))
            .unwrap();
        let lightest = tasks
            .iter()
            .copied()
            .min_by(|&a, &b| task_time(&ctx, a, 1).total_cmp(&task_time(&ctx, b, 1)))
            .unwrap();
        assert!(alloc[&heaviest] >= alloc[&lightest]);
    }

    #[test]
    fn more_tasks_than_devices_are_chunked() {
        let graph = ofasys(7).unwrap();
        let cluster = ClusterSpec::homogeneous(1, 4);
        let plan = OptimusPlanner::new().plan(&graph, &cluster).unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
    }
}
