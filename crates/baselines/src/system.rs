//! Uniform dispatch over all evaluated systems (Spindle + baselines).

use std::fmt;

use spindle_core::{ExecutionPlan, PlanError, PlanningSystem, SpindlePlanner, SpindleSession};
use spindle_graph::ComputationGraph;

use crate::{DecoupledParallelism, DecoupledPlanner, DistMmMtPlanner, OptimusPlanner};

/// Every system compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SystemKind {
    /// Spindle: the full wavefront-scheduling planner.
    Spindle,
    /// Spindle-Optimus: task-level marginal-gain allocation.
    SpindleOptimus,
    /// DistMM-MT: intra-task allocation, tasks executed sequentially.
    DistMmMt,
    /// Megatron-LM-style decoupled execution (hybrid parallelism per operator).
    MegatronLM,
    /// DeepSpeed-style decoupled execution (ZeRO data parallelism).
    DeepSpeed,
    /// Spindle-Seq: the decoupled strategy on Spindle's machinery (Appendix H).
    SpindleSeq,
}

impl SystemKind {
    /// All systems of Fig. 8, in the paper's legend order.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Spindle,
        SystemKind::SpindleOptimus,
        SystemKind::DistMmMt,
        SystemKind::MegatronLM,
        SystemKind::DeepSpeed,
    ];

    /// Display label used by the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Spindle => "Spindle",
            SystemKind::SpindleOptimus => "Spindle-Optimus",
            SystemKind::DistMmMt => "DistMM-MT",
            SystemKind::MegatronLM => "Megatron-LM",
            SystemKind::DeepSpeed => "DeepSpeed",
            SystemKind::SpindleSeq => "Spindle-Seq",
        }
    }

    /// Whether the system is aware of inter-task workload heterogeneity
    /// (Tab. 1a, first column).
    #[must_use]
    pub fn inter_task_aware(&self) -> bool {
        matches!(self, SystemKind::Spindle | SystemKind::SpindleOptimus)
    }

    /// Whether the system is aware of intra-task workload heterogeneity
    /// (Tab. 1a, second column).
    #[must_use]
    pub fn intra_task_aware(&self) -> bool {
        matches!(self, SystemKind::Spindle | SystemKind::DistMmMt)
    }

    /// Instantiates the [`PlanningSystem`] implementing this kind — the single
    /// place that maps kinds to planners. Experiment harnesses call this once
    /// and then drive every system through the trait.
    #[must_use]
    pub fn planning_system(self) -> Box<dyn PlanningSystem> {
        match self {
            SystemKind::Spindle => Box::new(SpindlePlanner::new()),
            SystemKind::SpindleOptimus => Box::new(OptimusPlanner::new()),
            SystemKind::DistMmMt => Box::new(DistMmMtPlanner::new()),
            SystemKind::MegatronLM => {
                Box::new(DecoupledPlanner::new(DecoupledParallelism::HybridBest))
            }
            SystemKind::DeepSpeed | SystemKind::SpindleSeq => Box::new(DecoupledPlanner::new(
                DecoupledParallelism::DataParallelOnly,
            )),
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A system under evaluation: produces an [`ExecutionPlan`] for any workload /
/// cluster pair, so that the same runtime engine can measure all of them.
///
/// `BaselineSystem` is itself a [`PlanningSystem`], dispatching to the planner
/// of its kind; harnesses that iterate over [`SystemKind::ALL`] usually call
/// [`SystemKind::planning_system`] directly instead.
#[derive(Debug, Clone, Copy)]
pub struct BaselineSystem {
    kind: SystemKind,
}

impl BaselineSystem {
    /// Creates the system of the given kind.
    #[must_use]
    pub fn new(kind: SystemKind) -> Self {
        Self { kind }
    }

    /// The system's kind.
    #[must_use]
    pub fn kind(&self) -> SystemKind {
        self.kind
    }
}

impl PlanningSystem for BaselineSystem {
    fn name(&self) -> &str {
        self.kind.label()
    }

    fn plan(
        &mut self,
        graph: &ComputationGraph,
        session: &mut SpindleSession,
    ) -> Result<ExecutionPlan, PlanError> {
        self.kind.planning_system().plan(graph, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_runtime::RuntimeEngine;
    use spindle_workloads::multitask_clip;

    #[test]
    fn labels_and_awareness_match_table_1a() {
        assert_eq!(SystemKind::ALL.len(), 5);
        assert!(SystemKind::Spindle.inter_task_aware() && SystemKind::Spindle.intra_task_aware());
        assert!(SystemKind::SpindleOptimus.inter_task_aware());
        assert!(!SystemKind::SpindleOptimus.intra_task_aware());
        assert!(!SystemKind::DistMmMt.inter_task_aware());
        assert!(SystemKind::DistMmMt.intra_task_aware());
        assert!(!SystemKind::DeepSpeed.inter_task_aware());
        assert!(!SystemKind::MegatronLM.intra_task_aware());
        assert_eq!(SystemKind::Spindle.to_string(), "Spindle");
        assert_eq!(SystemKind::DistMmMt.label(), "DistMM-MT");
    }

    #[test]
    fn every_system_plans_and_runs_the_same_workload() {
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(1, 8);
        // One shared session: every system profiles through one curve cache.
        let mut session = SpindleSession::new(cluster.clone());
        for kind in SystemKind::ALL {
            let mut system = kind.planning_system();
            let plan = system.plan(&graph, &mut session).unwrap();
            plan.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            let report = RuntimeEngine::new(plan, &cluster)
                .with_graph(&graph)
                .run_iteration()
                .unwrap();
            assert!(report.iteration_time_ms() > 0.0, "{kind}");
        }
        // After the first system fitted the curves, the rest were cache-served.
        assert!(session.cache_stats().hits > 0);
    }

    #[test]
    fn trait_names_match_kind_labels() {
        for kind in SystemKind::ALL {
            let system = kind.planning_system();
            assert_eq!(system.name(), kind.label(), "{kind}");
        }
        let spindle_seq = SystemKind::SpindleSeq.planning_system();
        assert_eq!(spindle_seq.name(), "DeepSpeed"); // same decoupled strategy
        let mut dispatcher = BaselineSystem::new(SystemKind::DistMmMt);
        assert_eq!(dispatcher.kind(), SystemKind::DistMmMt);
        assert_eq!(PlanningSystem::name(&dispatcher), "DistMM-MT");
        let graph = multitask_clip(2).unwrap();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let plan = PlanningSystem::plan(&mut dispatcher, &graph, &mut session).unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn spindle_is_fastest_on_the_case_study_workload() {
        // The headline claim (Fig. 8 / Fig. 9): on Multitask-CLIP with 4 tasks
        // and 16 GPUs, Spindle beats every baseline end to end.
        let graph = multitask_clip(4).unwrap();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let mut session = SpindleSession::new(cluster.clone());
        let mut times = std::collections::BTreeMap::new();
        for kind in SystemKind::ALL {
            let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
            let report = RuntimeEngine::new(plan, &cluster)
                .with_graph(&graph)
                .run_iteration()
                .unwrap();
            times.insert(kind, report.iteration_time_ms());
        }
        let spindle = times[&SystemKind::Spindle];
        for (kind, time) in &times {
            if *kind != SystemKind::Spindle {
                assert!(
                    spindle <= *time * 1.02,
                    "Spindle ({spindle:.1} ms) should not lose to {kind} ({time:.1} ms)"
                );
            }
        }
        // And it should meaningfully beat the task-sequential SOTA systems.
        assert!(times[&SystemKind::DeepSpeed] / spindle > 1.1);
    }
}
