//! Benchmarks over the *measured quantity* of the paper's headline figure:
//! simulated end-to-end iteration time of each system (Fig. 8 cells).
//!
//! `cargo bench -p spindle-bench --bench experiments` reports, for the
//! Multitask-CLIP 4-task workload on 16 GPUs, how long it takes each system's
//! planner + simulated runtime to produce its iteration measurement. The
//! experiment binaries in `src/bin/` print the full tables; these benches keep
//! the planning+simulation pipeline itself under performance regression watch.

use std::sync::Arc;

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::microbench::{bench, group};
use spindle_cluster::ClusterSpec;
use spindle_runtime::RuntimeEngine;
use spindle_workloads::multitask_clip;

fn bench_fig8_cell() {
    group("fig8-clip4t-16gpu (plan + simulate, warm session)");
    // Arc handles are created outside the timed closure so the measurement
    // covers planning + simulation, not deep copies of the workload graph.
    let graph = Arc::new(multitask_clip(4).unwrap());
    let cluster = ClusterSpec::homogeneous(2, 8);
    let mut session = SpindleSession::new(cluster.clone());
    for kind in SystemKind::ALL {
        bench(kind.label(), 1, 10, || {
            let plan = kind.planning_system().plan(&graph, &mut session).unwrap();
            let _ = RuntimeEngine::new(plan, &cluster)
                .with_graph(Arc::clone(&graph))
                .run_iteration()
                .unwrap()
                .iteration_time_ms();
        });
    }
}

fn bench_simulation_only() {
    group("runtime-simulation");
    let graph = Arc::new(multitask_clip(10).unwrap());
    let cluster = ClusterSpec::homogeneous(4, 8);
    let mut session = SpindleSession::new(cluster.clone());
    let plan = Arc::new(
        SystemKind::Spindle
            .planning_system()
            .plan(&graph, &mut session)
            .unwrap(),
    );
    bench("clip-10t-32gpu", 1, 10, || {
        let _ = RuntimeEngine::new(Arc::clone(&plan), &cluster)
            .with_graph(Arc::clone(&graph))
            .run_iteration()
            .unwrap();
    });
}

fn main() {
    bench_fig8_cell();
    bench_simulation_only();
}
