//! Criterion benchmarks over the *measured quantity* of the paper's headline
//! figure: simulated end-to-end iteration time of each system (Fig. 8 cells).
//!
//! `cargo bench -p spindle-bench --bench experiments` reports, for the
//! Multitask-CLIP 4-task workload on 16 GPUs, how long it takes each system's
//! planner + simulated runtime to produce its iteration measurement. The
//! experiment binaries in `src/bin/` print the full tables; these benches keep
//! the planning+simulation pipeline itself under performance regression watch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spindle_baselines::{BaselineSystem, SystemKind};
use spindle_cluster::ClusterSpec;
use spindle_runtime::RuntimeEngine;
use spindle_workloads::multitask_clip;

fn bench_fig8_cell(c: &mut Criterion) {
    let graph = multitask_clip(4).unwrap();
    let cluster = ClusterSpec::homogeneous(2, 8);
    let mut group = c.benchmark_group("fig8-clip4t-16gpu");
    group.sample_size(10);
    for kind in SystemKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                let plan = BaselineSystem::new(kind).plan(&graph, &cluster).unwrap();
                RuntimeEngine::new(&plan, &cluster)
                    .with_graph(&graph)
                    .run_iteration()
                    .unwrap()
                    .iteration_time_ms()
            });
        });
    }
    group.finish();
}

fn bench_simulation_only(c: &mut Criterion) {
    let graph = multitask_clip(10).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let plan = BaselineSystem::new(SystemKind::Spindle).plan(&graph, &cluster).unwrap();
    c.bench_function("runtime-simulation/clip-10t-32gpu", |b| {
        b.iter(|| {
            RuntimeEngine::new(&plan, &cluster)
                .with_graph(&graph)
                .run_iteration()
                .unwrap()
        });
    });
}

criterion_group!(benches, bench_fig8_cell, bench_simulation_only);
criterion_main!(benches);
