//! Incremental delta re-planning under task churn: the structural plan cache
//! versus the full pipeline, at paper scale and at hyperscale.
//!
//! Every case alternates between two task mixes that differ by exactly one
//! task (the single-task-churn regime of dynamic schedules) against a
//! session whose curve cache *and* structural cache are warm, so the numbers
//! isolate the cost of re-planning itself:
//!
//! * `incremental_replan_*` — structural cache on (the default): clean
//!   levels are spliced, recurring structures reuse the placed skeleton.
//! * `full_replan_*` — structural cache off: contraction, MPSP, wavefront
//!   scheduling, memory estimation and placement all re-run (the pre-cache
//!   warm path).
//!
//! The printed bench lines time the alternating *pair*; the JSON report
//! records the halved mean, i.e. **ns per re-plan**, in
//! `BENCH_incremental.json`. Quick mode (`SPINDLE_BENCH_QUICK=1`) shrinks
//! iteration counts for the CI gate.
//!
//! ```bash
//! cargo bench -p spindle-bench --bench incremental_replan
//! ```

use std::path::PathBuf;

use spindle_bench::microbench::{bench, group, quick_mode, write_json_report, Timing};
use spindle_cluster::ClusterSpec;
use spindle_core::{PlannerConfig, SpindleSession};
use spindle_graph::ComputationGraph;
use spindle_workloads::{hyperscale_subset, multitask_clip, HYPERSCALE_DEFAULT_TASKS};

fn report_path() -> PathBuf {
    if let Ok(path) = std::env::var("SPINDLE_BENCH_OUT") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json")
}

/// Halves a pair timing into a per-replan timing.
fn per_replan(pair: Timing) -> Timing {
    Timing {
        iters: pair.iters,
        min: pair.min / 2,
        mean: pair.mean / 2,
        max: pair.max / 2,
    }
}

/// One alternating single-task-churn case: the two task mixes, the cluster,
/// and whether the structural cache is on.
struct ChurnCase<'a> {
    name: &'a str,
    cluster: &'a ClusterSpec,
    a: &'a ComputationGraph,
    b: &'a ComputationGraph,
    structural: bool,
}

/// Benches alternating single-task-churn re-plans, with the structural cache
/// on or off. The session is pre-warmed on both mixes so the measurement
/// captures steady-state churn, not first-sight fitting.
fn churn_case(
    case: &ChurnCase<'_>,
    warmup: u32,
    iters: u32,
    report: &mut Vec<(String, Timing)>,
) -> Timing {
    let ChurnCase {
        name,
        cluster,
        a,
        b,
        structural,
    } = *case;
    let config = PlannerConfig {
        structural_cache: structural,
        ..PlannerConfig::default()
    };
    let mut session = SpindleSession::with_config(cluster.clone(), config);
    session.plan(a).unwrap();
    session.plan(b).unwrap();
    let t = bench(name, warmup, iters, || {
        let _ = session.replan(a).unwrap();
        let _ = session.replan(b).unwrap();
    });
    let t = per_replan(t);
    if structural {
        // The measured regime must actually be incremental; assert it.
        let probe = session.replan(a).unwrap();
        assert_eq!(
            probe.levels_reused, probe.levels_total,
            "warm churn re-plans must be served structurally"
        );
    }
    report.push((name.to_string(), t));
    t
}

fn main() {
    let quick = quick_mode();
    let (warmup, iters) = if quick { (1, 3) } else { (3, 30) };
    println!(
        "incremental_replan: per-replan cost of single-task churn{}",
        if quick { " (quick mode)" } else { "" }
    );
    let mut report: Vec<(String, Timing)> = Vec::new();

    // -- Paper scale: Multitask-CLIP, 10 vs 9 tasks on 32 GPUs ---------------
    group("paper scale: clip 10<->9 tasks, 32 gpus");
    let clip_cluster = ClusterSpec::homogeneous(4, 8);
    let clip10 = multitask_clip(10).unwrap();
    let clip9 = multitask_clip(9).unwrap();
    let inc = churn_case(
        &ChurnCase {
            name: "incremental_replan_clip-10t/32gpu",
            cluster: &clip_cluster,
            a: &clip10,
            b: &clip9,
            structural: true,
        },
        warmup,
        iters,
        &mut report,
    );
    let full = churn_case(
        &ChurnCase {
            name: "full_replan_clip-10t/32gpu",
            cluster: &clip_cluster,
            a: &clip10,
            b: &clip9,
            structural: false,
        },
        warmup,
        iters,
        &mut report,
    );
    let clip_speedup = full.mean.as_secs_f64() / inc.mean.as_secs_f64();
    println!("incremental speedup over full re-plan (clip-10t/32gpu): {clip_speedup:.2}x");

    // -- Hyperscale: 48 tasks churning one shallow task on 256 GPUs ----------
    group("hyperscale: 48<->47 tasks, 256 gpus");
    let hyper_cluster = ClusterSpec::homogeneous(32, 8);
    let all: Vec<usize> = (0..HYPERSCALE_DEFAULT_TASKS).collect();
    // Slot 1 is a shallow task: its departure leaves the deep-only levels
    // clean, so even first-sight churn is partially incremental.
    let minus_one: Vec<usize> = all.iter().copied().filter(|&s| s != 1).collect();
    let hyper_a = hyperscale_subset(&all).unwrap();
    let hyper_b = hyperscale_subset(&minus_one).unwrap();
    let inc = churn_case(
        &ChurnCase {
            name: "incremental_replan_hyperscale-48t/256gpu",
            cluster: &hyper_cluster,
            a: &hyper_a,
            b: &hyper_b,
            structural: true,
        },
        warmup,
        iters,
        &mut report,
    );
    let full = churn_case(
        &ChurnCase {
            name: "full_replan_hyperscale-48t/256gpu",
            cluster: &hyper_cluster,
            a: &hyper_a,
            b: &hyper_b,
            structural: false,
        },
        warmup,
        iters,
        &mut report,
    );
    let hyper_speedup = full.mean.as_secs_f64() / inc.mean.as_secs_f64();
    println!("incremental speedup over full re-plan (hyperscale-48t/256gpu): {hyper_speedup:.2}x");

    // Context: what a cold hyperscale plan costs (fresh session each pass —
    // dominated by first-time curve fitting).
    let cold = bench("cold_plan_hyperscale-48t/256gpu", 0, iters.min(5), || {
        let _ = SpindleSession::new(hyper_cluster.clone())
            .plan(&hyper_a)
            .unwrap();
    });
    report.push(("cold_plan_hyperscale-48t/256gpu".to_string(), cold));

    // The acceptance bars of the incremental re-planning work. Guarded only
    // outside quick mode: CI smoke iteration counts are too small for stable
    // ratios (the perf gate tracks absolute regressions instead).
    if !quick {
        assert!(
            clip_speedup >= 3.0,
            "single-task churn at paper scale must be >=3x faster incrementally, got {clip_speedup:.2}x"
        );
        assert!(
            hyper_speedup >= 5.0,
            "hyperscale churn must be >=5x faster incrementally, got {hyper_speedup:.2}x"
        );
    }

    // -- Elastic topology churn: migration-aware partial re-plan -------------
    // One device dies, the session re-plans onto the survivors (clean-prefix
    // placements reused, migration priced), the device returns, the session
    // re-plans back. The halved pair is the steady-state latency of one
    // topology-change re-plan — the number the elastic service pays per
    // tenant on every churn broadcast.
    group("elastic churn: device loss -> re-plan -> restore -> re-plan");
    let mut session = SpindleSession::new(clip_cluster.clone());
    session.plan(&clip10).unwrap();
    let dead = [spindle_cluster::DeviceId(31)];
    // First sight of the shrunk topology must actually be migration-aware
    // churn; afterwards the loss-keyed placement is cached and steady-state
    // churn re-plans are served structurally (devices_lost 0 against the
    // cached shrunk placement) — exactly the regime the bench times.
    session.remove_devices(&dead).unwrap();
    let probe = session.replan(&clip10).unwrap();
    assert_eq!(
        probe.devices_lost, 1,
        "loss re-plan must see the dead device"
    );
    session.restore_devices(&dead);
    session.replan(&clip10).unwrap();
    let t = bench("churn_replan_clip-10t/32gpu", warmup, iters, || {
        session.remove_devices(&dead).unwrap();
        let _ = session.replan(&clip10).unwrap();
        session.restore_devices(&dead);
        let _ = session.replan(&clip10).unwrap();
    });
    report.push(("churn_replan_clip-10t/32gpu".to_string(), per_replan(t)));

    let mut session = SpindleSession::new(hyper_cluster.clone());
    session.plan(&hyper_a).unwrap();
    let dead = [spindle_cluster::DeviceId(255)];
    let t = bench("churn_replan_hyperscale-48t/256gpu", warmup, iters, || {
        session.remove_devices(&dead).unwrap();
        let _ = session.replan(&hyper_a).unwrap();
        session.restore_devices(&dead);
        let _ = session.replan(&hyper_a).unwrap();
    });
    report.push((
        "churn_replan_hyperscale-48t/256gpu".to_string(),
        per_replan(t),
    ));

    // -- Recovery re-plan: whole-node loss with restore accounting -----------
    // An entire NVLink island dies, so some MetaOps lose every replica: the
    // re-plan must detect them, and the runtime partitions the delta into
    // migration flows and priced storage restores. The halved pair is the
    // steady-state latency of one recovery-aware re-plan *including* flow
    // derivation and restore pricing — the full control-plane cost of a
    // fault, minus the simulated data movement itself.
    group("recovery re-plan: whole-node loss -> restore-priced re-plan");
    let recovery_cluster = ClusterSpec::homogeneous(2, 4)
        .with_storage(spindle_cluster::StorageSpec::disaggregated_nvme());
    let clip5 = multitask_clip(5).unwrap();
    let policy = spindle_runtime::CheckpointPolicy::every(64);
    let node1: Vec<spindle_cluster::DeviceId> = (4..8).map(spindle_cluster::DeviceId).collect();
    let mut session = SpindleSession::new(recovery_cluster.clone());
    let mut prev = session.plan(&clip5).unwrap();
    // Prove the case exercises the restore path before timing it.
    session.remove_devices(&node1).unwrap();
    let shrunk = session.replan(&clip5).unwrap();
    let probe = spindle_runtime::migration_flows(&prev, &shrunk.plan, &session.cluster_handle());
    assert!(
        probe.restore_bytes() > 0,
        "whole-node loss must strand MetaOps for the recovery bench to be honest"
    );
    session.restore_devices(&node1);
    prev = session.replan(&clip5).unwrap().plan;
    let t = bench("recovery_replan_clip-5t/8gpu", warmup, iters, || {
        session.remove_devices(&node1).unwrap();
        let outcome = session.replan(&clip5).unwrap();
        let migration =
            spindle_runtime::migration_flows(&prev, &outcome.plan, &session.cluster_handle());
        let stall = spindle_runtime::price_restore(
            &session.cluster_handle(),
            &migration.restores,
            &policy,
            true,
        );
        assert!(stall.is_finite());
        session.restore_devices(&node1);
        prev = session.replan(&clip5).unwrap().plan;
    });
    report.push(("recovery_replan_clip-5t/8gpu".to_string(), per_replan(t)));

    let path = report_path();
    write_json_report(&path, &report).expect("write BENCH_incremental.json");
    println!("\nwrote {} entries to {}", report.len(), path.display());
}
