//! Micro-benchmarks of the Spindle execution planner's components
//! (Fig. 12's complexity analysis, broken down by stage): graph contraction,
//! the continuous MPSP solve, wavefront scheduling, device placement and the
//! end-to-end `SpindleSession::plan` call.
//!
//! ```bash
//! cargo bench -p spindle-bench --bench planner
//! ```

use std::sync::Arc;

use spindle_bench::microbench::{bench, group};
use spindle_cluster::ClusterSpec;
use spindle_core::{
    allocator, curves_for, mpsp, placement, wavefront, MetaGraph, PlacementStrategy, SpindleSession,
};
use spindle_estimator::ScalabilityEstimator;
use spindle_workloads::{multitask_clip, ofasys, qwen_val, QwenValSize};

fn bench_contraction() {
    group("contraction");
    for (name, graph) in [
        ("clip-10t", multitask_clip(10).unwrap()),
        ("ofasys-7t", ofasys(7).unwrap()),
        ("qwen-val", qwen_val(QwenValSize::B9).unwrap()),
    ] {
        bench(name, 2, 20, || {
            let _ = MetaGraph::contract(&graph);
        });
    }
}

fn bench_mpsp() {
    group("mpsp + discretisation + wavefront (clip-10t level 0)");
    let graph = multitask_clip(10).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let metagraph = MetaGraph::contract(&graph);
    let estimator = ScalabilityEstimator::new(&cluster);
    let curves = curves_for(&metagraph, &estimator).unwrap();
    let level = &metagraph.levels()[0];
    let items: Vec<mpsp::MpspItem> = level
        .metaops
        .iter()
        .map(|&id| mpsp::MpspItem {
            metaop: id,
            num_ops: metagraph.metaop(id).num_ops(),
            curve: Arc::clone(&curves[&id]),
        })
        .collect();
    bench("mpsp-bisection", 2, 20, || {
        let _ = mpsp::solve(&items, 32, mpsp::DEFAULT_EPSILON);
    });
    let solution = mpsp::solve(&items, 32, mpsp::DEFAULT_EPSILON);
    bench("bi-point-discretisation", 2, 20, || {
        let _ = allocator::discretize(&solution, &items);
    });
    let plan = allocator::discretize(&solution, &items);
    bench("wavefront-scheduling", 2, 20, || {
        let _ = wavefront::schedule_level(&plan, &curves, 32, 0, 0.0, 0);
    });
}

fn bench_placement() {
    group("device-placement");
    let graph = multitask_clip(10).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let unplaced = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
    for strategy in [PlacementStrategy::Locality, PlacementStrategy::Sequential] {
        bench(&format!("{strategy:?}"), 2, 20, || {
            let mut plan = unplaced.clone();
            placement::place(&mut plan, &cluster, strategy).unwrap();
        });
    }
}

fn bench_end_to_end_planning() {
    group("planner-end-to-end (cold session per iteration)");
    for (name, graph, gpus) in [
        ("clip-4t/16gpu", multitask_clip(4).unwrap(), 16usize),
        ("clip-10t/32gpu", multitask_clip(10).unwrap(), 32),
        ("ofasys-7t/16gpu", ofasys(7).unwrap(), 16),
        ("qwen-val/64gpu", qwen_val(QwenValSize::B9).unwrap(), 64),
    ] {
        let cluster = ClusterSpec::homogeneous(gpus / 8, 8);
        bench(name, 1, 10, || {
            let _ = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        });
    }
}

fn main() {
    bench_contraction();
    bench_mpsp();
    bench_placement();
    bench_end_to_end_planning();
}
