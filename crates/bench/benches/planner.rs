//! Criterion micro-benchmarks of the Spindle execution planner's components
//! (Fig. 12's complexity analysis, broken down by stage): graph contraction,
//! the continuous MPSP solve, wavefront scheduling, device placement and the
//! end-to-end `Planner::plan` call.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spindle_cluster::ClusterSpec;
use spindle_core::{
    allocator, curves_for, mpsp, placement, wavefront, MetaGraph, PlacementStrategy, Planner,
};
use spindle_estimator::ScalabilityEstimator;
use spindle_workloads::{multitask_clip, ofasys, qwen_val, QwenValSize};

fn bench_contraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("contraction");
    for (name, graph) in [
        ("clip-10t", multitask_clip(10).unwrap()),
        ("ofasys-7t", ofasys(7).unwrap()),
        ("qwen-val", qwen_val(QwenValSize::B9).unwrap()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| MetaGraph::contract(g));
        });
    }
    group.finish();
}

fn bench_mpsp(c: &mut Criterion) {
    let graph = multitask_clip(10).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let metagraph = MetaGraph::contract(&graph);
    let estimator = ScalabilityEstimator::new(&cluster);
    let curves = curves_for(&metagraph, &estimator).unwrap();
    let level = &metagraph.levels()[0];
    let items: Vec<mpsp::MpspItem> = level
        .metaops
        .iter()
        .map(|&id| mpsp::MpspItem {
            metaop: id,
            num_ops: metagraph.metaop(id).num_ops(),
            curve: Arc::clone(&curves[&id]),
        })
        .collect();
    c.bench_function("mpsp-bisection/clip-10t-level0", |b| {
        b.iter(|| mpsp::solve(&items, 32, mpsp::DEFAULT_EPSILON));
    });
    let solution = mpsp::solve(&items, 32, mpsp::DEFAULT_EPSILON);
    c.bench_function("bi-point-discretisation/clip-10t-level0", |b| {
        b.iter(|| allocator::discretize(&solution, &items));
    });
    let plan = allocator::discretize(&solution, &items);
    c.bench_function("wavefront-scheduling/clip-10t-level0", |b| {
        b.iter(|| wavefront::schedule_level(&plan, &curves, 32, 0, 0.0, 0));
    });
}

fn bench_placement(c: &mut Criterion) {
    let graph = multitask_clip(10).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let unplaced = Planner::new(&graph, &cluster).plan().unwrap();
    let mut group = c.benchmark_group("device-placement");
    for strategy in [PlacementStrategy::Locality, PlacementStrategy::Sequential] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut plan = unplaced.clone();
                    placement::place(&mut plan, &cluster, strategy).unwrap();
                    plan
                });
            },
        );
    }
    group.finish();
}

fn bench_end_to_end_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner-end-to-end");
    group.sample_size(10);
    for (name, graph, gpus) in [
        ("clip-4t/16gpu", multitask_clip(4).unwrap(), 16usize),
        ("clip-10t/32gpu", multitask_clip(10).unwrap(), 32),
        ("ofasys-7t/16gpu", ofasys(7).unwrap(), 16),
        ("qwen-val/64gpu", qwen_val(QwenValSize::B9).unwrap(), 64),
    ] {
        let cluster = ClusterSpec::homogeneous(gpus / 8, 8);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| Planner::new(&graph, &cluster).plan().unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_contraction,
    bench_mpsp,
    bench_placement,
    bench_end_to_end_planning
);
criterion_main!(benches);
