//! Hot-path benchmarks of the allocation-free planning pipeline, with a
//! machine-readable report for cross-PR perf trajectories.
//!
//! Covers the paths this repo's perf work targets: cold single-phase planning
//! (fresh session, fresh curve cache), warm re-planning, the MPSP bisection
//! and wavefront micro-loops, dense locality placement, and sequential vs.
//! parallel multi-phase planning of the dynamic Multitask-CLIP schedule.
//!
//! Every case's mean is written to `BENCH_planning.json` at the workspace
//! root as `bench name → ns/iter`. Set `SPINDLE_BENCH_QUICK=1` for the CI
//! smoke mode (fewer iterations, same coverage, same report).
//!
//! ```bash
//! cargo bench -p spindle-bench --bench planning_hot_path
//! SPINDLE_BENCH_QUICK=1 cargo bench -p spindle-bench --bench planning_hot_path
//! ```

use std::path::PathBuf;

use spindle_bench::microbench::{bench, group, quick_mode, write_json_report, Timing};
use spindle_cluster::ClusterSpec;
use spindle_core::pipeline::{ContractedGraph, CurveSet};
use spindle_core::{allocator, mpsp, wavefront, MetaOpArena, SpindleSession};
use spindle_workloads::{multitask_clip, DynamicWorkload};

fn report_path() -> PathBuf {
    if let Ok(path) = std::env::var("SPINDLE_BENCH_OUT") {
        return PathBuf::from(path);
    }
    // CARGO_MANIFEST_DIR = crates/bench; the report lives at the workspace
    // root so it is easy to diff across PRs.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_planning.json")
}

fn main() {
    let quick = quick_mode();
    let (warmup, iters) = if quick { (1, 3) } else { (2, 30) };
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "planning_hot_path: {} hardware threads{} (phase-parallel planning needs >1 to win)",
        hardware_threads,
        if quick { ", quick mode" } else { "" }
    );
    let mut report: Vec<(String, Timing)> = Vec::new();
    let record = |name: &str, t: Timing, report: &mut Vec<(String, Timing)>| {
        report.push((name.to_string(), t));
    };

    // -- Cold and warm single-phase planning ---------------------------------
    group("single-phase planning (Multitask-CLIP)");
    for (name, tasks, gpus) in [("clip-4t/16gpu", 4, 16usize), ("clip-10t/32gpu", 10, 32)] {
        let graph = multitask_clip(tasks).unwrap();
        let cluster = ClusterSpec::homogeneous(gpus / 8, 8);
        let t = bench(&format!("cold_plan_{name}"), warmup, iters, || {
            let _ = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        });
        record(&format!("cold_plan_{name}"), t, &mut report);

        let mut session = SpindleSession::new(cluster.clone());
        session.plan(&graph).unwrap();
        let t = bench(&format!("warm_replan_{name}"), warmup, iters, || {
            let _ = session.plan(&graph).unwrap();
        });
        record(&format!("warm_replan_{name}"), t, &mut report);
    }

    // -- Stage micro-loops ---------------------------------------------------
    group("stage micro-loops (clip-10t, 32 gpus, level 0)");
    let graph = multitask_clip(10).unwrap();
    let cluster = ClusterSpec::homogeneous(4, 8);
    let estimator = spindle_estimator::ScalabilityEstimator::new(&cluster);
    let contracted = ContractedGraph::new(&graph);
    let curves = CurveSet::resolve(&contracted, &estimator).unwrap();
    let arena = MetaOpArena::build(contracted.metagraph(), &curves);
    let level = &contracted.metagraph().levels()[0];

    let mut scratch = mpsp::MpspScratch::new();
    let t = bench("mpsp_bisection_level0", warmup, iters.max(20), || {
        let _ = mpsp::solve_level(
            &arena,
            &level.metaops,
            32,
            mpsp::DEFAULT_EPSILON,
            &mut scratch,
        );
    });
    record("mpsp_bisection_level0", t, &mut report);

    let solution = mpsp::solve_level(
        &arena,
        &level.metaops,
        32,
        mpsp::DEFAULT_EPSILON,
        &mut scratch,
    );
    let alloc_plan = allocator::discretize_level(&solution, &arena, &level.metaops);
    let mut wf_scratch = wavefront::WavefrontScratch::new();
    let t = bench("wavefront_level0", warmup, iters.max(20), || {
        let _ =
            wavefront::schedule_level_dense(&alloc_plan, &arena, 32, 0, 0.0, 0, &mut wf_scratch);
    });
    record("wavefront_level0", t, &mut report);

    // -- Multi-phase planning: sequential vs. parallel -----------------------
    group("dynamic Multitask-CLIP schedule: sequential vs parallel phases");
    let schedule = DynamicWorkload::multitask_clip_schedule().unwrap();
    let phase_cluster = ClusterSpec::homogeneous(2, 8);
    for (suffix, sched) in [("4", schedule.clone()), ("8", schedule.repeated(2))] {
        let graphs = sched.phase_graphs();
        let mut session = SpindleSession::new(phase_cluster.clone());
        // Warm the curve cache once so both variants measure steady-state
        // re-planning (the Fig. 13 regime).
        for g in &graphs {
            session.plan(g).unwrap();
        }
        let t_seq = bench(
            &format!("phases_sequential_{suffix}"),
            warmup,
            iters,
            || {
                for g in &graphs {
                    let _ = session.plan(g).unwrap();
                }
            },
        );
        record(&format!("phases_sequential_{suffix}"), t_seq, &mut report);
        let t_par = bench(&format!("phases_parallel_{suffix}"), warmup, iters, || {
            let _ = session.plan_phases_parallel(&graphs).unwrap();
        });
        record(&format!("phases_parallel_{suffix}"), t_par, &mut report);
        println!(
            "phase-parallel speedup over sequential ({suffix} phases): {:.2}x",
            t_seq.mean.as_secs_f64() / t_par.mean.as_secs_f64()
        );
    }

    // -- Zero-alloc probes ---------------------------------------------------
    let mut session = SpindleSession::new(cluster.clone());
    let plan = session.plan(&graph).unwrap();
    let stats = session.planning_stats();
    println!(
        "\nplanning_stats probe (clip-10t/32gpu): {} mpsp solves, {} bisection iterations, \
         {} waves crafted, scratch high-water mpsp={} wavefront={}",
        stats.mpsp_solves,
        stats.bisection_iterations,
        stats.waves_crafted,
        stats.mpsp_scratch_high_water,
        stats.wavefront_scratch_high_water
    );
    assert_eq!(
        stats.waves_crafted,
        plan.num_waves() as u64,
        "probe must account for every wave"
    );
    let largest_level = contracted
        .metagraph()
        .levels()
        .iter()
        .map(|l| l.metaops.len())
        .max()
        .unwrap_or(0);
    assert!(
        stats.mpsp_scratch_high_water <= largest_level,
        "zero-alloc invariant: MPSP scratch must not outgrow the largest level"
    );

    let path = report_path();
    write_json_report(&path, &report).expect("write BENCH_planning.json");
    println!("\nwrote {} entries to {}", report.len(), path.display());
}
