//! Warm-session vs. cold-session re-planning latency on the dynamic
//! Multitask-CLIP schedule (paper Appendix D / Fig. 13).
//!
//! The dynamic scenario re-plans at every task-mix change. A *cold* planner
//! (the legacy `Planner` behaviour) re-fits every scaling curve from scratch
//! per phase; a *warm* `SpindleSession` serves previously-seen operator
//! signatures from its curve cache and only fits the genuinely new ones. This
//! bench measures a full pass over the schedule's phases both ways and prints
//! the speedup.
//!
//! ```bash
//! cargo bench -p spindle-bench --bench session
//! ```

use spindle_bench::microbench::{bench, group};
use spindle_cluster::ClusterSpec;
use spindle_core::SpindleSession;
use spindle_workloads::DynamicWorkload;

fn main() {
    let schedule = DynamicWorkload::multitask_clip_schedule().expect("schedule builds");
    let cluster = ClusterSpec::homogeneous(2, 8);
    println!(
        "dynamic schedule: {} ({} phases); planning every phase once per iteration",
        schedule.name(),
        schedule.phases().len()
    );

    group("cold: fresh session (fresh curve cache) per phase");
    let cold = bench("re-plan all phases, cold", 1, 10, || {
        for phase in schedule.phases() {
            let mut session = SpindleSession::new(cluster.clone());
            let _ = session.plan(&phase.graph).unwrap();
        }
    });

    group("warm: one long-lived session across all phases");
    // Pre-warm once so the timed iterations measure steady-state re-planning.
    let mut session = SpindleSession::new(cluster.clone());
    for phase in schedule.phases() {
        let _ = session.plan(&phase.graph).unwrap();
    }
    let warm = bench("re-plan all phases, warm", 1, 10, || {
        for phase in schedule.phases() {
            let _ = session.plan(&phase.graph).unwrap();
        }
    });

    let stats = session.cache_stats();
    println!(
        "\ncurve cache after warm pass: {} entries, {} fits, {} hits ({:.0}% hit rate)",
        stats.entries,
        stats.fits,
        stats.hits,
        stats.hit_rate() * 100.0
    );
    println!(
        "warm-session speedup over cold re-planning: {:.2}x ({:.3} ms -> {:.3} ms per schedule pass)",
        cold.mean.as_secs_f64() / warm.mean.as_secs_f64(),
        cold.mean_ms(),
        warm.mean_ms()
    );
}
