//! Benchmarks of the event-driven runtime simulator and the dynamic
//! online-re-planning loop.
//!
//! Every case's mean is written to `BENCH_sim.json` at the workspace root
//! (bench name → ns/iter) — together with `BENCH_planning.json` this is the
//! input to the CI perf-regression gate. Set `SPINDLE_BENCH_QUICK=1` for the
//! CI smoke mode.
//!
//! ```bash
//! cargo bench -p spindle-bench --bench simulator
//! SPINDLE_BENCH_QUICK=1 cargo bench -p spindle-bench --bench simulator
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use spindle_bench::microbench::{bench, group, quick_mode, write_json_report, Timing};
use spindle_cluster::ClusterSpec;
use spindle_core::SpindleSession;
use spindle_runtime::{
    price_checkpoint_write, CheckpointPolicy, DynamicRunLoop, RuntimeEngine, SimConfig, Simulator,
    Straggler,
};
use spindle_workloads::{multitask_clip, ArrivalSchedule, DynamicWorkload};

fn report_path() -> PathBuf {
    if let Ok(path) = std::env::var("SPINDLE_BENCH_SIM_OUT") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json")
}

fn main() {
    let quick = quick_mode();
    let (warmup, iters) = if quick { (1, 3) } else { (2, 30) };
    println!(
        "simulator bench{}",
        if quick { " (quick mode)" } else { "" }
    );
    let mut report: Vec<(String, Timing)> = Vec::new();

    group("one simulated iteration (analytical engine vs event-driven)");
    for (name, tasks, gpus) in [
        ("clip-4t/16gpu", 4usize, 16usize),
        ("clip-10t/32gpu", 10, 32),
    ] {
        let graph = multitask_clip(tasks).unwrap();
        let cluster = ClusterSpec::homogeneous(gpus / 8, 8);
        let plan = Arc::new(SpindleSession::new(cluster.clone()).plan(&graph).unwrap());

        let engine = RuntimeEngine::new(Arc::clone(&plan), &cluster).with_graph(&graph);
        let t = bench(&format!("engine_analytical_{name}"), warmup, iters, || {
            let _ = engine.run_iteration().unwrap();
        });
        report.push((format!("engine_analytical_{name}"), t));

        let oracle = Simulator::new(Arc::clone(&plan), &cluster).with_graph(&graph);
        let t = bench(&format!("sim_serialized_{name}"), warmup, iters, || {
            let _ = oracle.run_iteration().unwrap();
        });
        report.push((format!("sim_serialized_{name}"), t));

        let contended = Simulator::new(Arc::clone(&plan), &cluster)
            .with_graph(&graph)
            .with_config(SimConfig::contended());
        let t = bench(&format!("sim_contended_{name}"), warmup, iters, || {
            let _ = contended.run_iteration().unwrap();
        });
        report.push((format!("sim_contended_{name}"), t));
    }

    group("perturbed scenarios (clip-4t, 16 gpus)");
    let graph = multitask_clip(4).unwrap();
    let cluster = ClusterSpec::homogeneous(2, 8);
    let plan = Arc::new(SpindleSession::new(cluster.clone()).plan(&graph).unwrap());
    let perturbed = Simulator::new(Arc::clone(&plan), &cluster)
        .with_graph(&graph)
        .with_config(SimConfig {
            compute_jitter: 0.05,
            stragglers: vec![Straggler::persistent(spindle_cluster::DeviceId(3), 2.0)],
            ..SimConfig::contended()
        });
    let t = bench("sim_straggler_jitter_clip-4t/16gpu", warmup, iters, || {
        let _ = perturbed.run_iteration().unwrap();
    });
    report.push(("sim_straggler_jitter_clip-4t/16gpu".to_string(), t));

    group("dynamic run loop (4-phase Multitask-CLIP schedule, warm session)");
    let workload = DynamicWorkload::multitask_clip_schedule().unwrap();
    let schedule = ArrivalSchedule::from_workload(&workload, 0.05);
    let mut session = SpindleSession::new(cluster.clone());
    // Warm the curve cache so the loop measures steady-state online re-plans.
    for arrival in schedule.arrivals() {
        session.plan(&arrival.graph).unwrap();
    }
    let t = bench("dynloop_clip_4phase/16gpu", warmup, iters, || {
        let report = DynamicRunLoop::new(&mut session).run(&schedule).unwrap();
        assert!(report.replans() >= 2);
    });
    report.push(("dynloop_clip_4phase/16gpu".to_string(), t));

    group("checkpoint write pricing (contended storage model)");
    // The steady-state cost the run loop charges per checkpoint: derive the
    // plan's per-device write flows and push them through the contended
    // storage-link model. This is pure pricing — no simulation — and sits on
    // the run loop's per-iteration path whenever a cadence is active.
    let policy = CheckpointPolicy::every(64);
    for (name, tasks, gpus) in [
        ("clip-4t/16gpu", 4usize, 16usize),
        ("clip-10t/32gpu", 10, 32),
    ] {
        let graph = multitask_clip(tasks).unwrap();
        let cluster = ClusterSpec::homogeneous(gpus / 8, 8);
        let plan = Arc::new(SpindleSession::new(cluster.clone()).plan(&graph).unwrap());
        let t = bench(
            &format!("checkpoint_overhead_{name}"),
            warmup,
            iters,
            || {
                let stall = price_checkpoint_write(&cluster, &plan, &policy, true);
                assert!(stall > 0.0);
            },
        );
        report.push((format!("checkpoint_overhead_{name}"), t));
    }

    let path = report_path();
    write_json_report(&path, &report).expect("write BENCH_sim.json");
    println!("\nwrote {} entries to {}", report.len(), path.display());
}
