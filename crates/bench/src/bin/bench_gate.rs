//! CI perf-regression gate: compares fresh bench reports against the
//! committed baseline and fails on significant slowdowns.
//!
//! ```bash
//! cargo run --release -p spindle-bench --bin bench_gate -- \
//!     BENCH_baseline.json BENCH_planning.json BENCH_sim.json BENCH_incremental.json
//! ```
//!
//! The first argument is the baseline; every further argument is a current
//! report (they are merged). Thresholds default to fail >30% / warn >15% and
//! can be overridden with `SPINDLE_GATE_FAIL_PCT` / `SPINDLE_GATE_WARN_PCT`
//! (whole percents). When `GITHUB_STEP_SUMMARY` is set, the markdown delta
//! table is appended there too. Exits non-zero if any entry fails the gate —
//! including when a baseline key is missing from the fresh reports (a bench
//! that silently vanished is treated as a regression, not skipped).

use std::io::Write as _;
use std::process::ExitCode;

use spindle_bench::gate::{compare, parse_flat_json, GateConfig};

fn read_report(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    parse_flat_json(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn pct_env(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(default, |pct| pct / 100.0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: bench_gate <baseline.json> <current.json>...");
        return ExitCode::from(2);
    }
    let config = GateConfig {
        fail_pct: pct_env("SPINDLE_GATE_FAIL_PCT", 0.30),
        warn_pct: pct_env("SPINDLE_GATE_WARN_PCT", 0.15),
        ..GateConfig::default()
    };
    let baseline = read_report(&args[0]);
    // Merge the current reports; later files win on duplicate names.
    let mut current: Vec<(String, f64)> = Vec::new();
    for path in &args[1..] {
        for (name, value) in read_report(path) {
            if let Some(slot) = current.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = value;
            } else {
                current.push((name, value));
            }
        }
    }

    let report = compare(&baseline, &current, &config);
    let table = report.to_markdown(&config);
    println!("{table}");
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(summary_path)
        {
            let _ = writeln!(f, "## Bench gate\n\n{table}");
        }
    }

    if report.failed() {
        eprintln!("bench gate FAILED: at least one bench regressed beyond the threshold");
        ExitCode::FAILURE
    } else {
        if report.warnings() > 0 {
            eprintln!("bench gate passed with {} warning(s)", report.warnings());
        } else {
            println!("bench gate passed");
        }
        ExitCode::SUCCESS
    }
}
