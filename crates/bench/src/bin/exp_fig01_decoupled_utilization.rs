//! Fig. 1 (lower): device utilization over time during *decoupled* execution
//! of four Multitask-CLIP tasks across two iterations.
//!
//! The paper uses this figure to motivate Spindle: when tasks are decoupled
//! and executed one after another with the whole cluster, utilization
//! fluctuates heavily both within a task (intra-task heterogeneity) and across
//! tasks (inter-task heterogeneity). The series printed here is the cluster
//! TFLOP/s trace of the DeepSpeed-style decoupled plan; per-task device counts
//! in the paper's caption (8/4/2/2 GPUs) correspond to the per-task allocation
//! of the decoupled baseline.

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::{measure, paper_cluster, render_table};
use spindle_workloads::multitask_clip;

fn main() {
    let graph = multitask_clip(4).expect("workload builds");
    let mut session = SpindleSession::new(paper_cluster(16));
    let measurement = measure(SystemKind::DeepSpeed, &graph, &mut session);
    let trace = measurement.report.utilization_trace();

    println!("Fig. 1 (lower): cluster utilization during decoupled execution");
    println!(
        "Multitask-CLIP, 4 tasks, 16 GPUs, one iteration = {:.1} ms\n",
        measurement.iteration_ms
    );

    // Print a coarse 40-bucket series (time fraction of iteration, TFLOP/s).
    let buckets = 40usize;
    let mut rows = Vec::new();
    for b in 0..buckets {
        let lo = b * trace.len() / buckets;
        let hi = ((b + 1) * trace.len() / buckets).max(lo + 1);
        let avg: f64 = trace[lo..hi].iter().map(|s| s.tflops_per_s).sum::<f64>() / (hi - lo) as f64;
        let t = trace[lo].time_s / measurement.report.iteration_time_s();
        rows.push(vec![
            format!("{:.2}x", t * 2.0), // two-iteration timeline, as in the paper
            format!("{avg:.0}"),
            "#".repeat((avg / 40.0).round() as usize),
        ]);
    }
    println!(
        "{}",
        render_table(&["Timeline", "TFLOPs/s", "Utilization"], &rows)
    );

    let max = trace.iter().map(|s| s.tflops_per_s).fold(0.0, f64::max);
    let busy_min = trace
        .iter()
        .filter(|s| s.tflops_per_s > 0.0)
        .map(|s| s.tflops_per_s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\npeak {max:.0} TFLOP/s, trough {busy_min:.0} TFLOP/s (fluctuation {:.1}x)",
        max / busy_min
    );
}
