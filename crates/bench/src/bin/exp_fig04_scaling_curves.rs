//! Fig. 4: execution time and resource scalability of the MetaOps of the
//! 4-task Multitask-CLIP workload (the *scaling curves*).
//!
//! For each encoder MetaOp of each task the binary prints `T_m(n)` and the
//! scalability `ς_m(n) = T_m(1)/T_m(n)` at 1–32 GPUs, fitted by the
//! scalability estimator's piecewise α–β model over the analytic hardware
//! profile. The paper's observation to reproduce: heavyweight operators
//! (vision towers) scale close to linearly while lightweight operators
//! (text/motion towers with small batches) barely reach 2–3× — and the curves
//! differ per task because batch sizes differ.

use spindle_bench::render_table;
use spindle_cluster::ClusterSpec;
use spindle_core::MetaGraph;
use spindle_estimator::ScalabilityEstimator;
use spindle_graph::OpKind;
use spindle_workloads::multitask_clip;

fn main() {
    let graph = multitask_clip(4).expect("workload builds");
    let cluster = ClusterSpec::homogeneous(4, 8);
    let estimator = ScalabilityEstimator::new(&cluster);
    let metagraph = MetaGraph::contract(&graph);
    let gpus = [1u32, 2, 4, 8, 16, 32];

    println!("Fig. 4: MetaOp execution time (ms per operator) and resource scalability\n");
    let mut time_rows = Vec::new();
    let mut scal_rows = Vec::new();
    for metaop in metagraph.metaops() {
        let rep = metaop.representative();
        // The figure shows the modality-encoder MetaOps of each task.
        if !matches!(rep.kind(), OpKind::Encoder(_)) {
            continue;
        }
        let task = graph.task(rep.task()).expect("task exists");
        let label = format!("Task{}-{}", rep.task().0 + 1, rep.kind());
        let curve = estimator.curve_for(rep);
        let mut times = vec![label.clone()];
        let mut scals = vec![label];
        for &n in &gpus {
            times.push(format!("{:.2}", curve.time(f64::from(n)) * 1e3));
            scals.push(format!("{:.2}", curve.scalability(f64::from(n))));
        }
        times.push(format!("batch {}", task.batch_size()));
        scals.push(format!("batch {}", task.batch_size()));
        time_rows.push(times);
        scal_rows.push(scals);
    }

    let header = ["MetaOp", "1", "2", "4", "8", "16", "32", "task"];
    println!("Execution time per operator (ms):");
    println!("{}", render_table(&header, &time_rows));
    println!("Resource scalability sigma(n) = T(1)/T(n):");
    println!("{}", render_table(&header, &scal_rows));
}
