//! Fig. 8: end-to-end iteration time of Spindle and the four baselines across
//! all workloads of Tab. 1b and all cluster sizes of the paper's testbed.
//!
//! For every (workload, cluster) pair the binary prints each system's
//! iteration time in milliseconds and its speedup over DeepSpeed (the paper's
//! reference system, "larger than 1 is faster"). The reproduction target is
//! the *shape*: Spindle fastest everywhere, the gap growing with the number of
//! tasks and with cluster size; Spindle-Optimus second at scale but sometimes
//! behind on one node; DistMM-MT ahead of the SOTA systems on Multitask-CLIP
//! but weak on OFASys.

use spindle_bench::{cluster_label, compare_systems, ms, render_table, speedup};
use spindle_workloads::WorkloadPreset;

fn main() {
    println!("Fig. 8: end-to-end iteration time (ms) and speedup over DeepSpeed\n");
    for preset in WorkloadPreset::figure8_presets() {
        println!("== {preset} ==");
        let mut rows = Vec::new();
        for gpus in preset.paper_cluster_sizes() {
            let results = compare_systems(preset, gpus);
            for (system, time_ms, sp) in results {
                rows.push(vec![
                    cluster_label(gpus),
                    system.label().to_string(),
                    ms(time_ms),
                    speedup(sp),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &["Cluster", "System", "Iteration (ms)", "vs DeepSpeed"],
                &rows
            )
        );
    }
}
