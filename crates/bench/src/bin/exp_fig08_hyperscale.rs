//! Fig. 8-style hyperscale comparison: Spindle vs the baselines at 256 and
//! 512 simulated GPUs on the hyperscale preset (48 and 64 heterogeneous
//! tasks), reporting per cell
//!
//! * simulated iteration time (the analytical engine's makespan + comm),
//! * average cluster utilization of the plan,
//! * planning wall-clock cost (cold session), and
//! * the makespan's gap to the level-synchronous theoretical optimum `Σ C̃*`.
//!
//! The iteration and planning times are written to `BENCH_fig8.json` in the
//! bench-gate report format (name → ns), so CI pins both the *model outputs*
//! (iteration times are deterministic — any drift is a planner behavior
//! change, failed by the gate at its noise floor) and the planner's
//! wall-clock cost trajectory at hyperscale.
//!
//! The binary itself asserts the headline claim of the paper's Fig. 8:
//! Spindle's iteration time beats the decoupled (DeepSpeed-style) baseline
//! at every scale. It exits non-zero if it does not.
//!
//! ```bash
//! cargo run --release -p spindle-bench --bin exp_fig08_hyperscale
//! SPINDLE_BENCH_QUICK=1 cargo run --release -p spindle-bench --bin exp_fig08_hyperscale
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use spindle_baselines::SystemKind;
use spindle_bench::microbench::{bench, quick_mode, write_json_report, Timing};
use spindle_bench::{measure, ms, paper_cluster, render_table, speedup};
use spindle_core::SpindleSession;
use spindle_workloads::hyperscale;

/// The compared systems: Spindle plus the three distinct baseline planning
/// strategies of Fig. 8 (Megatron-LM shares the decoupled path with
/// DeepSpeed at this abstraction level).
const SYSTEMS: [(SystemKind, &str); 4] = [
    (SystemKind::Spindle, "spindle"),
    (SystemKind::SpindleOptimus, "optimus"),
    (SystemKind::DistMmMt, "distmm"),
    (SystemKind::DeepSpeed, "deepspeed"),
];

/// The evaluated scales: (tasks, GPUs).
const CELLS: [(usize, usize); 2] = [(48, 256), (64, 512)];

fn report_path() -> PathBuf {
    if let Ok(path) = std::env::var("SPINDLE_BENCH_FIG8_OUT") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fig8.json")
}

/// Wraps a deterministic model output (seconds) as a [`Timing`] so it lands
/// in the report in the standard ns-per-iter unit.
fn deterministic(seconds: f64) -> Timing {
    let d = Duration::from_secs_f64(seconds);
    Timing {
        iters: 1,
        min: d,
        mean: d,
        max: d,
    }
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let (warmup, iters) = if quick { (1, 3) } else { (2, 10) };
    println!(
        "Fig. 8 (hyperscale): Spindle vs baselines at 256-512 GPUs{}\n",
        if quick { " (quick mode)" } else { "" }
    );

    let mut report: Vec<(String, Timing)> = Vec::new();
    let mut failures = Vec::new();

    for (tasks, gpus) in CELLS {
        let graph = hyperscale(tasks).expect("hyperscale preset builds");
        let cluster = paper_cluster(gpus);
        println!("== {tasks} tasks on {gpus} GPUs ==");

        let mut cells: Vec<(SystemKind, f64, f64, f64, f64)> = Vec::new();
        for (system, key) in SYSTEMS {
            // Planning cost: a cold session per run, exactly what a tenant
            // pays on first submission.
            let plan_timing = bench(
                &format!("fig8_plan_{key}_{tasks}t{gpus}gpu"),
                warmup,
                iters,
                || {
                    let mut session = SpindleSession::new(cluster.clone());
                    let _ = system
                        .planning_system()
                        .plan(&graph, &mut session)
                        .expect("planning the hyperscale preset succeeds");
                },
            );

            let mut session = SpindleSession::new(cluster.clone());
            let m = measure(system, &graph, &mut session);
            let optimum_s = session
                .theoretical_optimum(&graph)
                .expect("optimum is computable whenever planning succeeds");
            let makespan_s = m.plan.makespan();

            report.push((
                format!("fig8_iter_{key}_{tasks}t{gpus}gpu"),
                deterministic(m.iteration_ms / 1e3),
            ));
            report.push((format!("fig8_plan_{key}_{tasks}t{gpus}gpu"), plan_timing));

            cells.push((
                system,
                m.iteration_ms,
                m.plan.average_utilization(),
                plan_timing.mean_ms(),
                makespan_s / optimum_s,
            ));
        }

        let iter_of = |kind: SystemKind| {
            cells
                .iter()
                .find(|c| c.0 == kind)
                .map(|c| c.1)
                .expect("system is in SYSTEMS")
        };
        let spindle = iter_of(SystemKind::Spindle);
        let decoupled = iter_of(SystemKind::DeepSpeed);
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|&(system, iter_ms, util, plan_ms, vs_opt)| {
                vec![
                    system.label().to_string(),
                    ms(iter_ms),
                    format!("{:.1}%", util * 100.0),
                    ms(plan_ms),
                    format!("{vs_opt:.2}x"),
                    speedup(iter_ms / spindle),
                ]
            })
            .collect();
        println!(
            "\n{}",
            render_table(
                &[
                    "System",
                    "Iteration",
                    "Cluster util",
                    "Plan cost",
                    "Vs optimum",
                    "Slowdown vs Spindle",
                ],
                &rows,
            )
        );
        println!(
            "(\"Vs optimum\" compares against the level-synchronous bound Σ C̃*; \
             task-parallel Optimus plans may legitimately dip below 1.00x.)"
        );
        println!(
            "Spindle {} vs decoupled {} -> {} speedup\n",
            ms(spindle),
            ms(decoupled),
            speedup(decoupled / spindle)
        );
        if spindle >= decoupled {
            failures.push(format!(
                "{tasks}t/{gpus}gpu: Spindle ({}) does not beat the decoupled baseline ({})",
                ms(spindle),
                ms(decoupled)
            ));
        }
    }

    let path = report_path();
    write_json_report(&path, &report).expect("write BENCH_fig8.json");
    println!("wrote {} entries to {}", report.len(), path.display());

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
