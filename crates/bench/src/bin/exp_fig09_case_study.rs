//! Fig. 9: in-depth case study of Multitask-CLIP (4 tasks, 16 GPUs).
//!
//! Reports, for Spindle, Spindle-Optimus, DistMM-MT and DeepSpeed:
//! (a) average cluster utilization over one iteration (TFLOP/s trace summary),
//! (b) the per-device utilization spider data, and
//! (c) the per-MetaOp computational utilization spider data.
//!
//! The paper's observations to reproduce: DeepSpeed's utilization fluctuates
//! and is low overall; Spindle-Optimus starts high but decays as light tasks
//! finish; Spindle keeps utilization consistently high across the iteration,
//! across devices and across MetaOps.

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::{measure, paper_cluster, render_table};
use spindle_workloads::multitask_clip;

fn main() {
    let graph = multitask_clip(4).expect("workload builds");
    let cluster = paper_cluster(16);
    let mut session = SpindleSession::new(cluster.clone());
    let systems = [
        SystemKind::Spindle,
        SystemKind::SpindleOptimus,
        SystemKind::DistMmMt,
        SystemKind::DeepSpeed,
    ];

    println!("Fig. 9: case study of Multitask-CLIP (4 tasks, 16 GPUs)\n");

    // (a) Cluster utilization over time.
    println!("(a) average cluster utilization over one iteration");
    let mut rows = Vec::new();
    let mut measurements = Vec::new();
    for kind in systems {
        let m = measure(kind, &graph, &mut session);
        let trace = m.report.utilization_trace();
        let busy: Vec<f64> = trace.iter().map(|s| s.tflops_per_s).collect();
        let avg = busy.iter().sum::<f64>() / busy.len() as f64;
        let peak = busy.iter().copied().fold(0.0, f64::max);
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.1}", m.iteration_ms),
            format!("{avg:.0}"),
            format!("{peak:.0}"),
            format!("{:.0}%", m.report.average_utilization() * 100.0),
        ]);
        measurements.push((kind, m));
    }
    println!(
        "{}",
        render_table(
            &[
                "System",
                "Iteration (ms)",
                "Avg TFLOP/s",
                "Peak TFLOP/s",
                "Avg util"
            ],
            &rows
        )
    );

    // (b) Per-device utilization.
    println!("(b) per-device utilization (% of peak compute)");
    let mut rows = Vec::new();
    for (kind, m) in &measurements {
        let mut row = vec![kind.label().to_string()];
        for util in m.report.device_utilization().values() {
            row.push(format!("{:.0}", util * 100.0));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["System".to_string()];
    header.extend((0..cluster.num_devices()).map(|d| format!("gpu{d}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));

    // (c) Per-MetaOp utilization for Spindle and DeepSpeed.
    println!("(c) per-MetaOp computational utilization (% of allocated peak)");
    let mut rows = Vec::new();
    for (kind, m) in &measurements {
        let utils: Vec<f64> = m.report.metaop_utilization().values().copied().collect();
        let avg = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
        let min = utils.iter().copied().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            kind.label().to_string(),
            format!("{:.0}", avg * 100.0),
            format!("{:.0}", min * 100.0),
            format!("{}", utils.len()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "System",
                "Avg MetaOp util %",
                "Min MetaOp util %",
                "#MetaOps"
            ],
            &rows
        )
    );
}
