//! Fig. 10: iteration-time breakdown (parameter sync / forward+backward /
//! inter-wave send & receive) for DeepSpeed, Spindle and Spindle without its
//! device-placement mechanism ("Sp*" = sequential placement), across the
//! paper's three largest workload configurations.
//!
//! The reproduction targets: forward+backward dominates the iteration;
//! Spindle's inter-wave send & receive stays a small fraction of the total;
//! and disabling the locality-aware placement inflates that fraction severalfold
//! (the paper reports 3–6×, up to 27% of the iteration).

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::{
    cluster_label, measure, measure_spindle_with_placement, paper_cluster, render_table,
};
use spindle_core::PlacementStrategy;
use spindle_graph::ComputationGraph;
use spindle_runtime::TimeBreakdown;
use spindle_workloads::{multitask_clip, ofasys, qwen_val, QwenValSize};

fn row(label: &str, cluster: &str, b: TimeBreakdown) -> Vec<String> {
    vec![
        cluster.to_string(),
        label.to_string(),
        format!("{:.1}", b.fwd_bwd_s * 1e3),
        format!("{:.1}", b.sync_s * 1e3),
        format!("{:.1}", b.send_recv_s * 1e3),
        format!("{:.1}", b.total_s() * 1e3),
        format!("{:.1}%", b.send_recv_fraction() * 100.0),
    ]
}

fn breakdown_for(graph: &ComputationGraph, gpus_list: &[usize], rows: &mut Vec<Vec<String>>) {
    for &gpus in gpus_list {
        let cluster = paper_cluster(gpus);
        let label = cluster_label(gpus);
        let mut session = SpindleSession::new(cluster.clone());
        let ds = measure(SystemKind::DeepSpeed, graph, &mut session);
        rows.push(row("DeepSpeed (DS)", &label, ds.report.breakdown()));
        let sp = measure(SystemKind::Spindle, graph, &mut session);
        rows.push(row("Spindle (Sp)", &label, sp.report.breakdown()));
        let seq = measure_spindle_with_placement(graph, &cluster, PlacementStrategy::Sequential);
        rows.push(row("Spindle w/o DP (Sp*)", &label, seq.report.breakdown()));
    }
}

fn main() {
    println!("Fig. 10: time breakdown (ms) and device-placement ablation\n");
    let header = [
        "Cluster",
        "System",
        "Fwd&Bwd",
        "Sync",
        "Send&Recv",
        "Total",
        "Send&Recv %",
    ];

    let cases: [(&str, ComputationGraph, Vec<usize>); 3] = [
        (
            "Multitask-CLIP, 10 Tasks",
            multitask_clip(10).expect("clip"),
            vec![8, 16],
        ),
        ("OFASys, 7 Tasks", ofasys(7).expect("ofasys"), vec![8, 16]),
        (
            "QWen-VAL, 3 Tasks",
            qwen_val(QwenValSize::B9).expect("qwen"),
            vec![32, 64],
        ),
    ];
    for (name, graph, gpus) in cases {
        println!("== {name} ==");
        let mut rows = Vec::new();
        breakdown_for(&graph, &gpus, &mut rows);
        println!("{}", render_table(&header, &rows));
    }
}
