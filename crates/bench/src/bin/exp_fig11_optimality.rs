//! Fig. 11: optimality analysis of the Spindle execution planner.
//!
//! Compares the compute makespan of the practical plan with the theoretical
//! optimum `Σ C̃*` obtained from the continuous MPSP relaxation (Theorem 1),
//! which is an unachievable lower bound. The paper reports deviations below 7%
//! across Multitask-CLIP configurations on 16 and 32 GPUs; the deviations
//! printed here are the equivalent measurement on the simulated substrate.

use spindle_bench::{cluster_label, paper_cluster, render_table};
use spindle_core::SpindleSession;
use spindle_workloads::multitask_clip;

fn main() {
    println!("Fig. 11: Spindle plan makespan vs theoretical optimum\n");
    let mut rows = Vec::new();
    for gpus in [16usize, 32] {
        // One session per cluster size: the 7- and 10-task workloads reuse the
        // curves fitted for the 4-task one.
        let mut session = SpindleSession::new(paper_cluster(gpus));
        for tasks in [4usize, 7, 10] {
            let graph = multitask_clip(tasks).expect("workload builds");
            // The plan carries Σ C̃* from its own MPSP pass; callers that only
            // need the bound use `session.theoretical_optimum` instead.
            let plan = session.plan(&graph).expect("plan");
            let optimum_ms = plan.theoretical_optimum() * 1e3;
            let makespan_ms = plan.makespan() * 1e3;
            rows.push(vec![
                cluster_label(gpus),
                format!("{tasks} Tasks"),
                format!("{optimum_ms:.1}"),
                format!("{makespan_ms:.1}"),
                format!("{:.2}x", makespan_ms / optimum_ms),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Cluster",
                "Workload",
                "Theoretical optimum (ms)",
                "Spindle (ms)",
                "Ratio"
            ],
            &rows
        )
    );
}
