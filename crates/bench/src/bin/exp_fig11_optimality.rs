//! Fig. 11: optimality analysis of the Spindle execution planner.
//!
//! Compares the compute makespan of the practical plan with the theoretical
//! optimum `Σ C̃*` obtained from the continuous MPSP relaxation (Theorem 1),
//! which is an unachievable lower bound. The paper reports deviations below 7%
//! across Multitask-CLIP configurations on 16 and 32 GPUs; the deviations
//! printed here are the equivalent measurement on the simulated substrate.

use spindle_bench::{cluster_label, paper_cluster, render_table};
use spindle_core::Planner;
use spindle_workloads::multitask_clip;

fn main() {
    println!("Fig. 11: Spindle plan makespan vs theoretical optimum\n");
    let mut rows = Vec::new();
    for gpus in [16usize, 32] {
        for tasks in [4usize, 7, 10] {
            let graph = multitask_clip(tasks).expect("workload builds");
            let cluster = paper_cluster(gpus);
            let plan = Planner::new(&graph, &cluster).plan().expect("plan");
            let optimum_ms = plan.theoretical_optimum() * 1e3;
            let makespan_ms = plan.makespan() * 1e3;
            rows.push(vec![
                cluster_label(gpus),
                format!("{tasks} Tasks"),
                format!("{optimum_ms:.1}"),
                format!("{makespan_ms:.1}"),
                format!("{:.2}x", makespan_ms / optimum_ms),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["Cluster", "Workload", "Theoretical optimum (ms)", "Spindle (ms)", "Ratio"],
            &rows
        )
    );
}
