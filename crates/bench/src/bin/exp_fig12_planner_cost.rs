//! Fig. 12: wall-clock cost of Spindle's execution planner.
//!
//! The paper reports that planning (scalability estimation excluded, profiling
//! is a one-off <5-minute step) finishes within 3 seconds for every workload
//! and cluster size, and only needs to re-run when the task mix changes. This
//! binary times `Planner::plan` for every workload of the evaluation on 8–64
//! GPUs.

use spindle_bench::render_table;
use spindle_cluster::ClusterSpec;
use spindle_core::SpindleSession;
use spindle_workloads::{multitask_clip, ofasys, qwen_val, QwenValSize};

fn main() {
    println!("Fig. 12: execution-planner wall-clock cost (seconds, cold session / warm re-plan)\n");
    let workloads: Vec<(String, spindle_graph::ComputationGraph)> = vec![
        ("CLIP-4Tasks".to_string(), multitask_clip(4).expect("clip4")),
        ("CLIP-7Tasks".to_string(), multitask_clip(7).expect("clip7")),
        (
            "CLIP-10Tasks".to_string(),
            multitask_clip(10).expect("clip10"),
        ),
        ("OFASys-4Tasks".to_string(), ofasys(4).expect("ofa4")),
        ("OFASys-7Tasks".to_string(), ofasys(7).expect("ofa7")),
        (
            "QWen-VAL-3Tasks".to_string(),
            qwen_val(QwenValSize::B9).expect("qwen"),
        ),
    ];
    let gpu_counts = [8usize, 16, 32, 64];

    let mut rows = Vec::new();
    for (name, graph) in &workloads {
        let mut row = vec![name.clone()];
        for &gpus in &gpu_counts {
            let cluster = ClusterSpec::homogeneous((gpus / 8).max(1), 8.min(gpus));
            // A cold session pays curve fitting; the warm re-plan of the same
            // workload is served entirely from the session's curve cache.
            let mut session = SpindleSession::new(cluster);
            let cold = session.plan(graph).expect("plan");
            let warm = session.plan(graph).expect("re-plan");
            row.push(format!(
                "{:.3} / {:.3}",
                cold.planning_time().as_secs_f64(),
                warm.planning_time().as_secs_f64()
            ));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["Workload", "8 GPUs", "16 GPUs", "32 GPUs", "64 GPUs"],
            &rows
        )
    );
    println!("(the paper's bound: every configuration plans within 3 seconds)");
}
