//! Fig. 13 (Appendix D): dynamic multi-task workloads.
//!
//! The active task set changes several times over a long training run (tasks
//! join and finish). Each system re-plans at every change; the figure tracks
//! the *cumulative* training time. The reproduction target: Spindle's curve
//! stays lowest throughout, because it adapts its execution plan to every task
//! mix; re-planning cost (seconds) is negligible against the tens of thousands
//! of iterations per phase.

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::{measure, paper_cluster, render_table};
use spindle_workloads::DynamicWorkload;

fn main() {
    println!("Fig. 13: dynamic multi-task workloads (cumulative training time, 16 GPUs)\n");
    let cluster = paper_cluster(16);
    let schedules = [
        DynamicWorkload::multitask_clip_schedule().expect("clip schedule"),
        DynamicWorkload::ofasys_schedule().expect("ofasys schedule"),
    ];

    for schedule in &schedules {
        println!(
            "== {} ({} iterations, {} task-set changes) ==",
            schedule.name(),
            schedule.total_iterations(),
            schedule.num_changes()
        );
        let mut rows = Vec::new();
        for kind in SystemKind::ALL {
            // One long-lived session per system: re-planning at each phase
            // change reuses every scaling curve fitted in earlier phases.
            let mut session = SpindleSession::new(cluster.clone());
            let mut cumulative_s = 0.0;
            let mut checkpoints = Vec::new();
            for phase in schedule.phases() {
                let m = measure(kind, &phase.graph, &mut session);
                // Re-planning happens once per phase and costs planner time.
                cumulative_s += m.plan.planning_time().as_secs_f64();
                cumulative_s += m.report.iteration_time_s() * phase.iterations as f64;
                checkpoints.push(format!("{:.1}", cumulative_s / 1e3));
            }
            let mut row = vec![kind.label().to_string()];
            row.extend(checkpoints);
            row.push(format!(
                "{} fits / {} hits",
                session.cache_stats().fits,
                session.cache_stats().hits
            ));
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["System".to_string()];
        header.extend(
            schedule
                .phases()
                .iter()
                .map(|p| format!("after {} ({}k iters)", p.label, p.iterations / 1000)),
        );
        header.push("curve cache".to_string());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        println!("{}", render_table(&header_refs, &rows));
        println!("(cumulative time in 10^3 seconds, as in the paper's y-axis)\n");
    }
}
