//! Fig. 14 (Appendix F): single-task multi-modal (ST MM) workload comparison.
//!
//! Even with a single task, Spindle's operator-level allocation parallelises
//! the task's two modality towers across device groups, so it still beats the
//! SOTA systems; DistMM-MT — designed exactly for this case — lands close to
//! Spindle, which is the fidelity check this experiment provides.

use spindle_baselines::SystemKind;
use spindle_bench::{cluster_label, compare_systems, ms, render_table, speedup};
use spindle_workloads::WorkloadPreset;

fn main() {
    println!("Fig. 14: single-task Multitask-CLIP comparison\n");
    let preset = WorkloadPreset::MultitaskClip { tasks: 1 };
    let mut rows = Vec::new();
    for gpus in [8usize, 16, 32] {
        for (system, time_ms, sp) in compare_systems(preset, gpus) {
            rows.push(vec![
                cluster_label(gpus),
                system.label().to_string(),
                ms(time_ms),
                speedup(sp),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["Cluster", "System", "Iteration (ms)", "vs DeepSpeed"],
            &rows
        )
    );
    let _ = SystemKind::ALL; // systems enumerated by compare_systems
}
