//! Fig. 15 (Appendix G): per-device memory consumption of Multitask-CLIP
//! (4 tasks, 16 GPUs) under every system.
//!
//! Reproduction targets: Spindle's per-device peak memory is generally lower
//! than Megatron-LM/DeepSpeed (selective parameter storage — only devices that
//! execute an operator hold its parameters) and far better balanced than
//! Spindle-Optimus' task-level allocation, thanks to the memory-balance
//! guideline of the device-placement step.

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::{measure, paper_cluster, render_table};
use spindle_workloads::multitask_clip;

fn main() {
    println!("Fig. 15: per-device memory consumption (GiB), Multitask-CLIP 4 tasks, 16 GPUs\n");
    let graph = multitask_clip(4).expect("workload builds");
    let mut session = SpindleSession::new(paper_cluster(16));

    let mut rows = Vec::new();
    for kind in SystemKind::ALL {
        let m = measure(kind, &graph, &mut session);
        let memory = m.report.device_memory_gib();
        let values: Vec<f64> = memory.values().copied().collect();
        let max = values.iter().copied().fold(0.0, f64::max);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let mut row = vec![
            kind.label().to_string(),
            format!("{avg:.1}"),
            format!("{max:.1}"),
            format!("{min:.1}"),
            format!("{:.2}", m.report.memory_imbalance()),
        ];
        // First eight devices, to mirror the spider chart's per-device view.
        for v in values.iter().take(8) {
            row.push(format!("{v:.1}"));
        }
        rows.push(row);
    }
    let mut header = vec![
        "System".to_string(),
        "Avg".to_string(),
        "Max".to_string(),
        "Min".to_string(),
        "Imbalance".to_string(),
    ];
    header.extend((0..8).map(|d| format!("gpu{d}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
}
