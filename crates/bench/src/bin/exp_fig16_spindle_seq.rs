//! Fig. 16 (Appendix H): system-implementation performance of Spindle.
//!
//! Spindle-Seq runs the same decoupled, task-sequential strategy as
//! Megatron-LM/DeepSpeed but through Spindle's plan/runtime machinery. The
//! paper uses it to show that Spindle's implementation adds no meaningful
//! overhead (speedups within ±7% of the SOTA systems); the gains of Fig. 8
//! therefore come from the scheduling strategy, not from implementation
//! differences.

use spindle_baselines::{SpindleSession, SystemKind};
use spindle_bench::{cluster_label, measure, ms, paper_cluster, render_table, speedup};
use spindle_workloads::{multitask_clip, ofasys, qwen_val, QwenValSize};

fn main() {
    println!("Fig. 16: Spindle-Seq vs Megatron-LM and DeepSpeed\n");
    let cases: Vec<(&str, spindle_graph::ComputationGraph, Vec<usize>)> = vec![
        (
            "Multitask-CLIP, 4 Tasks",
            multitask_clip(4).expect("clip"),
            vec![8, 16, 32],
        ),
        (
            "Multitask-CLIP, 7 Tasks",
            multitask_clip(7).expect("clip"),
            vec![8, 16, 32],
        ),
        (
            "Multitask-CLIP, 10 Tasks",
            multitask_clip(10).expect("clip"),
            vec![8, 16, 32],
        ),
        (
            "OFASys, 4 Tasks",
            ofasys(4).expect("ofasys"),
            vec![8, 16, 32],
        ),
        (
            "OFASys, 7 Tasks",
            ofasys(7).expect("ofasys"),
            vec![8, 16, 32],
        ),
        (
            "QWen-VAL 10B, 3 Tasks",
            qwen_val(QwenValSize::B9).expect("qwen"),
            vec![32, 64],
        ),
    ];
    for (name, graph, gpu_list) in cases {
        println!("== {name} ==");
        let mut rows = Vec::new();
        for gpus in gpu_list {
            let cluster = paper_cluster(gpus);
            let mut session = SpindleSession::new(cluster);
            let deepspeed = measure(SystemKind::DeepSpeed, &graph, &mut session);
            for kind in [
                SystemKind::SpindleSeq,
                SystemKind::MegatronLM,
                SystemKind::DeepSpeed,
            ] {
                let m = measure(kind, &graph, &mut session);
                rows.push(vec![
                    cluster_label(gpus),
                    kind.label().to_string(),
                    ms(m.iteration_ms),
                    speedup(deepspeed.iteration_ms / m.iteration_ms),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &["Cluster", "System", "Iteration (ms)", "vs DeepSpeed"],
                &rows
            )
        );
    }
}
