//! Tab. 1: experimental setup — the heterogeneity-awareness matrix of the
//! evaluated systems (1a) and the configuration of the MT MM models (1b).

use spindle_baselines::SystemKind;
use spindle_bench::render_table;
use spindle_workloads::{QwenValSize, WorkloadPreset};

fn main() {
    println!("Tab. 1a: heterogeneity awareness of system competitors\n");
    let rows: Vec<Vec<String>> = SystemKind::ALL
        .iter()
        .map(|kind| {
            vec![
                kind.label().to_string(),
                if kind.inter_task_aware() { "yes" } else { "no" }.to_string(),
                if kind.intra_task_aware() { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Competitor", "Inter-Task", "Intra-Task"], &rows)
    );

    println!("Tab. 1b: configuration of MT MM models for evaluation\n");
    let presets = [
        WorkloadPreset::MultitaskClip { tasks: 10 },
        WorkloadPreset::Ofasys { tasks: 7 },
        WorkloadPreset::QwenVal {
            size: QwenValSize::B9,
        },
    ];
    let rows: Vec<Vec<String>> = presets
        .iter()
        .map(|p| {
            let (name, params_b, modalities, tasks, cross_modal) =
                p.table1b_row().expect("preset builds");
            vec![
                name,
                format!("{params_b:.2}B"),
                modalities.to_string(),
                tasks.to_string(),
                cross_modal.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "MT MM Model",
                "# Param.",
                "# Modalities",
                "# Tasks",
                "Cross-Modal Module"
            ],
            &rows
        )
    );
}
