//! Tab. 2 (Appendix E): simulated iteration-time speedup over DeepSpeed on the
//! larger QWen-VAL variants (30B, 70B) and a 256-GPU cluster.
//!
//! The paper itself uses a simulation-based estimate for this table (the
//! physical cluster has 64 GPUs), so this binary is the closest experiment in
//! spirit to the original: same workloads, same cluster shape, same reference
//! system. Reproduction targets: Spindle sustains >1.3× over DeepSpeed while
//! the task-level and single-task baselines stay near 1×.

use spindle_bench::{compare_systems, render_table, speedup};
use spindle_workloads::{QwenValSize, WorkloadPreset};

fn main() {
    println!("Tab. 2: simulated speedup over DeepSpeed, 256 GPUs\n");
    let mut rows = Vec::new();
    let mut header = vec!["Systems".to_string()];
    let mut columns: Vec<Vec<(String, f64)>> = Vec::new();
    for size in [QwenValSize::B30, QwenValSize::B70] {
        header.push(size.label().to_string());
        let results = compare_systems(WorkloadPreset::QwenVal { size }, 256);
        columns.push(
            results
                .into_iter()
                .map(|(system, _, sp)| (system.label().to_string(), sp))
                .collect(),
        );
    }
    for (i, (system, _)) in columns[0].iter().enumerate() {
        let mut row = vec![system.clone()];
        for column in &columns {
            row.push(speedup(column[i].1));
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
}
