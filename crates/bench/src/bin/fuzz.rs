//! Scenario fuzzer: checks plan invariants for every planning system across
//! seeded randomized workload/cluster/churn configurations.
//!
//! ```text
//! fuzz [--seed N] [--draws M] [--index K] [--quick] [--no-shrink] [--verbose]
//! ```
//!
//! * `--seed N` — master seed (default 0xC0FFEE).
//! * `--draws M` — number of scenarios to draw and check (default 64).
//! * `--index K` — check only draw K (the form violation reports print).
//! * `--quick` — small scenario bounds (the CI smoke configuration).
//! * `--no-shrink` — report the original violating scenario unshrunk.
//! * `--verbose` — print every draw's configuration as it is checked.
//!
//! Exits non-zero on the first violation, printing the minimal reproducer's
//! serialized configuration and the exact command that re-runs it.

use std::process::ExitCode;

use spindle_bench::fuzz::{self, FuzzConfig};
use spindle_workloads::Scenario;

const DEFAULT_SEED: u64 = 0xC0_FFEE;
const DEFAULT_DRAWS: u64 = 64;

struct Args {
    seed: u64,
    draws: u64,
    index: Option<u64>,
    quick: bool,
    shrink: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: DEFAULT_SEED,
        draws: DEFAULT_DRAWS,
        index: None,
        quick: false,
        shrink: true,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?,
            "--draws" => args.draws = value("--draws")?,
            "--index" => args.index = Some(value("--index")?),
            "--quick" => args.quick = true,
            "--no-shrink" => args.shrink = false,
            "--verbose" => args.verbose = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn report_violation(scenario: &Scenario, violation: &fuzz::Violation) {
    println!("\nINVARIANT VIOLATION");
    println!("  {violation}");
    println!("  minimal scenario: {}", scenario.label());
    println!("  config: {}", scenario.to_json());
    println!("  reproduce with: {}", violation.repro_command());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = if args.quick {
        FuzzConfig::quick(args.seed, args.draws)
    } else {
        FuzzConfig::full(args.seed, args.draws)
    };
    cfg.shrink = args.shrink;

    if let Some(index) = args.index {
        let scenario = Scenario::draw(cfg.seed, index, &cfg.bounds);
        println!("{}", scenario.label());
        println!("config: {}", scenario.to_json());
        return match fuzz::check_scenario(&scenario, &cfg, None) {
            Ok(stats) => {
                println!(
                    "ok: {} plans checked, {} simulations, {} warm re-plans bit-identical, \
                     {} recovery checks",
                    stats.plans_checked,
                    stats.simulations,
                    stats.warm_identical,
                    stats.recovery_checked
                );
                ExitCode::SUCCESS
            }
            Err(v) => {
                let (min, v) = if cfg.shrink {
                    fuzz::shrink(scenario, v, &cfg, None)
                } else {
                    (scenario, v)
                };
                report_violation(&min, &v);
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "fuzzing {} draws from seed {:#x} ({} bounds, {} systems per draw)\n",
        cfg.draws,
        cfg.seed,
        if args.quick { "quick" } else { "full" },
        fuzz::FUZZ_SYSTEMS.len()
    );
    let verbose = args.verbose;
    let report = fuzz::run_with(&cfg, |index, label| {
        if verbose {
            println!("  {label}");
        } else if index % 16 == 0 {
            println!("  draw {index}...");
        }
    });
    match report.violation {
        None => {
            let s = report.stats;
            println!(
                "\nall {} draws clean: {} plans checked, {} simulations, \
                 {} warm re-plans bit-identical to cold plans, {} recovery checks",
                s.draws, s.plans_checked, s.simulations, s.warm_identical, s.recovery_checked
            );
            ExitCode::SUCCESS
        }
        Some((scenario, violation)) => {
            report_violation(&scenario, &violation);
            ExitCode::FAILURE
        }
    }
}
