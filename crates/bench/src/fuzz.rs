//! The scenario-fuzzing harness: drives every planning system through
//! randomized scenarios and checks plan invariants on each draw.
//!
//! One [`check_draw`] runs the full gauntlet for a single `(seed, index)`
//! draw: every phase of the scenario's churn trace is planned by Spindle
//! (via the incremental re-planner) and by three baselines, and each plan
//! must satisfy
//!
//! 1. **Structural validity** — full operator coverage, ordered waves,
//!    per-wave device capacity ([`ExecutionPlan::validate`]);
//! 2. **Placement** — every entry placed, on disjoint in-range devices
//!    ([`ExecutionPlan::check_placement_in_range`]);
//! 3. **Memory** — per-device estimates within the device's HBM
//!    ([`ExecutionPlan::check_memory`]);
//! 4. **Optimality bounds** — `makespan ≥ busy device-seconds / devices`
//!    (the averaging bound, sound for any schedule), and for plans with a
//!    serial wave timeline also `makespan ≥ theoretical_optimum` (the `Σ C̃*`
//!    of Theorem 1, computed by the session so decoupled baselines — which
//!    record an optimum of 0 in their plans — are held to the same bar);
//! 5. **Model agreement** — the event-driven simulator in serialized mode
//!    matches the analytical engine within a configured tolerance
//!    ([`SimReport::check_gap_within`](spindle_runtime::SimReport::check_gap_within));
//! 6. **Cache soundness** — Spindle's warm re-plan of an already-seen phase
//!    is bit-identical (wave-for-wave) to a cold plan of the same graph;
//! 7. **Robustness** — a heterogeneous contended simulation (slow devices,
//!    transient straggler windows, the scenario's drawn comm-overlap mode,
//!    link contention) still completes with a finite, positive iteration
//!    time no shorter than the plan's compute alone.
//!
//! Scenarios additionally carry a *device-level* churn trace (removals and
//! restores of whole device sets). For Spindle — the only system with an
//! elastic session — every device-churn event triggers a re-plan that is
//! pushed through the same invariants on the surviving cluster, with two
//! extra checks: no placement may reference a removed device, and after the
//! final restore the session must recur bit-identically with a cold plan on
//! the pristine cluster (invariant 6 under elasticity).
//!
//! 8. **Recovery accounting** — scenarios also draw a checkpoint cadence and
//!    a storage-tier bandwidth. At every device-churn event the runtime's
//!    migration/restore partition must agree with ground truth computed
//!    directly from the previous plan: restore bytes are charged *iff* some
//!    stateful MetaOp's every replica fell inside the removed set, the
//!    re-materialised count matches exactly, restore pricing over the drawn
//!    storage tier stays finite and positive, and the planner's own
//!    loss-side counters never claim a restore ground truth disproves.
//!    Finally, the steady-state checkpoint-write charge must be monotone in
//!    the cadence: checkpointing half as often can never cost more write
//!    time over a fixed horizon.
//!
//! A failed check becomes a [`Violation`] carrying the draw coordinates and
//! the serialized scenario; [`shrink`] then greedily re-checks the scenario's
//! reduction candidates to find a minimal reproducer. [`Mutation`]s exist to
//! prove the gauntlet has teeth: each one corrupts a plan in a way exactly
//! one invariant must catch.

use std::collections::BTreeMap;
use std::fmt;

use spindle_baselines::SystemKind;
use spindle_cluster::{ClusterSpec, DeviceId, StorageSpec};
use spindle_core::{ExecutionPlan, MetaOpId, SpindleSession};
use spindle_runtime::{
    migration_flows, price_checkpoint_write, price_restore, CheckpointPolicy, CommMode,
    RuntimeEngine, SimConfig, Simulator, Straggler,
};
use spindle_workloads::{FuzzBounds, Scenario};

/// The systems every draw is checked against: Spindle plus the three
/// baselines with distinct planning strategies (Optimus-style task-level
/// allocation, DistMM-style sequential tasks, DeepSpeed-style decoupled
/// data parallelism). Megatron-LM shares the decoupled code path with
/// DeepSpeed, and Spindle-Seq is a Fig. 16 implementation-overhead variant,
/// so neither adds invariant coverage.
pub const FUZZ_SYSTEMS: [SystemKind; 4] = [
    SystemKind::Spindle,
    SystemKind::SpindleOptimus,
    SystemKind::DistMmMt,
    SystemKind::DeepSpeed,
];

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; each draw folds its index into it.
    pub seed: u64,
    /// Number of scenarios to draw and check.
    pub draws: u64,
    /// Bounds of the scenario space.
    pub bounds: FuzzBounds,
    /// Maximum relative gap between the serialized simulator and the
    /// analytical engine.
    pub gap_tolerance: f64,
    /// Relative slack on the `makespan ≥ theoretical_optimum` bound. The
    /// bound is a continuous MPSP solution obtained by bisection (per-level
    /// epsilon 1e-7 s), so an exactly-optimal discrete plan can undercut it
    /// by a few 1e-7 s; 1e-3 relative absorbs that with margin.
    pub optimum_tolerance: f64,
    /// Whether to shrink a violating scenario to a minimal reproducer.
    pub shrink: bool,
}

impl FuzzConfig {
    /// Quick-mode run: small scenario bounds, suitable for CI smoke jobs.
    #[must_use]
    pub fn quick(seed: u64, draws: u64) -> Self {
        Self {
            seed,
            draws,
            bounds: FuzzBounds::quick(),
            gap_tolerance: 0.02,
            optimum_tolerance: 1e-3,
            shrink: true,
        }
    }

    /// Full-mode run: mid-scale scenario bounds.
    #[must_use]
    pub fn full(seed: u64, draws: u64) -> Self {
        Self {
            bounds: FuzzBounds::full(),
            ..Self::quick(seed, draws)
        }
    }
}

/// A deliberate plan corruption used to prove the invariant gauntlet catches
/// real violations (mutation testing of the fuzzer itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Removes one wave entry — breaks full operator coverage.
    DropEntry,
    /// Inflates one entry's device allocation past the cluster — breaks the
    /// per-wave capacity bound.
    OverAllocate,
    /// Inflates one entry's per-device memory estimate past any HBM — breaks
    /// the memory bound.
    InflateMemory,
    /// Scales the whole timeline down a million-fold — drives the makespan
    /// below the theoretical optimum.
    ShrinkMakespan,
}

impl Mutation {
    /// Every mutation, for exhaustive mutation-coverage tests.
    pub const ALL: [Mutation; 4] = [
        Mutation::DropEntry,
        Mutation::OverAllocate,
        Mutation::InflateMemory,
        Mutation::ShrinkMakespan,
    ];

    /// Applies this corruption to a copy of `plan`.
    #[must_use]
    pub fn apply(self, plan: &ExecutionPlan) -> ExecutionPlan {
        let mut waves = plan.waves().to_vec();
        match self {
            Mutation::DropEntry => {
                if let Some(wave) = waves.iter_mut().find(|w| !w.entries.is_empty()) {
                    wave.entries.remove(0);
                }
            }
            Mutation::OverAllocate => {
                if let Some(entry) = waves.iter_mut().flat_map(|w| w.entries.iter_mut()).next() {
                    entry.devices = plan.num_devices() + 7;
                }
            }
            Mutation::InflateMemory => {
                if let Some(entry) = waves.iter_mut().flat_map(|w| w.entries.iter_mut()).next() {
                    entry.memory_per_device = u64::MAX / 2;
                }
            }
            Mutation::ShrinkMakespan => {
                for wave in &mut waves {
                    wave.start *= 1e-6;
                    wave.duration *= 1e-6;
                    for entry in &mut wave.entries {
                        entry.time_per_op *= 1e-6;
                        entry.exec_time *= 1e-6;
                    }
                }
            }
        }
        ExecutionPlan::new(
            waves,
            plan.metagraph_handle(),
            plan.num_devices(),
            plan.theoretical_optimum(),
            plan.planning_time(),
        )
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mutation::DropEntry => "drop-entry",
            Mutation::OverAllocate => "over-allocate",
            Mutation::InflateMemory => "inflate-memory",
            Mutation::ShrinkMakespan => "shrink-makespan",
        };
        f.write_str(s)
    }
}

/// One invariant violation: which check failed, where, and the full offending
/// configuration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Seed of the violating run.
    pub seed: u64,
    /// Draw index within the run.
    pub index: u64,
    /// System whose plan violated the invariant, when attributable.
    pub system: Option<SystemKind>,
    /// Phase label (active set) at the violation.
    pub phase: String,
    /// Human-readable description of the failed check.
    pub detail: String,
    /// The offending scenario, serialized as JSON.
    pub scenario_json: String,
}

impl Violation {
    fn new(scenario: &Scenario, system: Option<SystemKind>, phase: &str, detail: String) -> Self {
        Self {
            seed: scenario.seed,
            index: scenario.index,
            system,
            phase: phase.to_string(),
            detail,
            scenario_json: scenario.to_json(),
        }
    }

    /// The command reproducing this violation.
    #[must_use]
    pub fn repro_command(&self) -> String {
        format!(
            "cargo run --release -p spindle-bench --bin fuzz -- --seed {} --index {}",
            self.seed, self.index
        )
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let system = self
            .system
            .map_or_else(|| "generator".to_string(), |s| s.to_string());
        write!(
            f,
            "seed {} draw {} [{system}] phase \"{}\": {}",
            self.seed, self.index, self.phase, self.detail
        )
    }
}

/// Whether the plan's waves form a serial timeline: every wave starts at or
/// after its predecessor ends (up to float noise). Only such plans are
/// directly comparable to the wave-barriered serialized simulator.
#[must_use]
pub fn has_serial_timeline(plan: &ExecutionPlan) -> bool {
    plan.waves()
        .windows(2)
        .all(|w| w[1].start >= w[0].end() - 1e-9)
}

/// Counters accumulated over the checked draws.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Scenarios checked.
    pub draws: u64,
    /// Phase plans produced and checked (across all systems).
    pub plans_checked: u64,
    /// Spindle warm re-plans that were bit-identical to cold plans.
    pub warm_identical: u64,
    /// Simulations executed (serialized + heterogeneous contended).
    pub simulations: u64,
    /// Device-churn events whose recovery accounting (restore-iff-all-dead,
    /// re-materialised counts, restore pricing) was verified.
    pub recovery_checked: u64,
}

/// Checks every invariant for one scenario. `mutation` corrupts Spindle's
/// first-phase plan before checking — used by mutation-coverage tests; pass
/// `None` for real fuzzing.
///
/// # Errors
///
/// Returns the first [`Violation`] encountered.
pub fn check_scenario(
    scenario: &Scenario,
    cfg: &FuzzConfig,
    mutation: Option<Mutation>,
) -> Result<FuzzStats, Box<Violation>> {
    let mut stats = FuzzStats::default();
    // The drawn storage tier (spine keeps the default 4x node-link ratio)
    // propagates through `without_devices`, so churned survivor clusters
    // price restores against the same tier.
    let cluster = ClusterSpec::homogeneous(scenario.nodes, scenario.gpus_per_node).with_storage(
        StorageSpec {
            node_bandwidth: scenario.storage_gbps * 1e9,
            spine_bandwidth: scenario.storage_gbps * 4e9,
            latency_s: 2e-3,
        },
    );
    let policy = scenario
        .checkpoint_cadence
        .map_or_else(CheckpointPolicy::default, CheckpointPolicy::every);
    let capacity = cluster.device_memory_bytes();
    let phases = scenario.phases().map_err(|e| {
        Box::new(Violation::new(
            scenario,
            None,
            "generation",
            format!("phase graph failed to build: {e}"),
        ))
    })?;
    let speed_factors: BTreeMap<DeviceId, f64> = scenario
        .speed_factors
        .iter()
        .map(|&(d, f)| (DeviceId(d), f))
        .collect();
    let stragglers: Vec<Straggler> = scenario
        .straggler_windows
        .iter()
        .map(|w| Straggler {
            device: DeviceId(w.device),
            slowdown: w.slowdown,
            from_s: w.from_s,
            until_s: w.until_s,
        })
        .collect();
    let hetero_config = SimConfig {
        seed: scenario.seed ^ scenario.index,
        comm_mode: if scenario.overlap_comm {
            CommMode::Overlapped
        } else {
            CommMode::Serialized
        },
        speed_factors,
        stragglers,
        ..SimConfig::contended()
    };

    for &system in &FUZZ_SYSTEMS {
        let mut session = SpindleSession::new(cluster.clone());
        let mut planner = system.planning_system();
        for (phase, graph) in &phases {
            let fail =
                |detail: String| Box::new(Violation::new(scenario, Some(system), phase, detail));
            // Spindle goes through the incremental re-planner so churn
            // exercises the structural plan cache; baselines plan cold.
            let plan = if system == SystemKind::Spindle {
                session.replan(graph).map_err(|e| fail(e.to_string()))?.plan
            } else {
                planner
                    .plan(graph, &mut session)
                    .map_err(|e| fail(e.to_string()))?
            };
            let plan = match mutation {
                Some(m) if system == SystemKind::Spindle => m.apply(&plan),
                _ => plan,
            };
            stats.plans_checked += 1;

            // 1–3: structure, placement, capacity, memory.
            plan.check_invariants(capacity)
                .map_err(|e| fail(format!("invariant: {e}")))?;

            // 4: lower bounds on the makespan. Two bounds apply:
            //
            // * The averaging bound — busy device-seconds cannot exceed
            //   `makespan × num_devices` — holds for *any* schedule.
            // * The session's `Σ C̃*` is the optimum of *level-synchronous*
            //   schedules (Theorem 1 assumes wavefront level barriers).
            //   Task-parallel plans (Optimus) overlap heterogeneous-depth
            //   tasks across level boundaries and can legitimately finish
            //   below it, so it is enforced only on serial-timeline plans
            //   (which decoupled and sequential baselines also produce).
            let makespan = plan.makespan();
            let busy: f64 = plan
                .waves()
                .iter()
                .flat_map(|w| w.entries.iter())
                .map(|e| e.exec_time * f64::from(e.devices))
                .sum();
            let averaging_bound = busy / f64::from(plan.num_devices());
            if makespan < averaging_bound * (1.0 - cfg.optimum_tolerance) {
                return Err(fail(format!(
                    "makespan {makespan:.6}s packs {busy:.6} busy device-seconds onto \
                     {} devices (averaging bound {averaging_bound:.6}s)",
                    plan.num_devices()
                )));
            }
            if has_serial_timeline(&plan) {
                let optimum = session
                    .theoretical_optimum(graph)
                    .map_err(|e| fail(format!("optimum bound unavailable: {e}")))?;
                if makespan < optimum * (1.0 - cfg.optimum_tolerance) {
                    return Err(fail(format!(
                        "makespan {makespan:.6}s beats the theoretical optimum {optimum:.6}s"
                    )));
                }
            }

            // 5: analytical engine vs event-driven simulator, serialized.
            // The two models agree tightly only when the plan's wave
            // timeline is itself serial (each wave starts at or after its
            // predecessor's end) — true for Spindle's wavefront plans and
            // the decoupled baselines. Optimus-style plans place
            // task-parallel waves at overlapping timeline positions; the
            // simulator's wave barriers then serialize work the analytical
            // makespan counts as concurrent, so only the one-sided bound
            // (the simulator is never *faster*) is sound there.
            let analytical = RuntimeEngine::new(plan.clone(), &cluster)
                .with_graph(graph.clone())
                .run_iteration()
                .map_err(|e| fail(format!("analytical engine: {e}")))?
                .iteration_time_s();
            let serialized = Simulator::new(plan.clone(), &cluster)
                .with_graph(graph.clone())
                .run_iteration()
                .map_err(|e| fail(format!("serialized simulation: {e}")))?;
            stats.simulations += 1;
            if has_serial_timeline(&plan) {
                serialized
                    .check_gap_within(analytical, cfg.gap_tolerance)
                    .map_err(|e| fail(e.to_string()))?;
            } else if serialized.gap_vs(analytical) < -cfg.gap_tolerance {
                return Err(fail(format!(
                    "simulated iteration {:.6}s undercuts the analytical {analytical:.6}s \
                     on a plan with overlapping waves",
                    serialized.total_s()
                )));
            }

            // 7: heterogeneous contended simulation stays sane. Slow
            // devices, straggler windows, the drawn comm-overlap mode and
            // contention can move the total either way relative to the
            // serialized run, but it can never finish faster than the
            // plan's pure compute on the slowest assigned device.
            let hetero = Simulator::new(plan.clone(), &cluster)
                .with_graph(graph.clone())
                .with_config(hetero_config.clone())
                .run_iteration()
                .map_err(|e| fail(format!("heterogeneous simulation: {e}")))?;
            stats.simulations += 1;
            if !hetero.total_s().is_finite() || hetero.total_s() <= 0.0 {
                return Err(fail(format!(
                    "heterogeneous simulation produced a degenerate total of {}s",
                    hetero.total_s()
                )));
            }
            if hetero.total_s() + 1e-9 < makespan {
                return Err(fail(format!(
                    "heterogeneous simulation finished in {:.6}s, faster than the plan's \
                     own compute makespan {makespan:.6}s",
                    hetero.total_s()
                )));
            }

            // 6: warm re-plan bit-identity. A fresh session planning the
            // same graph cold must produce exactly the waves the warm
            // incremental path produced.
            if system == SystemKind::Spindle && mutation.is_none() {
                let mut cold = SpindleSession::new(cluster.clone());
                let cold_plan = cold
                    .plan(graph)
                    .map_err(|e| fail(format!("cold re-plan failed: {e}")))?;
                if cold_plan.waves() != plan.waves() {
                    return Err(fail(format!(
                        "warm re-plan diverged from the cold plan: {} vs {} waves, \
                         makespans {:.9}s vs {:.9}s",
                        plan.waves().len(),
                        cold_plan.waves().len(),
                        plan.makespan(),
                        cold_plan.makespan()
                    )));
                }
                stats.warm_identical += 1;
            }
        }

        // Device-level churn — Spindle only (baselines have no elastic
        // session). Every removal/restore re-plans the last phase graph on
        // the surviving devices and pushes the result through the same
        // gauntlet, plus: no placement may reference a removed device.
        if system == SystemKind::Spindle && mutation.is_none() && !scenario.device_churn.is_empty()
        {
            let (last_phase, graph) = phases.last().expect("phases are non-empty");
            let phase = format!("{last_phase} +device-churn");
            let fail =
                |detail: String| Box::new(Violation::new(scenario, Some(system), &phase, detail));
            // The placement the first churn event diffs against; updated
            // after every event so each re-plan is compared to its true
            // predecessor. Served from the warm cache (bit-identical to the
            // phase plan per invariant 6).
            let mut prev_plan = session
                .replan(graph)
                .map_err(|e| fail(format!("pre-churn snapshot re-plan: {e}")))?
                .plan;
            for event in &scenario.device_churn {
                let ids: Vec<DeviceId> = event.devices.iter().map(|&d| DeviceId(d)).collect();
                if event.remove {
                    session
                        .remove_devices(&ids)
                        .map_err(|e| fail(format!("device removal {ids:?}: {e}")))?;
                } else {
                    session.restore_devices(&ids);
                }
                let outcome = session
                    .replan(graph)
                    .map_err(|e| fail(format!("churn re-plan: {e}")))?;
                let planner_rematerialized = outcome.rematerialized_metaops;
                let planner_restore_bytes = outcome.restore_bytes;
                let plan = outcome.plan;
                stats.plans_checked += 1;
                plan.check_invariants(capacity)
                    .map_err(|e| fail(format!("churn invariant: {e}")))?;
                let removed = session.removed_devices();
                for (w, wave) in plan.waves().iter().enumerate() {
                    for entry in &wave.entries {
                        if let Some(group) = &entry.placement {
                            if let Some(&dead) = removed.iter().find(|&&d| group.contains(d)) {
                                return Err(fail(format!(
                                    "wave {w} places {} on removed device {dead:?}",
                                    entry.metaop
                                )));
                            }
                        }
                    }
                }
                // The surviving cluster still satisfies invariants 5 and 7:
                // serialized simulation matches the analytical engine, the
                // heterogeneous contended one stays finite and positive.
                let churned = session.cluster_handle();
                let analytical = RuntimeEngine::new(plan.clone(), &churned)
                    .with_graph(graph.clone())
                    .run_iteration()
                    .map_err(|e| fail(format!("churned analytical engine: {e}")))?
                    .iteration_time_s();
                let serialized = Simulator::new(plan.clone(), &churned)
                    .with_graph(graph.clone())
                    .run_iteration()
                    .map_err(|e| fail(format!("churned serialized simulation: {e}")))?;
                stats.simulations += 1;
                if has_serial_timeline(&plan) {
                    serialized
                        .check_gap_within(analytical, cfg.gap_tolerance)
                        .map_err(|e| fail(format!("churned plan: {e}")))?;
                }
                let hetero = Simulator::new(plan.clone(), &churned)
                    .with_graph(graph.clone())
                    .with_config(hetero_config.clone())
                    .run_iteration()
                    .map_err(|e| fail(format!("churned heterogeneous simulation: {e}")))?;
                stats.simulations += 1;
                if !hetero.total_s().is_finite() || hetero.total_s() <= 0.0 {
                    return Err(fail(format!(
                        "churned heterogeneous simulation produced a degenerate total of {}s",
                        hetero.total_s()
                    )));
                }
                // Invariant 8: recovery accounting. Diff the plan against its
                // predecessor on the surviving cluster: restore traffic exists
                // iff some stateful MetaOp lost every replica, the per-MetaOp
                // count is exact, and restore pricing over the drawn storage
                // tier stays finite and positive.
                let mut old_sites: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
                for wave in prev_plan.waves() {
                    for entry in &wave.entries {
                        if let Some(group) = &entry.placement {
                            let sites = old_sites.entry(entry.metaop).or_default();
                            for d in group.iter() {
                                if !sites.contains(&d) {
                                    sites.push(d);
                                }
                            }
                        }
                    }
                }
                let mut new_live: Vec<MetaOpId> = Vec::new();
                for wave in plan.waves() {
                    for entry in &wave.entries {
                        if entry.placement.is_some()
                            && entry.memory_per_device > 0
                            && !new_live.contains(&entry.metaop)
                        {
                            new_live.push(entry.metaop);
                        }
                    }
                }
                let truly_dead = old_sites
                    .iter()
                    .filter(|(id, sites)| {
                        new_live.contains(id) && sites.iter().all(|d| removed.contains(d))
                    })
                    .count();
                let migration = migration_flows(&prev_plan, &plan, &churned);
                if migration.rematerialized_metaops() != truly_dead {
                    return Err(fail(format!(
                        "runtime re-materialises {} MetaOps but ground truth says {} lost \
                         every replica",
                        migration.rematerialized_metaops(),
                        truly_dead
                    )));
                }
                if (migration.restore_bytes() > 0) != (truly_dead > 0) {
                    return Err(fail(format!(
                        "restore_bytes {} disagrees with {} all-replicas-dead MetaOps",
                        migration.restore_bytes(),
                        truly_dead
                    )));
                }
                if policy.enabled() && !migration.restores.is_empty() {
                    let stall = price_restore(&churned, &migration.restores, &policy, true);
                    if !stall.is_finite() || stall <= 0.0 {
                        return Err(fail(format!(
                            "restore of {} bytes priced to a degenerate {stall}s",
                            migration.restore_bytes()
                        )));
                    }
                }
                // The session's own loss-side counters are best-effort (a
                // fallback full re-plan loses the old placement and reports
                // zero), so hold them to one-directional consistency only.
                if (planner_rematerialized > 0) != (planner_restore_bytes > 0) {
                    return Err(fail(format!(
                        "session counters disagree: {planner_rematerialized} re-materialised \
                         MetaOps vs {planner_restore_bytes} restore bytes"
                    )));
                }
                if planner_restore_bytes > 0 && truly_dead == 0 {
                    return Err(fail(format!(
                        "session reports {planner_restore_bytes} restore bytes but no MetaOp \
                         lost every replica"
                    )));
                }
                stats.recovery_checked += 1;
                prev_plan = plan;
            }
            // Restore whatever is still down: the session must recur
            // bit-identically with a cold plan on the pristine cluster
            // (invariant 6 under elasticity).
            let still_down = session.removed_devices().to_vec();
            if !still_down.is_empty() {
                session.restore_devices(&still_down);
            }
            let outcome = session
                .replan(graph)
                .map_err(|e| fail(format!("post-restore re-plan: {e}")))?;
            let mut cold = SpindleSession::new(cluster.clone());
            let cold_plan = cold
                .plan(graph)
                .map_err(|e| fail(format!("post-restore cold plan: {e}")))?;
            if outcome.plan.waves() != cold_plan.waves() {
                return Err(fail(format!(
                    "restore-then-replan diverged from the cold plan: {} vs {} waves, \
                     makespans {:.9}s vs {:.9}s",
                    outcome.plan.waves().len(),
                    cold_plan.waves().len(),
                    outcome.plan.makespan(),
                    cold_plan.makespan()
                )));
            }
            stats.warm_identical += 1;
            // Invariant 8, write-side: over a fixed horizon, checkpointing
            // half as often can never cost more write time than the drawn
            // cadence — the steady-state charge is monotone.
            if let Some(k) = scenario.checkpoint_cadence {
                const HORIZON_ITERS: u64 = 256;
                let charge = |cadence: u32| {
                    let p = CheckpointPolicy::every(cadence);
                    #[allow(clippy::cast_precision_loss)]
                    let n = p.checkpoints_in(HORIZON_ITERS) as f64;
                    n * price_checkpoint_write(&cluster, &outcome.plan, &p, true)
                };
                let dense = charge(k);
                let sparse = charge(k.saturating_mul(2));
                if sparse > dense + 1e-9 {
                    return Err(fail(format!(
                        "checkpoint write charge is not monotone in cadence: every {k} iters \
                         costs {dense:.9}s over {HORIZON_ITERS} iters, every {} costs \
                         {sparse:.9}s",
                        k.saturating_mul(2)
                    )));
                }
                stats.recovery_checked += 1;
            }
        }
    }
    stats.draws = 1;
    Ok(stats)
}

/// Draws and checks scenario `index` of the run seeded by `cfg.seed`.
///
/// # Errors
///
/// Returns the first [`Violation`] encountered.
pub fn check_draw(cfg: &FuzzConfig, index: u64) -> Result<FuzzStats, Box<Violation>> {
    check_scenario(&Scenario::draw(cfg.seed, index, &cfg.bounds), cfg, None)
}

/// Upper bound on re-checks one shrink loop may spend.
pub const SHRINK_CHECK_BUDGET: usize = 100;

/// Greedily shrinks `scenario` to a smaller one that still fails, re-checking
/// candidates from [`Scenario::shrink_candidates`] until none fails or the
/// check budget runs out. Returns the minimal scenario and its violation.
#[must_use]
pub fn shrink(
    scenario: Scenario,
    violation: Box<Violation>,
    cfg: &FuzzConfig,
    mutation: Option<Mutation>,
) -> (Scenario, Box<Violation>) {
    let mut current = scenario;
    let mut current_violation = violation;
    let mut budget = SHRINK_CHECK_BUDGET;
    'outer: loop {
        for candidate in current.shrink_candidates() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(v) = check_scenario(&candidate, cfg, mutation) {
                current = candidate;
                current_violation = v;
                continue 'outer;
            }
        }
        break;
    }
    (current, current_violation)
}

/// Result of a whole fuzz run: accumulated stats plus the (shrunk) violation
/// that stopped it, if any.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Accumulated counters over all checked draws.
    pub stats: FuzzStats,
    /// The violation that stopped the run, already shrunk when the config
    /// asks for it, together with the minimal scenario.
    pub violation: Option<(Scenario, Box<Violation>)>,
}

/// Runs `cfg.draws` seeded draws, stopping at (and shrinking) the first
/// violation.
#[must_use]
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    run_with(cfg, |_, _| {})
}

/// [`run`] with a per-draw progress callback `(index, label)`.
pub fn run_with(cfg: &FuzzConfig, mut progress: impl FnMut(u64, &str)) -> FuzzReport {
    let mut stats = FuzzStats::default();
    for index in 0..cfg.draws {
        let scenario = Scenario::draw(cfg.seed, index, &cfg.bounds);
        progress(index, &scenario.label());
        match check_scenario(&scenario, cfg, None) {
            Ok(s) => {
                stats.draws += s.draws;
                stats.plans_checked += s.plans_checked;
                stats.warm_identical += s.warm_identical;
                stats.simulations += s.simulations;
                stats.recovery_checked += s.recovery_checked;
            }
            Err(v) => {
                let (scenario, v) = if cfg.shrink {
                    shrink(scenario, v, cfg, None)
                } else {
                    (scenario, v)
                };
                return FuzzReport {
                    stats,
                    violation: Some((scenario, v)),
                };
            }
        }
    }
    FuzzReport {
        stats,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::Modality;
    use spindle_workloads::{DeviceChurnDraw, FuzzTask, TowerShape};

    fn tiny_cfg() -> FuzzConfig {
        FuzzConfig::quick(0xF022, 4)
    }

    /// A hand-built scenario whose single churn event removes a whole node
    /// under a multi-task roster, guaranteeing at least one MetaOp loses
    /// every replica — so the restore-iff-all-dead invariant is exercised on
    /// its positive side, not just vacuously.
    #[test]
    fn whole_node_loss_exercises_the_restore_invariant() {
        let modalities = [
            Modality::Vision,
            Modality::Audio,
            Modality::Depth,
            Modality::Thermal,
            Modality::Motion,
        ];
        let tasks: Vec<FuzzTask> = modalities
            .iter()
            .enumerate()
            .map(|(i, &modality)| FuzzTask {
                modality,
                batch: 8 + 4 * u32::try_from(i).unwrap(),
                seq: 64,
                hidden: 256,
                tower_layers: 2 + i % 3,
                shape: TowerShape::Dual,
            })
            .collect();
        let scenario = Scenario {
            seed: 0xD00D,
            index: 0,
            nodes: 2,
            gpus_per_node: 4,
            active: vec![true; tasks.len()],
            tasks,
            churn: vec![],
            speed_factors: vec![],
            overlap_comm: false,
            straggler_windows: vec![],
            device_churn: vec![DeviceChurnDraw {
                remove: true,
                devices: vec![4, 5, 6, 7],
            }],
            checkpoint_cadence: Some(3),
            storage_gbps: 8.0,
        };
        // Ground truth first: on this roster the node-1 removal really does
        // strand MetaOps with zero surviving replicas, so the harness check
        // below cannot pass vacuously.
        let cluster = ClusterSpec::homogeneous(2, 4).with_storage(spindle_cluster::StorageSpec {
            node_bandwidth: 8e9,
            spine_bandwidth: 32e9,
            latency_s: 2e-3,
        });
        let phases = scenario.phases().expect("phase graphs build");
        let (_, graph) = phases.last().expect("roster is non-empty");
        let mut session = SpindleSession::new(cluster);
        let before = session.replan(graph).expect("initial plan").plan;
        let dead: Vec<DeviceId> = (4..8).map(DeviceId).collect();
        session.remove_devices(&dead).expect("node removal");
        let after = session.replan(graph).expect("churn re-plan").plan;
        let survivors = session.cluster_handle();
        let migration = migration_flows(&before, &after, &survivors);
        assert!(
            migration.restore_bytes() > 0,
            "whole-node loss must strand at least one MetaOp"
        );
        // The full gauntlet passes and counts both the per-event recovery
        // check and the cadence-monotonicity check.
        let stats = check_scenario(&scenario, &tiny_cfg(), None).unwrap_or_else(|v| panic!("{v}"));
        assert!(stats.recovery_checked >= 2, "{stats:?}");
    }

    #[test]
    fn clean_draws_pass_every_invariant() {
        let cfg = tiny_cfg();
        for index in 0..cfg.draws {
            let stats = check_draw(&cfg, index).unwrap_or_else(|v| panic!("{v}"));
            assert!(stats.plans_checked >= FUZZ_SYSTEMS.len() as u64);
            assert!(stats.warm_identical >= 1);
        }
    }

    #[test]
    fn every_mutation_is_caught() {
        let cfg = tiny_cfg();
        let scenario = Scenario::draw(cfg.seed, 0, &cfg.bounds);
        for mutation in Mutation::ALL {
            let v = check_scenario(&scenario, &cfg, Some(mutation))
                .expect_err("corrupted plan must violate an invariant");
            assert_eq!(v.system, Some(SystemKind::Spindle), "{mutation}: {v}");
        }
    }

    #[test]
    fn mutations_target_distinct_invariants() {
        let cfg = tiny_cfg();
        let scenario = Scenario::draw(cfg.seed, 1, &cfg.bounds);
        let detail = |m: Mutation| {
            check_scenario(&scenario, &cfg, Some(m))
                .expect_err("mutation must be caught")
                .detail
        };
        assert!(detail(Mutation::DropEntry).contains("scheduled"));
        assert!(detail(Mutation::OverAllocate).contains("devices"));
        assert!(detail(Mutation::InflateMemory).contains("bytes/device"));
        assert!(detail(Mutation::ShrinkMakespan).contains("beats the theoretical optimum"));
    }

    #[test]
    fn violations_shrink_to_smaller_scenarios() {
        let cfg = tiny_cfg();
        // Find a multi-task draw so there is room to shrink.
        let scenario = (0..32)
            .map(|i| Scenario::draw(cfg.seed, i, &cfg.bounds))
            .find(|s| s.tasks.len() > 2 || !s.churn.is_empty())
            .expect("quick bounds produce multi-task draws");
        let mutation = Some(Mutation::InflateMemory);
        let v = check_scenario(&scenario, &cfg, mutation).expect_err("mutation must fail");
        let (min, min_v) = shrink(scenario.clone(), v, &cfg, mutation);
        assert!(
            min.tasks.len() < scenario.tasks.len()
                || min.churn.len() < scenario.churn.len()
                || min.num_devices() < scenario.num_devices()
                || min
                    .tasks
                    .iter()
                    .zip(&scenario.tasks)
                    .any(|(a, b)| a.tower_layers < b.tower_layers),
            "shrinking must reduce at least one dimension"
        );
        assert!(min_v.detail.contains("bytes/device"), "{min_v}");
        // The minimal reproducer still fails on a fresh check.
        check_scenario(&min, &cfg, mutation).expect_err("minimal scenario must still fail");
        assert!(min_v.repro_command().contains("--seed"));
    }
}
