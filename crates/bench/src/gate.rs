//! The perf-regression gate: compares a bench report against a committed
//! baseline with noise-tolerant thresholds.
//!
//! Bench targets write flat JSON reports (`bench name → ns/iter`, see
//! [`microbench::write_json_report`](crate::microbench::write_json_report)).
//! The gate parses the committed `BENCH_baseline.json` and one or more fresh
//! reports, computes per-entry deltas, and classifies each entry:
//!
//! * **fail** — more than `fail_pct` slower than baseline (default 30%),
//! * **warn** — more than `warn_pct` slower (default 15%),
//! * **pass** — within the noise band (or faster),
//! * **new** — present only in the current report (informational),
//! * **gone** — a baseline key missing from the fresh run. This **fails**
//!   the gate: a silently vanished bench is indistinguishable from a
//!   regression nobody measures any more (remove the baseline entry
//!   deliberately when retiring a bench).
//!
//! Entries whose baseline and current means are both under the noise floor
//! (default 500 ns) never fail: at that scale the timer resolution dominates.
//! Latency-distribution entries — names containing `_p99` — are gated with a
//! band twice as wide as means: a p99 is a single order statistic of a tail,
//! inherently noisier than a mean over many iterations, and gating it as
//! tightly would page on scheduler jitter rather than regressions.
//! No external JSON crate is available offline, so parsing is hand-rolled for
//! exactly the flat object shape the bench harness emits.

use std::fmt::Write as _;

/// Thresholds of the gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Relative slowdown that fails the gate (0.30 = +30%).
    pub fail_pct: f64,
    /// Relative slowdown that warns (0.15 = +15%).
    pub warn_pct: f64,
    /// Entries with both sides under this many ns/iter never fail or warn.
    pub noise_floor_ns: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            fail_pct: 0.30,
            warn_pct: 0.15,
            noise_floor_ns: 500.0,
        }
    }
}

impl GateConfig {
    /// How much wider the tolerance band of a tail-latency entry is than a
    /// mean's: a p99 is one order statistic, not an average, so the same
    /// percentage band would flag scheduler jitter as a regression.
    pub const TAIL_BAND_FACTOR: f64 = 2.0;

    /// `true` for entries gated with the widened tail band (latency
    /// percentile keys, marked by a `_p99` name segment).
    #[must_use]
    pub fn is_tail_entry(name: &str) -> bool {
        name.contains("_p99")
    }

    /// The fail threshold applied to `name`.
    #[must_use]
    pub fn fail_pct_for(&self, name: &str) -> f64 {
        if Self::is_tail_entry(name) {
            self.fail_pct * Self::TAIL_BAND_FACTOR
        } else {
            self.fail_pct
        }
    }

    /// The warn threshold applied to `name`.
    #[must_use]
    pub fn warn_pct_for(&self, name: &str) -> f64 {
        if Self::is_tail_entry(name) {
            self.warn_pct * Self::TAIL_BAND_FACTOR
        } else {
            self.warn_pct
        }
    }
}

/// Classification of one gate entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise band (or faster than baseline).
    Pass,
    /// Slower than the warn threshold but within the fail threshold.
    Warn,
    /// Slower than the fail threshold.
    Fail,
    /// Present only in the current report (a newly added bench).
    New,
    /// Present only in the baseline (a removed bench) — fails the gate.
    Gone,
}

impl Verdict {
    /// Short marker used in the delta table.
    #[must_use]
    pub fn marker(self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
            Verdict::New => "new",
            Verdict::Gone => "gone",
        }
    }
}

/// One compared bench entry.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// Bench name.
    pub name: String,
    /// Baseline mean, ns/iter (`None` for new benches).
    pub baseline_ns: Option<f64>,
    /// Current mean, ns/iter (`None` for removed benches).
    pub current_ns: Option<f64>,
    /// Relative delta `current/baseline - 1` when both sides exist.
    pub delta: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// The full gate result.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Compared entries, in baseline order followed by new entries.
    pub entries: Vec<GateEntry>,
}

impl GateReport {
    /// Returns `true` if any entry failed — either a slowdown beyond the
    /// threshold or a baseline key missing from the fresh run.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.verdict, Verdict::Fail | Verdict::Gone))
    }

    /// Number of warning entries.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.verdict == Verdict::Warn)
            .count()
    }

    /// Renders the delta table as GitHub-flavoured markdown (also perfectly
    /// readable in a terminal).
    #[must_use]
    pub fn to_markdown(&self, config: &GateConfig) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| bench | baseline ns/iter | current ns/iter | delta | verdict |"
        );
        let _ = writeln!(out, "|---|---:|---:|---:|---|");
        for e in &self.entries {
            let baseline = e.baseline_ns.map_or("—".to_string(), |v| format!("{v:.0}"));
            let current = e.current_ns.map_or("—".to_string(), |v| format!("{v:.0}"));
            let delta = e
                .delta
                .map_or("—".to_string(), |d| format!("{:+.1}%", d * 100.0));
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                e.name,
                baseline,
                current,
                delta,
                e.verdict.marker()
            );
        }
        let _ = writeln!(
            out,
            "\nthresholds: fail >{:.0}% slowdown, warn >{:.0}%, noise floor {:.0} ns \
             ({}x band for _p99 tail entries)",
            config.fail_pct * 100.0,
            config.warn_pct * 100.0,
            config.noise_floor_ns,
            GateConfig::TAIL_BAND_FACTOR
        );
        out
    }
}

/// Parses the flat `{"name": number, ...}` JSON shape emitted by the bench
/// harness.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_flat_json(text: &str) -> Result<Vec<(String, f64)>, String> {
    let trimmed = text.trim();
    let inner = trimmed
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "expected a top-level JSON object".to_string())?;
    let mut entries = Vec::new();
    for segment in inner.split(',') {
        let segment = segment.trim();
        if segment.is_empty() {
            continue;
        }
        let (key, value) = segment
            .split_once(':')
            .ok_or_else(|| format!("malformed entry: {segment:?}"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {key:?}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad number for {key:?}: {e}"))?;
        entries.push((key.to_string(), value));
    }
    Ok(entries)
}

/// Compares `current` against `baseline` under `config`.
#[must_use]
pub fn compare(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    config: &GateConfig,
) -> GateReport {
    let lookup = |set: &[(String, f64)], name: &str| -> Option<f64> {
        set.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    };
    let mut entries = Vec::new();
    for (name, base) in baseline {
        match lookup(current, name) {
            Some(cur) => {
                let delta = cur / base.max(f64::MIN_POSITIVE) - 1.0;
                let in_noise_floor = *base < config.noise_floor_ns && cur < config.noise_floor_ns;
                let verdict = if in_noise_floor || delta <= config.warn_pct_for(name) {
                    Verdict::Pass
                } else if delta <= config.fail_pct_for(name) {
                    Verdict::Warn
                } else {
                    Verdict::Fail
                };
                entries.push(GateEntry {
                    name: name.clone(),
                    baseline_ns: Some(*base),
                    current_ns: Some(cur),
                    delta: Some(delta),
                    verdict,
                });
            }
            None => entries.push(GateEntry {
                name: name.clone(),
                baseline_ns: Some(*base),
                current_ns: None,
                delta: None,
                verdict: Verdict::Gone,
            }),
        }
    }
    for (name, cur) in current {
        if lookup(baseline, name).is_none() {
            entries.push(GateEntry {
                name: name.clone(),
                baseline_ns: None,
                current_ns: Some(*cur),
                delta: None,
                verdict: Verdict::New,
            });
        }
    }
    GateReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect()
    }

    #[test]
    fn parse_roundtrips_the_harness_format() {
        let text = "{\n  \"a\": 123.4,\n  \"b_c/d\": 5000.0\n}\n";
        let parsed = parse_flat_json(text).unwrap();
        assert_eq!(parsed, set(&[("a", 123.4), ("b_c/d", 5000.0)]));
        assert_eq!(parse_flat_json("{}").unwrap(), Vec::new());
        assert!(parse_flat_json("[1,2]").is_err());
        assert!(parse_flat_json("{\"a\" 1}").is_err());
        assert!(parse_flat_json("{\"a\": x}").is_err());
        assert!(parse_flat_json("{a: 1}").is_err());
    }

    #[test]
    fn verdicts_follow_the_thresholds() {
        let config = GateConfig::default();
        let baseline = set(&[
            ("steady", 10_000.0),
            ("warned", 10_000.0),
            ("failed", 10_000.0),
            ("faster", 10_000.0),
            ("removed", 10_000.0),
        ]);
        let current = set(&[
            ("steady", 10_500.0), // +5% -> pass
            ("warned", 12_000.0), // +20% -> warn
            ("failed", 14_000.0), // +40% -> fail
            ("faster", 6_000.0),  // -40% -> pass
            ("brand_new", 1_000.0),
        ]);
        let report = compare(&baseline, &current, &config);
        let verdict = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == name)
                .unwrap()
                .verdict
        };
        assert_eq!(verdict("steady"), Verdict::Pass);
        assert_eq!(verdict("warned"), Verdict::Warn);
        assert_eq!(verdict("failed"), Verdict::Fail);
        assert_eq!(verdict("faster"), Verdict::Pass);
        assert_eq!(verdict("removed"), Verdict::Gone);
        assert_eq!(verdict("brand_new"), Verdict::New);
        assert!(report.failed());
        assert_eq!(report.warnings(), 1);
    }

    #[test]
    fn missing_baseline_key_alone_fails_the_gate() {
        // A fresh run that silently drops a bench must not pass: the gate
        // would otherwise stop guarding that path without anyone noticing.
        let config = GateConfig::default();
        let baseline = set(&[("kept", 10_000.0), ("vanished", 10_000.0)]);
        let current = set(&[("kept", 10_000.0)]);
        let report = compare(&baseline, &current, &config);
        assert!(report.failed(), "a gone entry must fail the gate");
        assert_eq!(report.warnings(), 0);
        // A new bench on its own stays informational.
        let report = compare(
            &set(&[("kept", 10_000.0)]),
            &set(&[("kept", 10_000.0), ("added", 1.0)]),
            &config,
        );
        assert!(!report.failed());
    }

    #[test]
    fn p99_entries_get_twice_the_band() {
        let config = GateConfig::default();
        let baseline = set(&[
            ("service_replan_p99_clip", 10_000.0),
            ("service_replan_p50_clip", 10_000.0),
        ]);
        // +40%: fails a mean-gated entry, only warns a tail-gated one
        // (2x band: warn >30%, fail >60%).
        let current = set(&[
            ("service_replan_p99_clip", 14_000.0),
            ("service_replan_p50_clip", 14_000.0),
        ]);
        let report = compare(&baseline, &current, &config);
        let verdict = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == name)
                .unwrap()
                .verdict
        };
        assert_eq!(verdict("service_replan_p99_clip"), Verdict::Warn);
        assert_eq!(verdict("service_replan_p50_clip"), Verdict::Fail);
        // +25% passes a tail entry (within the widened warn band) but warns
        // a mean entry; +70% fails even the tail.
        let report = compare(
            &set(&[("x_p99", 10_000.0), ("x", 10_000.0)]),
            &set(&[("x_p99", 12_500.0), ("x", 12_500.0)]),
            &config,
        );
        assert_eq!(report.entries[0].verdict, Verdict::Pass);
        assert_eq!(report.entries[1].verdict, Verdict::Warn);
        let report = compare(
            &set(&[("x_p99", 10_000.0)]),
            &set(&[("x_p99", 17_500.0)]),
            &config,
        );
        assert_eq!(report.entries[0].verdict, Verdict::Fail);
        assert!(GateConfig::is_tail_entry("service_replan_p99_hyper-fleet"));
        assert!(!GateConfig::is_tail_entry("service_replan_p50_hyper-fleet"));
    }

    #[test]
    fn noise_floor_shields_tiny_benches() {
        let config = GateConfig::default();
        let baseline = set(&[("tiny", 100.0)]);
        let current = set(&[("tiny", 400.0)]); // 4x slower but sub-floor
        let report = compare(&baseline, &current, &config);
        assert_eq!(report.entries[0].verdict, Verdict::Pass);
        assert!(!report.failed());
        // Above the floor the same ratio fails.
        let report = compare(
            &set(&[("big", 100_000.0)]),
            &set(&[("big", 400_000.0)]),
            &config,
        );
        assert!(report.failed());
    }

    #[test]
    fn tail_band_noise_floor_and_gone_compose() {
        let config = GateConfig::default();

        // A vanished tail entry is still Gone and still fails: the widened
        // band only softens *slowdowns*, it never excuses a bench that
        // silently stopped running.
        let report = compare(
            &set(&[("service_replan_p99_fleet", 2_000_000.0)]),
            &set(&[]),
            &config,
        );
        assert_eq!(report.entries[0].verdict, Verdict::Gone);
        assert!(report.failed());

        // The noise floor shields tail entries exactly like mean entries:
        // both sides sub-floor passes regardless of the ratio...
        let report = compare(
            &set(&[("tiny_p99", 100.0)]),
            &set(&[("tiny_p99", 499.0)]),
            &config,
        );
        assert_eq!(report.entries[0].verdict, Verdict::Pass);
        // ...but the shield needs BOTH sides below 500ns — a bench growing
        // *across* the floor is judged on its delta, with the tail band
        // applied on top (+60% is the tail fail boundary, so +500% fails).
        let report = compare(
            &set(&[("grew_p99", 100.0)]),
            &set(&[("grew_p99", 600.0)]),
            &config,
        );
        assert_eq!(report.entries[0].verdict, Verdict::Fail);
        assert!(report.failed());

        // Just inside the widened boundaries: +59.99% is still a Warn for a
        // tail entry (its fail band ends at +60%), while the same workload
        // delta on a mean entry is far past its +30% band and fails — and a
        // mean entry at +29.99% is the Warn the tail band would have passed.
        let report = compare(
            &set(&[
                ("edge_p99", 10_000.0),
                ("edge", 10_000.0),
                ("mean_warn", 10_000.0),
            ]),
            &set(&[
                ("edge_p99", 15_999.0),
                ("edge", 15_999.0),
                ("mean_warn", 12_999.0),
            ]),
            &config,
        );
        assert_eq!(report.entries[0].verdict, Verdict::Warn);
        assert_eq!(report.entries[1].verdict, Verdict::Fail);
        assert_eq!(report.entries[2].verdict, Verdict::Warn);

        // `_p99` is recognised as a name segment anywhere in the key, and
        // near-misses stay on the mean band.
        assert!(GateConfig::is_tail_entry("fig8_p99_iter_spindle"));
        assert!(!GateConfig::is_tail_entry("fig8_iter_spindle_48t256gpu"));
        assert!(!GateConfig::is_tail_entry("service_replan_p90_fleet"));

        // Speedups pass even when enormous — the gate is one-sided.
        let report = compare(
            &set(&[("fast_p99", 1_000_000.0), ("fast", 1_000_000.0)]),
            &set(&[("fast_p99", 1_000.0), ("fast", 1_000.0)]),
            &config,
        );
        assert!(report.entries.iter().all(|e| e.verdict == Verdict::Pass));
    }

    #[test]
    fn markdown_table_lists_every_entry() {
        let config = GateConfig::default();
        let report = compare(
            &set(&[("a", 1000.0), ("b", 2000.0)]),
            &set(&[("a", 1100.0), ("c", 3000.0)]),
            &config,
        );
        let md = report.to_markdown(&config);
        assert!(md.contains("| a |"));
        assert!(md.contains("| b |"));
        assert!(md.contains("| c |"));
        assert!(md.contains("gone"));
        assert!(md.contains("new"));
        assert!(md.contains("+10.0%"));
        assert!(md.contains("thresholds: fail >30%"));
        // Header + separator + 3 entries + blank + thresholds.
        assert_eq!(md.lines().count(), 7);
    }
}
