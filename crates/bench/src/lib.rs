//! # spindle-bench
//!
//! Benchmark harness reproducing every table and figure of the Spindle paper's
//! evaluation (§5 and Appendices D–H). Each experiment is a standalone binary
//! in `src/bin/` that prints the same rows / series the paper reports; the
//! [`microbench`]-based benches in `benches/` time the planner components
//! themselves (criterion is unavailable offline, so timing is hand-rolled).
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `exp_fig01_decoupled_utilization` | Fig. 1 (lower): utilization fluctuation of decoupled execution |
//! | `exp_fig04_scaling_curves` | Fig. 4: MetaOp execution time & resource scalability |
//! | `exp_fig08_end_to_end` | Fig. 8: end-to-end iteration time, 5 systems × 6 workloads × cluster sizes |
//! | `exp_fig09_case_study` | Fig. 9: cluster / device / MetaOp utilization case study |
//! | `exp_fig10_time_breakdown` | Fig. 10: time breakdown + device-placement ablation |
//! | `exp_fig11_optimality` | Fig. 11: deviation from the theoretical optimum |
//! | `exp_fig12_planner_cost` | Fig. 12: execution-planner wall-clock cost |
//! | `exp_fig13_dynamic` | Fig. 13 (App. D): dynamic multi-task workloads |
//! | `exp_fig14_single_task` | Fig. 14 (App. F): single-task multi-modal comparison |
//! | `exp_fig15_memory` | Fig. 15 (App. G): per-device memory consumption |
//! | `exp_fig16_spindle_seq` | Fig. 16 (App. H): Spindle-Seq implementation overhead |
//! | `exp_tab01_setup` | Tab. 1a/1b: evaluated systems and workloads |
//! | `exp_tab02_large_scale` | Tab. 2 (App. E): 30B/70B simulations on 256 GPUs |

#![warn(missing_docs)]

pub mod fuzz;
pub mod gate;
pub mod microbench;

use std::fmt::Write as _;

use spindle_baselines::SystemKind;
use spindle_cluster::ClusterSpec;
use std::sync::Arc;

use spindle_core::{ExecutionPlan, PlacementStrategy, PlannerConfig, SpindleSession};
use spindle_graph::ComputationGraph;
use spindle_runtime::{IterationReport, RuntimeEngine};
use spindle_workloads::WorkloadPreset;

/// One measured (system, workload, cluster) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The system that produced the plan.
    pub system: SystemKind,
    /// End-to-end iteration time in milliseconds.
    pub iteration_ms: f64,
    /// Full iteration report (breakdown, utilization, memory).
    pub report: IterationReport,
    /// The execution plan (for plan-level statistics), shared with the engine
    /// that executed it — no copy is made.
    pub plan: Arc<ExecutionPlan>,
}

impl Measurement {
    /// Speedup of this measurement relative to a reference iteration time.
    #[must_use]
    pub fn speedup_over(&self, reference_ms: f64) -> f64 {
        reference_ms / self.iteration_ms
    }
}

/// Plans and simulates one iteration of `graph` within `session` with
/// `system`, going through the [`PlanningSystem`](spindle_core::PlanningSystem)
/// trait. Reusing one session
/// across systems and phases shares the curve cache, exactly as a long-lived
/// deployment would.
///
/// # Panics
///
/// Panics if planning or simulation fails — experiment binaries treat that as
/// a fatal configuration error.
#[must_use]
pub fn measure(
    system: SystemKind,
    graph: &ComputationGraph,
    session: &mut SpindleSession,
) -> Measurement {
    let plan = Arc::new(
        system
            .planning_system()
            .plan(graph, session)
            .unwrap_or_else(|e| panic!("{system} failed to plan: {e}")),
    );
    let report = RuntimeEngine::new(Arc::clone(&plan), session.cluster())
        .with_graph(graph)
        .run_iteration()
        .unwrap_or_else(|e| panic!("{system} failed to run: {e}"));
    Measurement {
        system,
        iteration_ms: report.iteration_time_ms(),
        report,
        plan,
    }
}

/// Convenience wrapper: measures `system` on a throwaway cold session for
/// `cluster`.
#[must_use]
pub fn measure_on_cluster(
    system: SystemKind,
    graph: &ComputationGraph,
    cluster: &ClusterSpec,
) -> Measurement {
    let mut session = SpindleSession::new(cluster.clone());
    measure(system, graph, &mut session)
}

/// Measures Spindle with an explicit placement strategy (used by the Fig. 10
/// ablation, where `Sequential` is the "w/o DP" variant).
#[must_use]
pub fn measure_spindle_with_placement(
    graph: &ComputationGraph,
    cluster: &ClusterSpec,
    placement: PlacementStrategy,
) -> Measurement {
    let mut session = SpindleSession::with_config(
        cluster.clone(),
        PlannerConfig {
            placement,
            ..PlannerConfig::default()
        },
    );
    measure(SystemKind::Spindle, graph, &mut session)
}

/// The standard cluster used throughout the evaluation: `num_gpus` A800s in
/// nodes of eight (1 node = 8 GPUs, 2 nodes = 16 GPUs, ...).
///
/// # Panics
///
/// Panics if `num_gpus` is zero.
#[must_use]
pub fn paper_cluster(num_gpus: usize) -> ClusterSpec {
    assert!(num_gpus > 0, "cluster must have at least one GPU");
    if num_gpus < 8 {
        ClusterSpec::homogeneous(1, num_gpus)
    } else {
        assert!(
            num_gpus % 8 == 0,
            "multi-node clusters come in units of 8 GPUs"
        );
        ClusterSpec::homogeneous(num_gpus / 8, 8)
    }
}

/// Human-readable cluster label used in the paper's figures ("1Node(8GPUs)").
#[must_use]
pub fn cluster_label(num_gpus: usize) -> String {
    let nodes = (num_gpus / 8).max(1);
    format!(
        "{nodes}Node{}({num_gpus}GPUs)",
        if nodes > 1 { "s" } else { "" }
    )
}

/// Runs the full Fig. 8 comparison for one workload preset on one cluster
/// size: every system of Tab. 1a, with speedups relative to DeepSpeed.
#[must_use]
pub fn compare_systems(preset: WorkloadPreset, num_gpus: usize) -> Vec<(SystemKind, f64, f64)> {
    let graph = preset.build().expect("preset builds");
    let mut session = SpindleSession::new(paper_cluster(num_gpus));
    let measurements: Vec<Measurement> = SystemKind::ALL
        .iter()
        .map(|&kind| measure(kind, &graph, &mut session))
        .collect();
    let reference = measurements
        .iter()
        .find(|m| m.system == SystemKind::DeepSpeed)
        .map_or(1.0, |m| m.iteration_ms);
    measurements
        .into_iter()
        .map(|m| (m.system, m.iteration_ms, reference / m.iteration_ms))
        .collect()
}

/// Renders a simple fixed-width table. `header` and every row must have the
/// same number of columns.
#[must_use]
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
        }
        out.push_str("|\n");
    };
    write_row(
        &header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    let mut sep = String::new();
    for w in &widths {
        let _ = write!(sep, "|{}", "-".repeat(w + 2));
    }
    sep.push_str("|\n");
    out.push_str(&sep);
    for row in rows {
        write_row(row, &mut out);
    }
    out
}

/// Formats a milliseconds value with one decimal.
#[must_use]
pub fn ms(value: f64) -> String {
    format!("{value:.1}")
}

/// Formats a speedup as the paper does ("1.22x").
#[must_use]
pub fn speedup(value: f64) -> String {
    format!("{value:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_workloads::multitask_clip_with_batch;

    #[test]
    fn paper_cluster_shapes() {
        assert_eq!(paper_cluster(8).num_nodes(), 1);
        assert_eq!(paper_cluster(32).num_nodes(), 4);
        assert_eq!(paper_cluster(4).num_devices(), 4);
        assert_eq!(cluster_label(8), "1Node(8GPUs)");
        assert_eq!(cluster_label(32), "4Nodes(32GPUs)");
    }

    #[test]
    fn measure_and_compare_produce_consistent_speedups() {
        let graph = multitask_clip_with_batch(2, 0.5).unwrap();
        let mut session = SpindleSession::new(paper_cluster(8));
        let spindle = measure(SystemKind::Spindle, &graph, &mut session);
        let deepspeed = measure(SystemKind::DeepSpeed, &graph, &mut session);
        assert!(spindle.iteration_ms > 0.0);
        assert!(deepspeed.iteration_ms > 0.0);
        let s = spindle.speedup_over(deepspeed.iteration_ms);
        assert!(s > 0.5 && s < 10.0);
    }

    #[test]
    fn placement_ablation_measurement_works() {
        let graph = multitask_clip_with_batch(2, 0.5).unwrap();
        let cluster = paper_cluster(8);
        let locality =
            measure_spindle_with_placement(&graph, &cluster, PlacementStrategy::Locality);
        let sequential =
            measure_spindle_with_placement(&graph, &cluster, PlacementStrategy::Sequential);
        assert!(locality.iteration_ms > 0.0);
        assert!(sequential.iteration_ms > 0.0);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["System", "Time"],
            &[
                vec!["Spindle".to_string(), ms(12.345)],
                vec!["DeepSpeed".to_string(), ms(20.0)],
            ],
        );
        assert!(table.contains("| Spindle"));
        assert!(table.contains("12.3"));
        assert!(table.lines().count() >= 4);
        assert_eq!(speedup(1.2245), "1.22x");
    }
}
