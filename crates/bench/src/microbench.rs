//! A minimal timing harness for the `benches/` targets.
//!
//! Criterion is not available in the offline build environment, so the bench
//! targets are compiled with `harness = false` and drive this hand-rolled
//! harness instead: warm-up, a fixed number of timed iterations, and
//! min/mean/max reporting. It is deliberately tiny — enough to watch for
//! order-of-magnitude regressions and to compare variants (e.g. warm vs. cold
//! sessions), not a statistics suite.

use std::time::{Duration, Instant};

/// Result of timing one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Timing {
    /// Mean iteration time in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }

    /// Mean iteration time in nanoseconds — the unit recorded in
    /// `BENCH_planning.json` so perf trajectories are comparable across PRs.
    #[must_use]
    pub fn ns_per_iter(&self) -> f64 {
        self.mean.as_secs_f64() * 1e9
    }
}

/// Whether quick mode is active (`SPINDLE_BENCH_QUICK=1`): benches shrink
/// their warm-up and iteration counts so CI smoke jobs finish fast while
/// still exercising every code path and emitting the JSON report.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("SPINDLE_BENCH_QUICK").is_ok_and(|v| v == "1" || v == "true")
}

/// Serialises `(bench name → ns/iter)` pairs as a small JSON object and
/// writes them to `path`. No external JSON crate is available offline, so the
/// format is emitted by hand; names must not contain quotes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json_report(
    path: &std::path::Path,
    entries: &[(String, Timing)],
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    for (i, (name, timing)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!(
            "  \"{name}\": {:.1}{comma}\n",
            timing.ns_per_iter()
        ));
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Times `f` over `iters` iterations after `warmup` untimed runs, printing a
/// one-line summary.
pub fn bench<F: FnMut()>(label: &str, warmup: u32, iters: u32, mut f: F) -> Timing {
    for _ in 0..warmup {
        f();
    }
    let iters = iters.max(1);
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        min = min.min(elapsed);
        max = max.max(elapsed);
        total += elapsed;
    }
    let timing = Timing {
        iters,
        min,
        mean: total / iters,
        max,
    };
    println!(
        "{label:48} {:>9.3} ms/iter (min {:>9.3}, max {:>9.3}, n={})",
        timing.mean.as_secs_f64() * 1e3,
        timing.min.as_secs_f64() * 1e3,
        timing.max.as_secs_f64() * 1e3,
        timing.iters,
    );
    timing
}

/// Prints a section header for a group of related cases.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let mut count = 0u64;
        let t = bench("noop", 1, 5, || count += 1);
        assert_eq!(t.iters, 5);
        assert_eq!(count, 6); // warmup + timed
        assert!(t.min <= t.mean && t.mean <= t.max);
        assert!(t.mean_ms() >= 0.0);
        assert!((t.ns_per_iter() - t.mean_ms() * 1e6).abs() < 1e-6);
    }

    #[test]
    fn json_report_is_well_formed() {
        let t = bench("noop", 0, 3, || {});
        let dir = std::env::temp_dir().join("spindle-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_json_report(&path, &[("a".to_string(), t), ("b".to_string(), t)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"a\":"));
        assert!(text.contains("\"b\":"));
        // Exactly one separating comma for two entries.
        assert_eq!(text.matches(',').count(), 1);
    }
}
