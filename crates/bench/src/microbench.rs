//! A minimal timing harness for the `benches/` targets.
//!
//! Criterion is not available in the offline build environment, so the bench
//! targets are compiled with `harness = false` and drive this hand-rolled
//! harness instead: warm-up, a fixed number of timed iterations, and
//! min/mean/max reporting. It is deliberately tiny — enough to watch for
//! order-of-magnitude regressions and to compare variants (e.g. warm vs. cold
//! sessions), not a statistics suite.

use std::time::{Duration, Instant};

/// Result of timing one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl Timing {
    /// Mean iteration time in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }
}

/// Times `f` over `iters` iterations after `warmup` untimed runs, printing a
/// one-line summary.
pub fn bench<F: FnMut()>(label: &str, warmup: u32, iters: u32, mut f: F) -> Timing {
    for _ in 0..warmup {
        f();
    }
    let iters = iters.max(1);
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        min = min.min(elapsed);
        max = max.max(elapsed);
        total += elapsed;
    }
    let timing = Timing {
        iters,
        min,
        mean: total / iters,
        max,
    };
    println!(
        "{label:48} {:>9.3} ms/iter (min {:>9.3}, max {:>9.3}, n={})",
        timing.mean.as_secs_f64() * 1e3,
        timing.min.as_secs_f64() * 1e3,
        timing.max.as_secs_f64() * 1e3,
        timing.iters,
    );
    timing
}

/// Prints a section header for a group of related cases.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_statistics() {
        let mut count = 0u64;
        let t = bench("noop", 1, 5, || count += 1);
        assert_eq!(t.iters, 5);
        assert_eq!(count, 6); // warmup + timed
        assert!(t.min <= t.mean && t.mean <= t.max);
        assert!(t.mean_ms() >= 0.0);
    }
}
