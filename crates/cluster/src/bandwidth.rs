//! Interconnect description: link classes, bandwidths and latencies.

use std::fmt;

/// Classification of the link between two devices (or a device and itself).
///
/// Spindle's device-placement step (§3.5 of the paper) reasons about exactly
/// these three classes: copies within a device, transfers within a device
/// island (NVLink), and transfers across islands (InfiniBand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkClass {
    /// Source and destination are the same device; the transfer is a local copy.
    IntraDevice,
    /// Devices live on the same node / device island and communicate via the
    /// high-bandwidth intra-node interconnect (NVLink).
    IntraIsland,
    /// Devices live on different nodes and communicate via the inter-node
    /// network (InfiniBand).
    InterIsland,
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::IntraDevice => "intra-device",
            LinkClass::IntraIsland => "intra-island",
            LinkClass::InterIsland => "inter-island",
        };
        f.write_str(s)
    }
}

/// Bandwidth and latency parameters of the cluster interconnect.
///
/// All bandwidths are *effective per-link, unidirectional* bandwidths in
/// bytes/second as observed by large transfers; latencies are per-message
/// fixed costs in seconds (the α term of the classic α–β model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// Effective bandwidth of a local (intra-device) copy, bytes/s.
    pub intra_device_bandwidth: f64,
    /// Effective NVLink bandwidth between two GPUs on the same node, bytes/s.
    pub intra_island_bandwidth: f64,
    /// Effective network bandwidth between two GPUs on different nodes, bytes/s.
    pub inter_island_bandwidth: f64,
    /// Latency of an intra-device copy, seconds.
    pub intra_device_latency_s: f64,
    /// Latency of an intra-island (NVLink) message, seconds.
    pub intra_island_latency_s: f64,
    /// Latency of an inter-island (network) message, seconds.
    pub inter_island_latency_s: f64,
}

impl InterconnectSpec {
    /// NVLink (NVSwitch, A800 = 400 GB/s aggregate / ~200 GB/s effective
    /// unidirectional pairwise) + 400 Gbps InfiniBand, as in the paper's
    /// testbed.
    #[must_use]
    pub fn nvlink_plus_infiniband_400g() -> Self {
        Self {
            // HBM-to-HBM copy on device: bounded by memory bandwidth.
            intra_device_bandwidth: 1.6e12,
            // A800 NVLink: 400 GB/s bidirectional -> ~200 GB/s effective.
            intra_island_bandwidth: 200.0e9,
            // 400 Gbps IB = 50 GB/s line rate, ~42 GB/s effective.
            inter_island_bandwidth: 42.0e9,
            intra_device_latency_s: 2.0e-6,
            intra_island_latency_s: 5.0e-6,
            inter_island_latency_s: 12.0e-6,
        }
    }

    /// Effective bandwidth (bytes/s) for the given link class.
    #[must_use]
    pub fn bandwidth(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::IntraDevice => self.intra_device_bandwidth,
            LinkClass::IntraIsland => self.intra_island_bandwidth,
            LinkClass::InterIsland => self.inter_island_bandwidth,
        }
    }

    /// Per-message latency (seconds) for the given link class.
    #[must_use]
    pub fn latency(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::IntraDevice => self.intra_device_latency_s,
            LinkClass::IntraIsland => self.intra_island_latency_s,
            LinkClass::InterIsland => self.inter_island_latency_s,
        }
    }

    /// Time in seconds to move `bytes` over a single link of class `class`
    /// using the α–β model: `latency + bytes / bandwidth`.
    #[must_use]
    pub fn transfer_time(&self, class: LinkClass, bytes: u64) -> f64 {
        self.latency(class) + bytes as f64 / self.bandwidth(class)
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        Self::nvlink_plus_infiniband_400g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_class_ordering_reflects_cost() {
        // Cheaper link classes order first; placement relies on this.
        assert!(LinkClass::IntraDevice < LinkClass::IntraIsland);
        assert!(LinkClass::IntraIsland < LinkClass::InterIsland);
    }

    #[test]
    fn default_bandwidth_hierarchy() {
        let ic = InterconnectSpec::default();
        assert!(ic.bandwidth(LinkClass::IntraDevice) > ic.bandwidth(LinkClass::IntraIsland));
        assert!(ic.bandwidth(LinkClass::IntraIsland) > ic.bandwidth(LinkClass::InterIsland));
        assert!(ic.latency(LinkClass::IntraDevice) < ic.latency(LinkClass::InterIsland));
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let ic = InterconnectSpec::default();
        for class in [
            LinkClass::IntraDevice,
            LinkClass::IntraIsland,
            LinkClass::InterIsland,
        ] {
            let small = ic.transfer_time(class, 1 << 20);
            let large = ic.transfer_time(class, 1 << 30);
            assert!(large > small, "{class}: {large} <= {small}");
        }
    }

    #[test]
    fn transfer_time_includes_latency_floor() {
        let ic = InterconnectSpec::default();
        assert!(ic.transfer_time(LinkClass::InterIsland, 0) >= ic.inter_island_latency_s);
    }

    #[test]
    fn link_class_display() {
        assert_eq!(LinkClass::IntraIsland.to_string(), "intra-island");
        assert_eq!(LinkClass::InterIsland.to_string(), "inter-island");
        assert_eq!(LinkClass::IntraDevice.to_string(), "intra-device");
    }
}
