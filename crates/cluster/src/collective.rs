//! Analytic cost model for point-to-point and collective communication.
//!
//! The model follows the classic α–β formulation used throughout the
//! distributed-training literature (and by the paper's scalability estimator):
//! a transfer of `b` bytes over a link with latency α and bandwidth β⁻¹ costs
//! `α + b·β`. Collectives use ring-algorithm volume factors and are bounded by
//! the *slowest* link class present in the participating group, which is what
//! makes crossing a device island expensive — the effect Spindle's device
//! placement (§3.5) is designed to avoid.

use crate::{ClusterSpec, DeviceGroup, DeviceId, LinkClass};

/// Communication cost model over a specific cluster.
///
/// The model is cheap to construct and borrows nothing mutable; create one per
/// cluster and share it freely.
#[derive(Debug, Clone)]
pub struct CommModel {
    cluster: ClusterSpec,
}

impl CommModel {
    /// Creates a cost model for `cluster`.
    #[must_use]
    pub fn new(cluster: &ClusterSpec) -> Self {
        Self {
            cluster: cluster.clone(),
        }
    }

    /// The cluster this model describes.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Link class of the slowest link inside `group` (the bottleneck for any
    /// collective spanning the whole group). Single-device groups are
    /// [`LinkClass::IntraDevice`].
    #[must_use]
    pub fn bottleneck_class(&self, group: &DeviceGroup) -> LinkClass {
        if group.len() <= 1 {
            return LinkClass::IntraDevice;
        }
        match self.cluster.is_intra_island(group) {
            Ok(true) => LinkClass::IntraIsland,
            _ => LinkClass::InterIsland,
        }
    }

    /// Time in seconds for a point-to-point transfer of `bytes` from `src` to
    /// `dst`. Unknown devices are treated conservatively as inter-island.
    #[must_use]
    pub fn p2p_time(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        let class = self
            .cluster
            .link_class(src, dst)
            .unwrap_or(LinkClass::InterIsland);
        self.cluster.interconnect().transfer_time(class, bytes)
    }

    /// Time in seconds to transfer `bytes` from a source group to a destination
    /// group (inter-wave data flow). The volume is assumed to be evenly sharded
    /// across the source devices; each shard travels over the worst link
    /// between the two groups, and shards move in parallel.
    #[must_use]
    pub fn group_transfer_time(&self, src: &DeviceGroup, dst: &DeviceGroup, bytes: u64) -> f64 {
        if src.is_empty() || dst.is_empty() || bytes == 0 {
            return 0.0;
        }
        let mut worst = LinkClass::IntraDevice;
        for s in src.iter() {
            // Pair each source device with the destination device it would
            // stream to (round-robin); track the worst link class involved.
            let idx = (s.index()) % dst.len();
            let d = dst.devices()[idx];
            let class = self
                .cluster
                .link_class(s, d)
                .unwrap_or(LinkClass::InterIsland);
            worst = worst.max(class);
        }
        let shard = (bytes as f64 / src.len() as f64).ceil() as u64;
        self.cluster.interconnect().transfer_time(worst, shard)
    }

    /// All-reduce time in seconds for `bytes` of data across `group`.
    ///
    /// Groups contained in one device island use a plain ring
    /// (volume factor `2·(n−1)/n` at NVLink bandwidth). Groups spanning
    /// several islands use the hierarchical algorithm NCCL applies on
    /// multi-node clusters: an intra-island reduce-scatter + all-gather of the
    /// full volume, plus an inter-island ring all-reduce of the per-device
    /// shard — far cheaper than pushing the whole volume through the network.
    /// Single-device groups cost nothing.
    #[must_use]
    pub fn all_reduce_time(&self, group: &DeviceGroup, bytes: u64) -> f64 {
        if group.len() <= 1 || bytes == 0 {
            return 0.0;
        }
        if self.bottleneck_class(group) != LinkClass::InterIsland {
            return self.ring_collective_time(group, bytes, 2.0);
        }
        let ic = self.cluster.interconnect();
        // Devices per island actually used by this group.
        let mut per_island: std::collections::BTreeMap<crate::NodeId, usize> =
            std::collections::BTreeMap::new();
        for d in group.iter() {
            if let Ok(node) = self.cluster.node_of(d) {
                *per_island.entry(node).or_insert(0) += 1;
            }
        }
        let islands = per_island.len().max(1);
        let local = per_island.values().copied().max().unwrap_or(1).max(1);
        let intra = if local > 1 {
            let steps = (local - 1) as f64;
            2.0 * steps * ic.latency(LinkClass::IntraIsland)
                + 2.0 * steps / local as f64 * bytes as f64 / ic.bandwidth(LinkClass::IntraIsland)
        } else {
            0.0
        };
        let shard = bytes as f64 / local as f64;
        let steps = (islands - 1) as f64;
        let inter = 2.0 * steps * ic.latency(LinkClass::InterIsland)
            + 2.0 * steps / islands as f64 * shard / ic.bandwidth(LinkClass::InterIsland);
        intra + inter
    }

    /// Ring all-gather time in seconds for `bytes` of *output* data across
    /// `group` (volume factor `(n−1)/n`).
    #[must_use]
    pub fn all_gather_time(&self, group: &DeviceGroup, bytes: u64) -> f64 {
        self.ring_collective_time(group, bytes, 1.0)
    }

    /// Ring reduce-scatter time in seconds (same volume factor as all-gather).
    #[must_use]
    pub fn reduce_scatter_time(&self, group: &DeviceGroup, bytes: u64) -> f64 {
        self.ring_collective_time(group, bytes, 1.0)
    }

    /// Broadcast of `bytes` from one device of `group` to the rest, modelled as
    /// a pipelined chain bounded by the slowest link.
    #[must_use]
    pub fn broadcast_time(&self, group: &DeviceGroup, bytes: u64) -> f64 {
        if group.len() <= 1 {
            return 0.0;
        }
        let class = self.bottleneck_class(group);
        self.cluster.interconnect().transfer_time(class, bytes)
    }

    fn ring_collective_time(&self, group: &DeviceGroup, bytes: u64, volume_factor: f64) -> f64 {
        let n = group.len();
        if n <= 1 || bytes == 0 {
            return 0.0;
        }
        let class = self.bottleneck_class(group);
        let ic = self.cluster.interconnect();
        let steps = (n - 1) as f64;
        let volume = volume_factor * steps / n as f64 * bytes as f64;
        // Each of the (n-1) steps pays the per-message latency once.
        steps * ic.latency(class) * if volume_factor > 1.0 { 2.0 } else { 1.0 }
            + volume / ic.bandwidth(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    fn model(nodes: usize, gpus: usize) -> CommModel {
        CommModel::new(&ClusterSpec::homogeneous(nodes, gpus))
    }

    #[test]
    fn p2p_respects_link_hierarchy() {
        let m = model(2, 4);
        let b = 1u64 << 28;
        let local = m.p2p_time(DeviceId(0), DeviceId(0), b);
        let intra = m.p2p_time(DeviceId(0), DeviceId(1), b);
        let inter = m.p2p_time(DeviceId(0), DeviceId(4), b);
        assert!(local < intra);
        assert!(intra < inter);
    }

    #[test]
    fn all_reduce_zero_for_single_device() {
        let m = model(1, 8);
        let g = DeviceGroup::contiguous(DeviceId(0), 1);
        assert_eq!(m.all_reduce_time(&g, 1 << 30), 0.0);
        assert_eq!(m.broadcast_time(&g, 1 << 30), 0.0);
    }

    #[test]
    fn all_reduce_cross_island_is_slower() {
        let m = model(2, 8);
        let intra = DeviceGroup::contiguous(DeviceId(0), 8);
        let cross = DeviceGroup::contiguous(DeviceId(4), 8);
        let b = 1u64 << 30;
        assert!(m.all_reduce_time(&intra, b) < m.all_reduce_time(&cross, b));
        assert_eq!(m.bottleneck_class(&intra), LinkClass::IntraIsland);
        assert_eq!(m.bottleneck_class(&cross), LinkClass::InterIsland);
    }

    #[test]
    fn all_reduce_costs_about_twice_all_gather() {
        let m = model(1, 8);
        let g = DeviceGroup::contiguous(DeviceId(0), 8);
        let b = 1u64 << 30;
        let ar = m.all_reduce_time(&g, b);
        let ag = m.all_gather_time(&g, b);
        let ratio = ar / ag;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn cross_island_all_reduce_is_hierarchical() {
        // A 16-GPU group spanning two islands must cost far less than pushing
        // the whole volume through the inter-island network, but more than the
        // same volume within one island.
        let m = model(2, 8);
        let b = 1u64 << 30;
        let intra = DeviceGroup::contiguous(DeviceId(0), 8);
        let cross = DeviceGroup::contiguous(DeviceId(0), 16);
        let t_intra = m.all_reduce_time(&intra, b);
        let t_cross = m.all_reduce_time(&cross, b);
        // Flat ring over the IB bottleneck would cost ~2 * bytes / 42 GB/s.
        let flat_ring_floor = 2.0 * (15.0 / 16.0) * b as f64 / 42.0e9;
        assert!(t_cross > t_intra);
        assert!(t_cross < flat_ring_floor, "{t_cross} vs {flat_ring_floor}");
    }

    #[test]
    fn collective_volume_saturates_with_group_size() {
        // (n-1)/n grows with n, so per-byte cost grows but stays bounded by 1.
        let m = model(4, 8);
        let b = 1u64 << 30;
        let g8 = DeviceGroup::contiguous(DeviceId(0), 8);
        let g16 = DeviceGroup::contiguous(DeviceId(0), 16);
        let g32 = DeviceGroup::contiguous(DeviceId(0), 32);
        let t8 = m.all_reduce_time(&g8, b);
        let t16 = m.all_reduce_time(&g16, b);
        let t32 = m.all_reduce_time(&g32, b);
        // 16 and 32 GPU groups cross islands so they are slower than 8.
        assert!(t16 > t8);
        // But the growth from 16 to 32 is modest (volume factor 15/16 -> 31/32).
        assert!(t32 / t16 < 1.5);
    }

    #[test]
    fn group_transfer_prefers_intra_island() {
        let m = model(2, 8);
        let src = DeviceGroup::contiguous(DeviceId(0), 4);
        let dst_near = DeviceGroup::contiguous(DeviceId(4), 4);
        let dst_far = DeviceGroup::contiguous(DeviceId(8), 4);
        let b = 64u64 << 20;
        assert!(
            m.group_transfer_time(&src, &dst_near, b) < m.group_transfer_time(&src, &dst_far, b)
        );
        assert_eq!(m.group_transfer_time(&src, &dst_far, 0), 0.0);
    }

    #[test]
    fn group_transfer_sharding_speeds_up_with_more_sources() {
        let m = model(2, 8);
        let src1 = DeviceGroup::contiguous(DeviceId(0), 1);
        let src4 = DeviceGroup::contiguous(DeviceId(0), 4);
        let dst = DeviceGroup::contiguous(DeviceId(8), 4);
        let b = 256u64 << 20;
        assert!(m.group_transfer_time(&src4, &dst, b) < m.group_transfer_time(&src1, &dst, b));
    }

    #[test]
    fn cluster_accessor_roundtrips() {
        let c = ClusterSpec::homogeneous(2, 2);
        let m = CommModel::new(&c);
        assert_eq!(m.cluster(), &c);
    }
}
