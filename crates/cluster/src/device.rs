//! Device and node identities plus the per-GPU hardware description.

use std::fmt;

/// Identifier of a single accelerator device (GPU) in the cluster.
///
/// Devices are numbered globally and densely: device `k` lives on node
/// `k / gpus_per_node` for homogeneous clusters built with
/// [`ClusterSpec::homogeneous`](crate::ClusterSpec::homogeneous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Returns the raw index of this device.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl From<u32> for DeviceId {
    fn from(value: u32) -> Self {
        DeviceId(value)
    }
}

impl From<DeviceId> for u32 {
    fn from(value: DeviceId) -> Self {
        value.0
    }
}

/// Identifier of a node (server) in the cluster. A node is also a *device
/// island*: its GPUs are connected by a high-bandwidth interconnect (NVLink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// Hardware description of a single GPU.
///
/// Defaults model an NVIDIA A800 80 GB SXM GPU, the accelerator used in the
/// paper's evaluation cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Peak dense compute throughput in TFLOP/s (BF16 tensor cores).
    pub peak_tflops: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Device memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Fixed per-kernel launch overhead in seconds. Small, but it is what
    /// prevents tiny operators from scaling to many devices.
    pub kernel_launch_overhead_s: f64,
}

impl GpuSpec {
    /// An NVIDIA A800 80 GB SXM-like accelerator (the paper's testbed GPU).
    ///
    /// The A800 is the export variant of the A100; its dense BF16 throughput is
    /// ~312 TFLOP/s and HBM2e bandwidth ~2 TB/s.
    #[must_use]
    pub fn a800_80gb() -> Self {
        Self {
            peak_tflops: 312.0,
            memory_bytes: 80 * (1u64 << 30),
            memory_bandwidth_gbps: 2039.0,
            kernel_launch_overhead_s: 12.0e-6,
        }
    }

    /// Peak throughput in FLOP/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }

    /// Device memory capacity in GiB.
    #[must_use]
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / (1u64 << 30) as f64
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::a800_80gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_id_roundtrip() {
        let d = DeviceId::from(7u32);
        assert_eq!(d.index(), 7);
        assert_eq!(u32::from(d), 7);
        assert_eq!(d.to_string(), "gpu7");
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId::from(3u32).index(), 3);
    }

    #[test]
    fn device_ordering_is_by_index() {
        assert!(DeviceId(1) < DeviceId(2));
        assert!(DeviceId(10) > DeviceId(2));
    }

    #[test]
    fn a800_spec_sane() {
        let g = GpuSpec::a800_80gb();
        assert!(g.peak_flops() > 3.0e14);
        assert!((g.memory_gib() - 80.0).abs() < 1e-9);
        assert!(g.kernel_launch_overhead_s > 0.0);
    }

    #[test]
    fn default_gpu_is_a800() {
        assert_eq!(GpuSpec::default(), GpuSpec::a800_80gb());
    }
}
