//! Error type for cluster construction and queries.

use std::error::Error;
use std::fmt;

use crate::DeviceId;

/// Errors produced while constructing or querying a cluster description.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The cluster was described with zero nodes or zero devices.
    EmptyCluster,
    /// A device id referenced a device that does not exist in the cluster.
    UnknownDevice(DeviceId),
    /// A device group was empty where a non-empty group was required.
    EmptyGroup,
    /// A device group contained duplicate devices.
    DuplicateDevice(DeviceId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyCluster => write!(f, "cluster must contain at least one device"),
            ClusterError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            ClusterError::EmptyGroup => write!(f, "device group must not be empty"),
            ClusterError::DuplicateDevice(d) => {
                write!(f, "device {d} appears more than once in group")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            ClusterError::EmptyCluster.to_string(),
            ClusterError::UnknownDevice(DeviceId(3)).to_string(),
            ClusterError::EmptyGroup.to_string(),
            ClusterError::DuplicateDevice(DeviceId(1)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ClusterError>();
    }
}
