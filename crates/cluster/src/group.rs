//! Ordered sets of devices used as allocation targets.

use std::fmt;

use crate::{ClusterError, DeviceId};

/// An ordered, duplicate-free set of devices.
///
/// Device groups are the unit of placement in Spindle: each sliced MetaOp in a
/// wave executes on one group, parameter synchronisation happens within a
/// group, and data flows move between groups across wave boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DeviceGroup {
    devices: Vec<DeviceId>,
}

impl DeviceGroup {
    /// Creates a group from the given devices.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyGroup`] if `devices` is empty and
    /// [`ClusterError::DuplicateDevice`] if any device appears twice.
    pub fn new<I: IntoIterator<Item = DeviceId>>(devices: I) -> Result<Self, ClusterError> {
        let devices: Vec<DeviceId> = devices.into_iter().collect();
        if devices.is_empty() {
            return Err(ClusterError::EmptyGroup);
        }
        let mut seen = devices.clone();
        seen.sort_unstable();
        for w in seen.windows(2) {
            if w[0] == w[1] {
                return Err(ClusterError::DuplicateDevice(w[0]));
            }
        }
        Ok(Self { devices })
    }

    /// Creates a group of `count` consecutive devices starting at `first`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn contiguous(first: DeviceId, count: usize) -> Self {
        assert!(count > 0, "device group must not be empty");
        let devices = (0..count as u32).map(|k| DeviceId(first.0 + k)).collect();
        Self { devices }
    }

    /// Number of devices in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the group holds no devices. Groups constructed through
    /// the public constructors are never empty; this exists for completeness
    /// (and because `Default` produces an empty group).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The devices in this group, in placement order.
    #[must_use]
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Returns `true` if `device` belongs to the group.
    #[must_use]
    pub fn contains(&self, device: DeviceId) -> bool {
        self.devices.contains(&device)
    }

    /// Iterates over the devices of the group.
    pub fn iter(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.devices.iter().copied()
    }

    /// Devices present in both groups.
    #[must_use]
    pub fn intersection(&self, other: &DeviceGroup) -> Vec<DeviceId> {
        self.devices
            .iter()
            .copied()
            .filter(|d| other.contains(*d))
            .collect()
    }

    /// Returns `true` if the two groups share at least one device.
    #[must_use]
    pub fn overlaps(&self, other: &DeviceGroup) -> bool {
        self.devices.iter().any(|d| other.contains(*d))
    }

    /// Returns a sorted copy of the group (canonical form used as a map key,
    /// e.g. for the parameter device-group pool of §3.6).
    #[must_use]
    pub fn sorted(&self) -> DeviceGroup {
        let mut devices = self.devices.clone();
        devices.sort_unstable();
        DeviceGroup { devices }
    }
}

impl fmt::Display for DeviceGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<DeviceId> for DeviceGroup {
    /// Collects devices into a group, silently dropping duplicates.
    fn from_iter<T: IntoIterator<Item = DeviceId>>(iter: T) -> Self {
        let mut devices: Vec<DeviceId> = Vec::new();
        for d in iter {
            if !devices.contains(&d) {
                devices.push(d);
            }
        }
        Self { devices }
    }
}

impl<'a> IntoIterator for &'a DeviceGroup {
    type Item = DeviceId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, DeviceId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.devices.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty_and_duplicates() {
        assert_eq!(DeviceGroup::new([]), Err(ClusterError::EmptyGroup));
        assert_eq!(
            DeviceGroup::new([DeviceId(1), DeviceId(1)]),
            Err(ClusterError::DuplicateDevice(DeviceId(1)))
        );
    }

    #[test]
    fn contiguous_builds_expected_range() {
        let g = DeviceGroup::contiguous(DeviceId(4), 4);
        assert_eq!(
            g.devices(),
            &[DeviceId(4), DeviceId(5), DeviceId(6), DeviceId(7)]
        );
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn contiguous_zero_panics() {
        let _ = DeviceGroup::contiguous(DeviceId(0), 0);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = DeviceGroup::contiguous(DeviceId(0), 4);
        let b = DeviceGroup::contiguous(DeviceId(2), 4);
        let c = DeviceGroup::contiguous(DeviceId(8), 2);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b), vec![DeviceId(2), DeviceId(3)]);
    }

    #[test]
    fn from_iterator_dedups() {
        let g: DeviceGroup = [DeviceId(3), DeviceId(1), DeviceId(3)]
            .into_iter()
            .collect();
        assert_eq!(g.devices(), &[DeviceId(3), DeviceId(1)]);
        assert_eq!(g.sorted().devices(), &[DeviceId(1), DeviceId(3)]);
    }

    #[test]
    fn display_is_compact() {
        let g = DeviceGroup::contiguous(DeviceId(0), 2);
        assert_eq!(g.to_string(), "[gpu0,gpu1]");
    }

    #[test]
    fn iteration_matches_devices() {
        let g = DeviceGroup::contiguous(DeviceId(1), 3);
        let via_iter: Vec<DeviceId> = (&g).into_iter().collect();
        assert_eq!(via_iter, g.devices());
        assert_eq!(g.iter().count(), 3);
        assert!(g.contains(DeviceId(2)));
        assert!(!g.contains(DeviceId(9)));
    }
}
