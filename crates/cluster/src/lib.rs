//! # spindle-cluster
//!
//! GPU-cluster topology and communication cost model for the Spindle
//! reproduction.
//!
//! The paper evaluates Spindle on an 8-node cluster where each node holds
//! 8 NVIDIA A800 80 GB GPUs connected by NVLink, and nodes are connected by
//! 400 Gbps InfiniBand. This crate provides a faithful *model* of such a
//! cluster — device identities, node/island structure, per-link bandwidths and
//! latencies, per-device memory capacity — together with an analytic
//! communication cost model for the point-to-point and collective operations
//! Spindle's planner and runtime need to reason about.
//!
//! Everything here is a pure description: no GPUs are touched. The rest of the
//! workspace (estimator, planner, runtime simulator) consumes these types to
//! make the same decisions the paper's system makes against real hardware.
//!
//! ## Example
//!
//! ```
//! use spindle_cluster::{ClusterSpec, CommModel, DeviceGroup, DeviceId};
//!
//! // Two nodes of 8 A800-like GPUs.
//! let cluster = ClusterSpec::homogeneous(2, 8);
//! assert_eq!(cluster.num_devices(), 16);
//!
//! // All-reducing 1 GiB of gradients within one node is much cheaper than
//! // across the two nodes.
//! let comm = CommModel::new(&cluster);
//! let intra = DeviceGroup::contiguous(DeviceId(0), 8);
//! let inter = DeviceGroup::contiguous(DeviceId(4), 8);
//! let bytes = 1u64 << 30;
//! assert!(comm.all_reduce_time(&intra, bytes) < comm.all_reduce_time(&inter, bytes));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bandwidth;
mod collective;
mod device;
mod error;
mod group;
mod link;
mod storage;
mod topology;

pub use bandwidth::{InterconnectSpec, LinkClass};
pub use collective::CommModel;
pub use device::{DeviceId, GpuSpec, NodeId};
pub use error::ClusterError;
pub use group::DeviceGroup;
pub use link::{collective_footprint, transfer_footprint, LinkId, LinkOccupancy};
pub use storage::{storage_footprint, StorageSpec};
pub use topology::{ClusterSpec, Island, NodeSpec};
