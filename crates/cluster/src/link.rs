//! Shared-link occupancy: the contention model consumed by the event-driven
//! runtime simulator.
//!
//! The analytic [`CommModel`](crate::CommModel) prices every transfer as if it
//! ran alone on the wire. Real clusters are not so polite: several concurrent
//! flows crossing the same NVLink fabric or the same node's network uplink
//! share its bandwidth. This module gives transfers an explicit *link
//! footprint* — the set of shared physical resources a flow occupies — and a
//! [`LinkOccupancy`] tracker that reports, for any footprint, the worst
//! congestion (number of concurrent flows) on any of its links. A flow-level
//! simulator divides the flow's nominal bandwidth by that congestion factor,
//! which is the classic equal-share approximation of max-min fairness.

use std::collections::BTreeMap;

use crate::{ClusterSpec, DeviceGroup, NodeId};

/// One shared physical communication resource of the cluster.
///
/// The granularity matches what the simulator needs to express the two
/// contention effects that matter for wave execution: intra-island transfers
/// contending on a node's NVLink fabric, and inter-island transfers contending
/// on a node's network uplink/downlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkId {
    /// The NVLink/NVSwitch fabric of one node (island). All intra-island
    /// transfers on that node share it.
    IslandBus(NodeId),
    /// The egress side of a node's inter-island network interface.
    Uplink(NodeId),
    /// The ingress side of a node's inter-island network interface.
    Downlink(NodeId),
    /// A node's link to the checkpoint storage fabric (see
    /// [`StorageSpec`](crate::StorageSpec)). Checkpoint writes and restores
    /// of that node's devices share it.
    StorageLink(NodeId),
    /// The shared storage spine every storage transfer crosses — the
    /// oversubscription point of the checkpoint tier.
    StorageSpine,
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkId::IslandBus(n) => write!(f, "bus:{n}"),
            LinkId::Uplink(n) => write!(f, "up:{n}"),
            LinkId::Downlink(n) => write!(f, "down:{n}"),
            LinkId::StorageLink(n) => write!(f, "store:{n}"),
            LinkId::StorageSpine => write!(f, "spine"),
        }
    }
}

/// The set of shared links a group-to-group transfer occupies.
///
/// Empty footprints (single-device or intra-device transfers) never contend.
/// The footprint is sorted and duplicate-free so footprints compare and hash
/// deterministically.
#[must_use]
pub fn transfer_footprint(
    cluster: &ClusterSpec,
    src: &DeviceGroup,
    dst: &DeviceGroup,
) -> Vec<LinkId> {
    let src_nodes = nodes_of(cluster, src);
    let dst_nodes = nodes_of(cluster, dst);
    let mut links = Vec::new();
    if src_nodes.len() == 1 && src_nodes == dst_nodes {
        // Same island: a pure NVLink transfer, unless it is one device talking
        // to itself (a local copy contends with nothing).
        let same_single_device = src.len() == 1 && dst.len() == 1 && src.devices() == dst.devices();
        if !same_single_device {
            links.push(LinkId::IslandBus(src_nodes[0]));
        }
    } else {
        for &n in &src_nodes {
            links.push(LinkId::Uplink(n));
        }
        for &n in &dst_nodes {
            links.push(LinkId::Downlink(n));
        }
    }
    links.sort_unstable();
    links.dedup();
    links
}

/// The set of shared links an intra-group collective (e.g. the gradient
/// all-reduce of a parameter device group) occupies.
#[must_use]
pub fn collective_footprint(cluster: &ClusterSpec, group: &DeviceGroup) -> Vec<LinkId> {
    let nodes = nodes_of(cluster, group);
    let mut links = Vec::new();
    if nodes.len() <= 1 {
        if group.len() > 1 {
            if let Some(&n) = nodes.first() {
                links.push(LinkId::IslandBus(n));
            }
        }
    } else {
        // A hierarchical all-reduce touches every participating island's
        // fabric and both directions of its uplink (ring neighbours).
        for &n in &nodes {
            links.push(LinkId::IslandBus(n));
            links.push(LinkId::Uplink(n));
            links.push(LinkId::Downlink(n));
        }
    }
    links.sort_unstable();
    links.dedup();
    links
}

fn nodes_of(cluster: &ClusterSpec, group: &DeviceGroup) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = group
        .iter()
        .filter_map(|d| cluster.node_of(d).ok())
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// Tracks how many active flows occupy each shared link.
///
/// The tracker is deliberately simple — register a footprint when a flow
/// starts, release it when the flow completes, and ask for the congestion of
/// any footprint in between. All operations are deterministic and
/// allocation-light (one `BTreeMap` keyed by [`LinkId`]).
#[derive(Debug, Clone, Default)]
pub struct LinkOccupancy {
    active: BTreeMap<LinkId, usize>,
}

impl LinkOccupancy {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an active flow occupying `footprint`.
    pub fn register(&mut self, footprint: &[LinkId]) {
        for &link in footprint {
            *self.active.entry(link).or_insert(0) += 1;
        }
    }

    /// Releases a previously registered flow.
    ///
    /// Releasing links that were never registered is a no-op (the tracker
    /// saturates at zero rather than underflowing).
    pub fn release(&mut self, footprint: &[LinkId]) {
        for link in footprint {
            if let Some(count) = self.active.get_mut(link) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    self.active.remove(link);
                }
            }
        }
    }

    /// Number of active flows on `link`.
    #[must_use]
    pub fn flows_on(&self, link: LinkId) -> usize {
        self.active.get(&link).copied().unwrap_or(0)
    }

    /// Worst-case congestion over `footprint`: the maximum number of
    /// concurrent flows on any of its links, at least 1 (a flow always has
    /// itself). A registered flow asking about its own footprint therefore
    /// gets `1` when it runs alone and `k` when `k` flows share its most
    /// contended link.
    #[must_use]
    pub fn congestion(&self, footprint: &[LinkId]) -> usize {
        footprint
            .iter()
            .map(|&l| self.flows_on(l))
            .max()
            .unwrap_or(0)
            .max(1)
    }

    /// Number of links currently carrying at least one flow.
    #[must_use]
    pub fn busy_links(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceId;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 4)
    }

    #[test]
    fn intra_island_transfer_occupies_the_island_bus() {
        let c = cluster();
        let src = DeviceGroup::contiguous(DeviceId(0), 2);
        let dst = DeviceGroup::contiguous(DeviceId(2), 2);
        assert_eq!(
            transfer_footprint(&c, &src, &dst),
            vec![LinkId::IslandBus(NodeId(0))]
        );
    }

    #[test]
    fn self_transfer_contends_with_nothing() {
        let c = cluster();
        let g = DeviceGroup::contiguous(DeviceId(1), 1);
        assert!(transfer_footprint(&c, &g, &g).is_empty());
    }

    #[test]
    fn cross_island_transfer_occupies_uplink_and_downlink() {
        let c = cluster();
        let src = DeviceGroup::contiguous(DeviceId(0), 2);
        let dst = DeviceGroup::contiguous(DeviceId(4), 2);
        assert_eq!(
            transfer_footprint(&c, &src, &dst),
            vec![LinkId::Uplink(NodeId(0)), LinkId::Downlink(NodeId(1))]
        );
    }

    #[test]
    fn collective_footprints_scale_with_span() {
        let c = cluster();
        let single = DeviceGroup::contiguous(DeviceId(0), 1);
        assert!(collective_footprint(&c, &single).is_empty());
        let intra = DeviceGroup::contiguous(DeviceId(0), 4);
        assert_eq!(
            collective_footprint(&c, &intra),
            vec![LinkId::IslandBus(NodeId(0))]
        );
        let cross = DeviceGroup::contiguous(DeviceId(2), 4);
        let links = collective_footprint(&c, &cross);
        assert_eq!(links.len(), 6); // bus + up + down per island
        assert!(links.contains(&LinkId::Uplink(NodeId(1))));
    }

    #[test]
    fn occupancy_counts_and_saturates() {
        let c = cluster();
        let src = DeviceGroup::contiguous(DeviceId(0), 2);
        let near = DeviceGroup::contiguous(DeviceId(2), 2);
        let far = DeviceGroup::contiguous(DeviceId(4), 2);
        let f1 = transfer_footprint(&c, &src, &near);
        let f2 = transfer_footprint(&c, &src, &far);
        let mut occ = LinkOccupancy::new();
        assert_eq!(occ.congestion(&f1), 1);
        occ.register(&f1);
        occ.register(&f1);
        assert_eq!(occ.congestion(&f1), 2);
        // The cross-island flow does not contend with the NVLink flow.
        occ.register(&f2);
        assert_eq!(occ.congestion(&f2), 1);
        assert_eq!(occ.busy_links(), 3);
        occ.release(&f1);
        assert_eq!(occ.congestion(&f1), 1);
        occ.release(&f1);
        occ.release(&f1); // over-release saturates
        assert_eq!(occ.flows_on(LinkId::IslandBus(NodeId(0))), 0);
        assert_eq!(occ.congestion(&[]), 1);
    }

    #[test]
    fn link_display_is_compact() {
        assert_eq!(LinkId::IslandBus(NodeId(0)).to_string(), "bus:node0");
        assert_eq!(LinkId::Uplink(NodeId(1)).to_string(), "up:node1");
        assert_eq!(LinkId::Downlink(NodeId(2)).to_string(), "down:node2");
    }
}
