//! The checkpoint storage tier: per-node storage links behind a shared,
//! possibly oversubscribed spine.
//!
//! Checkpoint writes and restores do not ride the compute fabric the waves
//! train over — they leave each node through a dedicated storage link and
//! converge on a shared storage spine (a parallel filesystem or object
//! store front-end). The spine's aggregate bandwidth is typically *smaller*
//! than the sum of the node links (oversubscription), so a cluster-wide
//! checkpoint or a mass restore contends there even when every node link
//! still has headroom. [`StorageSpec`] models both stages; together with the
//! [`LinkId::StorageLink`]/[`LinkId::StorageSpine`] footprint links it plugs
//! into the same equal-share occupancy model the runtime simulator uses for
//! training traffic.

use crate::{ClusterError, ClusterSpec, DeviceId, LinkId};

/// Bandwidth/latency model of the checkpoint storage tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageSpec {
    /// Bandwidth of one node's link to the storage fabric, bytes/s.
    pub node_bandwidth: f64,
    /// Aggregate bandwidth of the shared storage spine, bytes/s. When this is
    /// below `num_nodes * node_bandwidth` the tier is oversubscribed and
    /// concurrent many-node transfers bottleneck here.
    pub spine_bandwidth: f64,
    /// Fixed per-transfer latency (request setup, metadata), seconds.
    pub latency_s: f64,
}

impl StorageSpec {
    /// A disaggregated NVMe-over-fabric tier: 8 GB/s per node link behind a
    /// 32 GB/s spine (2x oversubscribed at the paper's 8-node testbed scale),
    /// 2 ms setup latency.
    #[must_use]
    pub fn disaggregated_nvme() -> Self {
        Self {
            node_bandwidth: 8e9,
            spine_bandwidth: 32e9,
            latency_s: 2e-3,
        }
    }

    /// Bandwidth a single transfer sees with the tier otherwise idle: the
    /// minimum of its node link and the whole spine.
    #[must_use]
    pub fn lone_bandwidth(&self) -> f64 {
        self.node_bandwidth.min(self.spine_bandwidth).max(1.0)
    }

    /// Time for one transfer of `bytes` with the tier otherwise idle.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.lone_bandwidth()
    }

    /// Slowdown factor (>= 1) of one flow versus [`Self::transfer_time`],
    /// given `node_flows` concurrent flows on its node's storage link and
    /// `spine_flows` concurrent flows on the spine (both counts include the
    /// flow itself). Each stage shares equally; the flow runs at the rate of
    /// its most contended stage, so the spine only becomes the bottleneck
    /// once `spine_flows` exceeds the spine-to-node bandwidth ratio — the
    /// oversubscription knee.
    #[must_use]
    pub fn slowdown(&self, node_flows: usize, spine_flows: usize) -> f64 {
        let lone = self.lone_bandwidth();
        let node_limited = node_flows as f64 * lone / self.node_bandwidth.max(1.0);
        let spine_limited = spine_flows as f64 * lone / self.spine_bandwidth.max(1.0);
        node_limited.max(spine_limited).max(1.0)
    }
}

impl Default for StorageSpec {
    fn default() -> Self {
        Self::disaggregated_nvme()
    }
}

/// The storage links a checkpoint write or restore of `device` occupies: its
/// node's storage link plus the shared spine.
///
/// # Errors
///
/// Returns [`ClusterError::UnknownDevice`] if `device` is not part of the
/// cluster.
pub fn storage_footprint(
    cluster: &ClusterSpec,
    device: DeviceId,
) -> Result<Vec<LinkId>, ClusterError> {
    let node = cluster.node_of(device)?;
    Ok(vec![LinkId::StorageLink(node), LinkId::StorageSpine])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn lone_transfer_is_node_link_limited() {
        let s = StorageSpec::disaggregated_nvme();
        let t = s.transfer_time(8_000_000_000);
        assert!((t - (s.latency_s + 1.0)).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn slowdown_has_an_oversubscription_knee() {
        let s = StorageSpec::disaggregated_nvme();
        // Spine/node ratio is 4: up to 4 single-per-node flows share nothing.
        assert_eq!(s.slowdown(1, 1), 1.0);
        assert_eq!(s.slowdown(1, 4), 1.0);
        // Beyond the ratio the spine is the bottleneck even with idle node
        // links.
        assert!((s.slowdown(1, 8) - 2.0).abs() < 1e-12);
        // Node-link sharing dominates when flows pile onto one node.
        assert!((s.slowdown(3, 3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_names_node_link_and_spine() {
        let c = ClusterSpec::homogeneous(2, 4);
        let fp = storage_footprint(&c, DeviceId(5)).unwrap();
        assert_eq!(
            fp,
            vec![LinkId::StorageLink(NodeId(1)), LinkId::StorageSpine]
        );
        assert!(storage_footprint(&c, DeviceId(99)).is_err());
    }
}
