//! Cluster topology: nodes, device islands and the overall cluster spec.

use std::fmt;

use crate::{
    ClusterError, DeviceGroup, DeviceId, GpuSpec, InterconnectSpec, LinkClass, NodeId, StorageSpec,
};

/// Description of a single node (server) of the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Identity of the node.
    pub id: NodeId,
    /// Devices hosted by this node, in local order.
    pub devices: Vec<DeviceId>,
}

impl NodeSpec {
    /// Number of devices on this node.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }
}

/// A device island: the set of devices connected by the high-bandwidth
/// intra-node interconnect. In this model an island coincides with a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Island {
    /// Island identity (same as the node id).
    pub id: NodeId,
    /// Devices belonging to the island.
    pub devices: DeviceGroup,
}

/// Full description of the training cluster: per-GPU spec, node layout and
/// interconnect parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    gpu: GpuSpec,
    interconnect: InterconnectSpec,
    storage: StorageSpec,
    nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Builds a homogeneous cluster of `num_nodes` nodes with `gpus_per_node`
    /// A800-like GPUs each, connected by NVLink within a node and 400 Gbps
    /// InfiniBand across nodes — the paper's testbed configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` or `gpus_per_node` is zero.
    #[must_use]
    pub fn homogeneous(num_nodes: usize, gpus_per_node: usize) -> Self {
        Self::with_specs(
            num_nodes,
            gpus_per_node,
            GpuSpec::a800_80gb(),
            InterconnectSpec::nvlink_plus_infiniband_400g(),
        )
    }

    /// Builds a homogeneous cluster with explicit GPU and interconnect specs.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` or `gpus_per_node` is zero.
    #[must_use]
    pub fn with_specs(
        num_nodes: usize,
        gpus_per_node: usize,
        gpu: GpuSpec,
        interconnect: InterconnectSpec,
    ) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        assert!(gpus_per_node > 0, "nodes must have at least one GPU");
        let nodes = (0..num_nodes)
            .map(|n| NodeSpec {
                id: NodeId(n as u32),
                devices: (0..gpus_per_node)
                    .map(|g| DeviceId((n * gpus_per_node + g) as u32))
                    .collect(),
            })
            .collect();
        Self {
            gpu,
            interconnect,
            storage: StorageSpec::default(),
            nodes,
        }
    }

    /// Replaces the checkpoint storage tier description (defaults to
    /// [`StorageSpec::disaggregated_nvme`]).
    #[must_use]
    pub fn with_storage(mut self, storage: StorageSpec) -> Self {
        self.storage = storage;
        self
    }

    /// The per-GPU hardware description.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The interconnect description.
    #[must_use]
    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// The checkpoint storage tier description.
    #[must_use]
    pub fn storage(&self) -> &StorageSpec {
        &self.storage
    }

    /// The nodes of the cluster.
    #[must_use]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Total number of devices in the cluster.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.nodes.iter().map(NodeSpec::num_devices).sum()
    }

    /// One past the highest global device id — the size of the dense id
    /// space. Equals [`ClusterSpec::num_devices`] on a pristine cluster;
    /// after [`ClusterSpec::without_devices`] it can exceed the device
    /// count, because surviving devices keep their global ids and the
    /// numbering gains holes instead of being compacted.
    #[must_use]
    pub fn device_space(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.devices.iter())
            .map(|d| d.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// A copy of this cluster with `removed` devices taken out of their
    /// nodes — the surviving set after churn (spot reclamation, GPU
    /// failure, preemption). Surviving devices keep their global ids, so
    /// the numbering gains holes rather than being compacted, and nodes
    /// keep their [`NodeId`]s — a node whose devices are all removed stays
    /// in the layout as an empty island so link endpoints remain stable.
    /// Ids in `removed` that are absent (unknown or already removed) are
    /// ignored, making the operation idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] if removal would leave no
    /// device at all.
    pub fn without_devices(&self, removed: &[DeviceId]) -> Result<Self, ClusterError> {
        let mut spec = self.clone();
        for node in &mut spec.nodes {
            node.devices.retain(|d| !removed.contains(d));
        }
        if spec.num_devices() == 0 {
            return Err(ClusterError::EmptyCluster);
        }
        Ok(spec)
    }

    /// Number of nodes (device islands).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All devices of the cluster in global order.
    #[must_use]
    pub fn all_devices(&self) -> DeviceGroup {
        self.nodes
            .iter()
            .flat_map(|n| n.devices.iter().copied())
            .collect()
    }

    /// The device islands of the cluster (one per node). Nodes emptied by
    /// [`ClusterSpec::without_devices`] are skipped — an island with no
    /// devices cannot host work.
    #[must_use]
    pub fn islands(&self) -> Vec<Island> {
        self.nodes
            .iter()
            .filter(|n| !n.devices.is_empty())
            .map(|n| Island {
                id: n.id,
                devices: n.devices.iter().copied().collect(),
            })
            .collect()
    }

    /// The node hosting `device`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDevice`] if the device is not part of the
    /// cluster.
    pub fn node_of(&self, device: DeviceId) -> Result<NodeId, ClusterError> {
        self.nodes
            .iter()
            .find(|n| n.devices.contains(&device))
            .map(|n| n.id)
            .ok_or(ClusterError::UnknownDevice(device))
    }

    /// Returns `true` if `device` exists in this cluster.
    #[must_use]
    pub fn contains(&self, device: DeviceId) -> bool {
        self.nodes.iter().any(|n| n.devices.contains(&device))
    }

    /// Link class between two devices of the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDevice`] if either device is unknown.
    pub fn link_class(&self, a: DeviceId, b: DeviceId) -> Result<LinkClass, ClusterError> {
        if a == b {
            // Still validate the device exists.
            self.node_of(a)?;
            return Ok(LinkClass::IntraDevice);
        }
        let na = self.node_of(a)?;
        let nb = self.node_of(b)?;
        Ok(if na == nb {
            LinkClass::IntraIsland
        } else {
            LinkClass::InterIsland
        })
    }

    /// Returns `true` if every device of `group` lives on the same island.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDevice`] if any device is unknown, or
    /// [`ClusterError::EmptyGroup`] for an empty group.
    pub fn is_intra_island(&self, group: &DeviceGroup) -> Result<bool, ClusterError> {
        let mut nodes = group.iter().map(|d| self.node_of(d));
        let first = nodes.next().ok_or(ClusterError::EmptyGroup)??;
        for n in nodes {
            if n? != first {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Number of distinct islands spanned by `group`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownDevice`] if any device is unknown.
    pub fn islands_spanned(&self, group: &DeviceGroup) -> Result<usize, ClusterError> {
        let mut nodes: Vec<NodeId> = group
            .iter()
            .map(|d| self.node_of(d))
            .collect::<Result<_, _>>()?;
        nodes.sort_unstable();
        nodes.dedup();
        Ok(nodes.len())
    }

    /// Per-device memory capacity in bytes.
    #[must_use]
    pub fn device_memory_bytes(&self) -> u64 {
        self.gpu.memory_bytes
    }

    /// Aggregate peak compute of the whole cluster in FLOP/s.
    #[must_use]
    pub fn aggregate_peak_flops(&self) -> f64 {
        self.gpu.peak_flops() * self.num_devices() as f64
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node(s) x {} GPU(s), {:.0} TFLOP/s each, {:.0} GiB memory",
            self.num_nodes(),
            self.nodes.first().map_or(0, NodeSpec::num_devices),
            self.gpu.peak_tflops,
            self.gpu.memory_gib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_layout() {
        let c = ClusterSpec::homogeneous(2, 8);
        assert_eq!(c.num_devices(), 16);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.nodes()[1].devices[0], DeviceId(8));
        assert_eq!(c.all_devices().len(), 16);
        assert_eq!(c.islands().len(), 2);
        assert!(c.contains(DeviceId(15)));
        assert!(!c.contains(DeviceId(16)));
    }

    #[test]
    fn node_of_and_link_class() {
        let c = ClusterSpec::homogeneous(2, 4);
        assert_eq!(c.node_of(DeviceId(3)).unwrap(), NodeId(0));
        assert_eq!(c.node_of(DeviceId(4)).unwrap(), NodeId(1));
        assert_eq!(
            c.node_of(DeviceId(99)),
            Err(ClusterError::UnknownDevice(DeviceId(99)))
        );
        assert_eq!(
            c.link_class(DeviceId(1), DeviceId(1)).unwrap(),
            LinkClass::IntraDevice
        );
        assert_eq!(
            c.link_class(DeviceId(1), DeviceId(3)).unwrap(),
            LinkClass::IntraIsland
        );
        assert_eq!(
            c.link_class(DeviceId(1), DeviceId(5)).unwrap(),
            LinkClass::InterIsland
        );
    }

    #[test]
    fn island_queries() {
        let c = ClusterSpec::homogeneous(4, 8);
        let intra = DeviceGroup::contiguous(DeviceId(8), 8);
        let cross = DeviceGroup::contiguous(DeviceId(4), 8);
        assert!(c.is_intra_island(&intra).unwrap());
        assert!(!c.is_intra_island(&cross).unwrap());
        assert_eq!(c.islands_spanned(&intra).unwrap(), 1);
        assert_eq!(c.islands_spanned(&cross).unwrap(), 2);
        let all = c.all_devices();
        assert_eq!(c.islands_spanned(&all).unwrap(), 4);
    }

    #[test]
    fn aggregate_compute_scales_with_devices() {
        let small = ClusterSpec::homogeneous(1, 8);
        let large = ClusterSpec::homogeneous(4, 8);
        assert!((large.aggregate_peak_flops() / small.aggregate_peak_flops() - 4.0).abs() < 1e-9);
        assert_eq!(small.device_memory_bytes(), 80 * (1 << 30));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = ClusterSpec::homogeneous(0, 8);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = ClusterSpec::homogeneous(1, 0);
    }

    #[test]
    fn display_mentions_shape() {
        let c = ClusterSpec::homogeneous(2, 8);
        let s = c.to_string();
        assert!(s.contains("2 node"));
        assert!(s.contains("8 GPU"));
    }

    #[test]
    fn without_devices_keeps_stable_ids_and_node_layout() {
        let c = ClusterSpec::homogeneous(2, 4);
        let survived = c
            .without_devices(&[DeviceId(0), DeviceId(5), DeviceId(6), DeviceId(7)])
            .unwrap();
        assert_eq!(survived.num_devices(), 4);
        // Ids are stable: the id space spans up to the highest survivor.
        assert_eq!(survived.device_space(), 5);
        assert!(!survived.contains(DeviceId(0)));
        assert!(survived.contains(DeviceId(4)));
        assert_eq!(survived.node_of(DeviceId(4)).unwrap(), NodeId(1));
        // Node 1 still hosts DeviceId(4); removing it empties the node,
        // which then stops contributing an island but keeps its NodeId.
        let bare = survived.without_devices(&[DeviceId(4)]).unwrap();
        assert_eq!(bare.num_nodes(), 2);
        assert_eq!(bare.islands().len(), 1);
        assert_eq!(bare.device_space(), 4);
        // Removing unknown or already-removed ids is a no-op.
        assert_eq!(
            bare.without_devices(&[DeviceId(0), DeviceId(99)]).unwrap(),
            bare.without_devices(&[]).unwrap()
        );
        // Removing everything is rejected.
        assert_eq!(
            bare.without_devices(&[DeviceId(1), DeviceId(2), DeviceId(3)]),
            Err(ClusterError::EmptyCluster)
        );
    }

    #[test]
    fn is_intra_island_rejects_unknown_device() {
        let c = ClusterSpec::homogeneous(1, 4);
        let g = DeviceGroup::contiguous(DeviceId(2), 4);
        assert_eq!(
            c.is_intra_island(&g),
            Err(ClusterError::UnknownDevice(DeviceId(4)))
        );
    }
}
