//! Bi-point discretisation of the continuous MPSP optimum (§3.3).
//!
//! The continuous optimum assigns each MetaOp a real-valued allocation `n*_m`.
//! Real clusters allocate whole devices, and only *valid* allocation sizes are
//! practical (the data-parallel degree must divide the batch, tensor
//! parallelism comes in small powers of two). The allocator therefore
//! represents each MetaOp's continuous allocation by at most two discrete
//! ASL-tuples `⟨n̲, ·, l̲⟩, ⟨n̄, ·, l̄⟩` whose layer counts are chosen so that
//!
//! * Cond. (10a): `l̲ + l̄ = L_m` — all operators are covered, and
//! * Cond. (10b): `T(n̲)·l̲ + T(n̄)·l̄ = C̃*` — the MetaOp still finishes at the
//!   continuous optimum.
//!
//! Allocations below one device ("dummy allocations") collapse to a single
//! 1-device tuple, which finishes *before* `C̃*` and is packed with other work
//! by the wavefront scheduler.

use std::fmt;

use spindle_estimator::ScalingCurve;

use crate::arena::MetaOpArena;
use crate::mpsp::{ContinuousSolution, MpspItem};
use crate::MetaOpId;

/// One discrete ASL-tuple without a start time: `layers` consecutive operators
/// executed on `devices` devices, each taking `time_per_op` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteAllocation {
    /// Devices allocated.
    pub devices: u32,
    /// Number of operators (layers) covered by this tuple.
    pub layers: u32,
    /// Per-operator execution time at this allocation, seconds.
    pub time_per_op: f64,
}

impl DiscreteAllocation {
    /// Total execution time of the tuple.
    #[must_use]
    pub fn exec_time(&self) -> f64 {
        f64::from(self.layers) * self.time_per_op
    }
}

/// The discretised allocation of one MetaOp: one or two tuples ordered by
/// decreasing device count.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaOpAllocation {
    /// The MetaOp.
    pub metaop: MetaOpId,
    /// Its tuples (at most two, larger allocation first).
    pub tuples: Vec<DiscreteAllocation>,
}

impl MetaOpAllocation {
    /// Total layers covered by the tuples.
    #[must_use]
    pub fn total_layers(&self) -> u32 {
        self.tuples.iter().map(|t| t.layers).sum()
    }

    /// Total execution time if the tuples run back to back.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.tuples.iter().map(DiscreteAllocation::exec_time).sum()
    }
}

/// The allocation plan of one MetaLevel.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPlan {
    /// Per-MetaOp allocations.
    pub allocations: Vec<MetaOpAllocation>,
    /// The continuous optimum `C̃*` the plan approximates.
    pub target_time: f64,
}

impl AllocationPlan {
    /// Looks up the allocation of a MetaOp.
    #[must_use]
    pub fn allocation_for(&self, metaop: MetaOpId) -> Option<&MetaOpAllocation> {
        self.allocations.iter().find(|a| a.metaop == metaop)
    }
}

impl fmt::Display for AllocationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "allocation plan (target {:.3} ms):",
            self.target_time * 1e3
        )?;
        for a in &self.allocations {
            write!(f, "  {}:", a.metaop)?;
            for t in &a.tuples {
                write!(f, " [{} dev x {} ops]", t.devices, t.layers)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Discretises the continuous solution of one MetaLevel into an
/// [`AllocationPlan`].
///
/// `items` must be the same items the continuous solution was computed from;
/// MetaOps missing from the solution (e.g. empty ones) are skipped.
#[must_use]
pub fn discretize(solution: &ContinuousSolution, items: &[MpspItem]) -> AllocationPlan {
    let mut allocations = Vec::with_capacity(items.len());
    for item in items {
        if item.num_ops == 0 {
            continue;
        }
        let Some(&n_star) = solution.allocations.get(&item.metaop) else {
            continue;
        };
        let tuples = discretize_one(&item.curve, n_star, item.num_ops, solution.optimal_time);
        allocations.push(MetaOpAllocation {
            metaop: item.metaop,
            tuples,
        });
    }
    AllocationPlan {
        allocations,
        target_time: solution.optimal_time,
    }
}

/// [`discretize`] driven by the dense [`MetaOpArena`] — curves and operator
/// counts are read by index, with no per-call lookup structures.
#[must_use]
pub fn discretize_level(
    solution: &ContinuousSolution,
    arena: &MetaOpArena,
    metaops: &[MetaOpId],
) -> AllocationPlan {
    let mut allocations = Vec::with_capacity(metaops.len());
    for &id in metaops {
        let num_ops = arena.num_ops(id);
        if num_ops == 0 {
            continue;
        }
        let Some(&n_star) = solution.allocations.get(&id) else {
            continue;
        };
        let tuples = discretize_one(arena.curve(id), n_star, num_ops, solution.optimal_time);
        allocations.push(MetaOpAllocation { metaop: id, tuples });
    }
    AllocationPlan {
        allocations,
        target_time: solution.optimal_time,
    }
}

fn discretize_one(
    curve: &ScalingCurve,
    n_star: f64,
    num_ops: u32,
    target_time: f64,
) -> Vec<DiscreteAllocation> {
    let single = |devices: u32| -> Vec<DiscreteAllocation> {
        let time_per_op = curve
            .time_at(devices)
            .unwrap_or_else(|| curve.time(f64::from(devices)));
        vec![DiscreteAllocation {
            devices,
            layers: num_ops,
            time_per_op,
        }]
    };

    // Dummy-allocation case: less than one device needed; run everything on a
    // single device (finishes within the target time because T(1)·L ≤ C̃*).
    if n_star < 1.0 {
        return single(1);
    }
    let (n_lo, n_hi) = curve.bracketing_allocations(n_star);
    if n_lo == n_hi {
        return single(n_lo);
    }
    let t_lo = curve
        .time_at(n_lo)
        .unwrap_or_else(|| curve.time(f64::from(n_lo)));
    let t_hi = curve
        .time_at(n_hi)
        .unwrap_or_else(|| curve.time(f64::from(n_hi)));
    if (t_lo - t_hi).abs() < f64::EPSILON {
        return single(n_lo);
    }
    let l = f64::from(num_ops);
    // Solve Cond. (10a)/(10b) for the layer split, then round to integers.
    let layers_hi_real = ((t_lo * l - target_time) / (t_lo - t_hi)).clamp(0.0, l);
    let layers_hi = layers_hi_real.round() as u32;
    let layers_lo = num_ops - layers_hi.min(num_ops);
    let mut tuples = Vec::new();
    if layers_hi > 0 {
        tuples.push(DiscreteAllocation {
            devices: n_hi,
            layers: layers_hi.min(num_ops),
            time_per_op: t_hi,
        });
    }
    if layers_lo > 0 {
        tuples.push(DiscreteAllocation {
            devices: n_lo,
            layers: layers_lo,
            time_per_op: t_lo,
        });
    }
    if tuples.is_empty() {
        return single(n_lo);
    }
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpsp::{self, DEFAULT_EPSILON};
    use spindle_estimator::test_util::{curve_from_points as curve, linear_curve};
    use std::sync::Arc;

    fn item(id: u32, num_ops: u32, c: Arc<ScalingCurve>) -> MpspItem {
        MpspItem {
            metaop: MetaOpId(id),
            num_ops,
            curve: c,
        }
    }

    #[test]
    fn conditions_10a_and_10b_hold_before_rounding_bias() {
        // Two MetaOps competing for 12 devices; allocations land between valid
        // integers so both get two tuples.
        let items = vec![
            item(0, 12, linear_curve(1.0, 16)),
            item(
                1,
                8,
                curve(&[(1, 1.0), (2, 0.7), (4, 0.55), (8, 0.5), (16, 0.48)]),
            ),
        ];
        let sol = mpsp::solve(&items, 12, DEFAULT_EPSILON);
        let plan = discretize(&sol, &items);
        for alloc in &plan.allocations {
            let original = items.iter().find(|i| i.metaop == alloc.metaop).unwrap();
            // Cond. (10a): all operators covered.
            assert_eq!(alloc.total_layers(), original.num_ops);
            // Cond. (10b) up to rounding: total time close to the target.
            let per_op_worst = alloc
                .tuples
                .iter()
                .map(|t| t.time_per_op)
                .fold(0.0, f64::max);
            assert!(
                alloc.total_time() <= plan.target_time + per_op_worst + 1e-9,
                "{}: {} vs {}",
                alloc.metaop,
                alloc.total_time(),
                plan.target_time
            );
            assert!(alloc.tuples.len() <= 2);
        }
    }

    #[test]
    fn tuples_ordered_larger_allocation_first() {
        let items = vec![
            item(0, 12, linear_curve(1.0, 16)),
            item(1, 12, linear_curve(2.0, 16)),
        ];
        let sol = mpsp::solve(&items, 12, DEFAULT_EPSILON);
        let plan = discretize(&sol, &items);
        for alloc in &plan.allocations {
            if alloc.tuples.len() == 2 {
                assert!(alloc.tuples[0].devices > alloc.tuples[1].devices);
            }
        }
    }

    #[test]
    fn dummy_allocation_collapses_to_single_device() {
        // 8 identical MetaOps on 4 devices: each continuous allocation is 0.5.
        let items: Vec<MpspItem> = (0..8).map(|i| item(i, 4, linear_curve(1.0, 4))).collect();
        let sol = mpsp::solve(&items, 4, DEFAULT_EPSILON);
        let plan = discretize(&sol, &items);
        for alloc in &plan.allocations {
            assert_eq!(alloc.tuples.len(), 1);
            assert_eq!(alloc.tuples[0].devices, 1);
            assert_eq!(alloc.total_layers(), 4);
            // Finishes within the level optimum.
            assert!(alloc.total_time() <= plan.target_time + 1e-9);
        }
    }

    #[test]
    fn exact_valid_allocation_yields_single_tuple() {
        let items = vec![item(0, 10, linear_curve(1.0, 8))];
        let sol = mpsp::solve(&items, 8, DEFAULT_EPSILON);
        let plan = discretize(&sol, &items);
        let alloc = plan.allocation_for(MetaOpId(0)).unwrap();
        assert_eq!(alloc.tuples.len(), 1);
        assert_eq!(alloc.tuples[0].devices, 8);
        assert_eq!(alloc.tuples[0].layers, 10);
    }

    #[test]
    fn paper_example_metaop2_discretisation() {
        // Fig. 5a: a MetaOp with n* = 1.5 and L = 12 splits into allocations of
        // 2 and 1 devices with layer counts near 8.4 / 3.6 (here rounded).
        let c = linear_curve(1.0, 4);
        let sol = ContinuousSolution {
            optimal_time: crate::mpsp::continuous_time(&c, 1.5) * 12.0,
            allocations: [(MetaOpId(0), 1.5)].into_iter().collect(),
        };
        let items = vec![item(0, 12, c)];
        let plan = discretize(&sol, &items);
        let alloc = plan.allocation_for(MetaOpId(0)).unwrap();
        assert_eq!(alloc.tuples.len(), 2);
        assert_eq!(alloc.tuples[0].devices, 2);
        assert_eq!(alloc.tuples[1].devices, 1);
        assert_eq!(alloc.total_layers(), 12);
        assert_eq!(alloc.tuples[0].layers, 8);
        assert_eq!(alloc.tuples[1].layers, 4);
    }

    #[test]
    fn display_lists_every_metaop() {
        let items = vec![
            item(0, 4, linear_curve(1.0, 4)),
            item(1, 4, linear_curve(1.0, 4)),
        ];
        let sol = mpsp::solve(&items, 8, DEFAULT_EPSILON);
        let plan = discretize(&sol, &items);
        let text = plan.to_string();
        assert!(text.contains("metaop0"));
        assert!(text.contains("metaop1"));
        assert!(plan.allocation_for(MetaOpId(3)).is_none());
    }
}
