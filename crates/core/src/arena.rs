//! Dense per-plan working state for the planning hot paths.
//!
//! Graph contraction assigns [`MetaOpId`]s densely (`0..num_metaops`), so all
//! per-MetaOp working state of one planning pass — scaling curves, operator
//! counts, hoisted curve constants — can live in plain `Vec`s indexed by
//! `MetaOpId::index()` instead of `BTreeMap`s. The arena is built once per
//! plan from the stage-1/2 artifacts and then read by the MPSP solver, the
//! bi-point discretiser and the wavefront scheduler without any map lookups or
//! allocations on their inner loops. `BTreeMap`-shaped state survives only at
//! the public-artifact boundary ([`ContinuousSolution`](crate::ContinuousSolution),
//! [`ExecutionPlan`](crate::ExecutionPlan)).

use std::sync::Arc;

use spindle_estimator::ScalingCurve;

use crate::pipeline::CurveSet;
use crate::{MetaGraph, MetaOpId};

/// Dense, immutable per-MetaOp planning state: one slot per MetaOp of the
/// contracted graph, indexed directly by [`MetaOpId`].
#[derive(Debug, Clone)]
pub struct MetaOpArena {
    curves: Vec<Arc<ScalingCurve>>,
    num_ops: Vec<u32>,
    /// Hoisted `curve.time(1.0)` per MetaOp — the single-device time used on
    /// every bisection iteration and in the sub-one-device extrapolation.
    t1: Vec<f64>,
}

impl MetaOpArena {
    /// Builds the arena for one plan from the contracted graph and its
    /// resolved curves.
    ///
    /// # Panics
    ///
    /// Panics if `curves` does not cover every MetaOp of `metagraph` (the
    /// stage-2 artifact always does).
    #[must_use]
    pub fn build(metagraph: &MetaGraph, curves: &CurveSet) -> Self {
        let n = metagraph.num_metaops();
        let mut arena = Self {
            curves: Vec::with_capacity(n),
            num_ops: Vec::with_capacity(n),
            t1: Vec::with_capacity(n),
        };
        for metaop in metagraph.metaops() {
            let curve = curves
                .get(metaop.id())
                .expect("CurveSet::resolve covers every MetaOp of the ContractedGraph");
            arena.t1.push(curve.time(1.0));
            arena.curves.push(Arc::clone(curve));
            arena.num_ops.push(metaop.num_ops());
        }
        arena
    }

    /// Number of slots (MetaOps).
    #[must_use]
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Whether the arena has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// The scaling curve of a MetaOp.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn curve(&self, id: MetaOpId) -> &Arc<ScalingCurve> {
        &self.curves[id.index()]
    }

    /// Number of operators (`L_m`) of a MetaOp.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn num_ops(&self, id: MetaOpId) -> u32 {
        self.num_ops[id.index()]
    }

    /// Hoisted single-device time `T_m(1)` of a MetaOp.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn t1(&self, id: MetaOpId) -> f64 {
        self.t1[id.index()]
    }
}

/// The cache-telemetry pair shared by every surface that reports on the
/// session caches (estimator curve cache plus structural plan cache combined):
/// a point-in-time byte gauge and an eviction count.
///
/// One struct serves both [`PlanningStats`] (lifetime evictions) and
/// [`ReplanOutcome`](crate::ReplanOutcome) (evictions during that re-plan), so
/// the two reporting surfaces cannot drift apart field by field. The
/// surrounding type documents which eviction window applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheTelemetry {
    /// Approximate bytes currently held by the caches — a gauge, not a
    /// counter.
    pub bytes: usize,
    /// Cache entries evicted to stay within the configured byte budgets.
    pub evictions: u64,
}

/// Counters describing one planning pass's hot-path behaviour, exposed through
/// [`SpindleSession::planning_stats`](crate::SpindleSession::planning_stats).
///
/// Benches and tests use these to *assert* the allocation-free invariants
/// instead of trusting them: the scratch high-water marks bound how large the
/// reusable buffers ever grew (they must match the largest level, not the
/// number of solves), and `waves_crafted` must equal the number of waves in
/// the produced plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanningStats {
    /// Number of per-level MPSP solves performed.
    pub mpsp_solves: u64,
    /// Total bisection iterations across all MPSP solves.
    pub bisection_iterations: u64,
    /// Total waves crafted by the wavefront scheduler.
    pub waves_crafted: u64,
    /// MetaLevels solved fresh (MPSP + wavefront actually ran).
    pub levels_planned: u64,
    /// MetaLevels spliced from the structural plan cache instead of being
    /// re-solved (see [`StructuralPlanCache`](crate::StructuralPlanCache)).
    pub levels_reused: u64,
    /// High-water mark of the MPSP scratch buffer (largest number of
    /// simultaneously active items, i.e. the largest level planned).
    pub mpsp_scratch_high_water: usize,
    /// High-water mark of the wavefront scratch (largest pending set).
    pub wavefront_scratch_high_water: usize,
    /// Session cache telemetry. `cache.bytes` is a point-in-time gauge: the
    /// session's [`planning_stats`](crate::SpindleSession::planning_stats)
    /// snapshot fills it; per-pass stats leave it zero and `merge` keeps the
    /// latest non-zero observation. `cache.evictions` counts over the
    /// session's lifetime; `merge` keeps the max.
    pub cache: CacheTelemetry,
}

impl PlanningStats {
    /// Accumulates another pass's counters into this one.
    pub fn merge(&mut self, other: &PlanningStats) {
        self.mpsp_solves += other.mpsp_solves;
        self.bisection_iterations += other.bisection_iterations;
        self.waves_crafted += other.waves_crafted;
        self.levels_planned += other.levels_planned;
        self.levels_reused += other.levels_reused;
        self.mpsp_scratch_high_water = self
            .mpsp_scratch_high_water
            .max(other.mpsp_scratch_high_water);
        self.wavefront_scratch_high_water = self
            .wavefront_scratch_high_water
            .max(other.wavefront_scratch_high_water);
        if other.cache.bytes != 0 {
            self.cache.bytes = other.cache.bytes;
        }
        self.cache.evictions = self.cache.evictions.max(other.cache.evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ContractedGraph;
    use spindle_cluster::ClusterSpec;
    use spindle_estimator::ScalabilityEstimator;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn arena() -> (MetaOpArena, MetaGraph) {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Audio, Modality::Text], 8);
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                5,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(*audio.last().unwrap(), loss).unwrap();
        let graph = b.build().unwrap();
        let contracted = ContractedGraph::new(&graph);
        let estimator = ScalabilityEstimator::new(&ClusterSpec::homogeneous(1, 8));
        let curves = CurveSet::resolve(&contracted, &estimator).unwrap();
        let arena = MetaOpArena::build(contracted.metagraph(), &curves);
        (arena, contracted.metagraph().clone())
    }

    #[test]
    fn arena_mirrors_metagraph_slots() {
        let (arena, mg) = arena();
        assert_eq!(arena.len(), mg.num_metaops());
        assert!(!arena.is_empty());
        for metaop in mg.metaops() {
            assert_eq!(arena.num_ops(metaop.id()), metaop.num_ops());
            let t1 = arena.t1(metaop.id());
            assert!(t1 > 0.0);
            assert!((arena.curve(metaop.id()).time(1.0) - t1).abs() < 1e-15);
        }
    }

    #[test]
    fn stats_merge_accumulates_and_maxes() {
        let mut a = PlanningStats {
            mpsp_solves: 1,
            bisection_iterations: 10,
            waves_crafted: 3,
            levels_planned: 2,
            levels_reused: 1,
            mpsp_scratch_high_water: 4,
            wavefront_scratch_high_water: 2,
            cache: CacheTelemetry {
                bytes: 0,
                evictions: 2,
            },
        };
        let b = PlanningStats {
            mpsp_solves: 2,
            bisection_iterations: 5,
            waves_crafted: 1,
            levels_planned: 1,
            levels_reused: 3,
            mpsp_scratch_high_water: 3,
            wavefront_scratch_high_water: 6,
            cache: CacheTelemetry {
                bytes: 4096,
                evictions: 1,
            },
        };
        a.merge(&b);
        assert_eq!(a.mpsp_solves, 3);
        assert_eq!(a.bisection_iterations, 15);
        assert_eq!(a.waves_crafted, 4);
        assert_eq!(a.levels_planned, 3);
        assert_eq!(a.levels_reused, 4);
        assert_eq!(a.mpsp_scratch_high_water, 4);
        assert_eq!(a.wavefront_scratch_high_water, 6);
        assert_eq!(a.cache.bytes, 4096, "gauge takes the latest observation");
        assert_eq!(a.cache.evictions, 2, "lifetime counter keeps the max");
    }
}
