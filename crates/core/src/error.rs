//! Error type for the execution planner.

use std::error::Error;
use std::fmt;

use spindle_graph::GraphError;

use crate::MetaOpId;

/// Errors produced while planning or validating an execution plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The underlying computation graph was invalid.
    Graph(GraphError),
    /// The cluster has no devices.
    EmptyCluster,
    /// A MetaOp has no scaling curve / no valid allocation.
    NoCurve(MetaOpId),
    /// A wave allocates more devices than the cluster provides.
    CapacityExceeded {
        /// Index of the offending wave.
        wave: usize,
        /// Devices requested by the wave.
        requested: u32,
        /// Devices available in the cluster.
        available: u32,
    },
    /// Some operators of a MetaOp were never scheduled.
    IncompleteSchedule {
        /// The MetaOp whose layers are missing.
        metaop: MetaOpId,
        /// Layers scheduled across all waves.
        scheduled: u32,
        /// Layers required.
        required: u32,
    },
    /// Waves are not ordered by start time.
    UnorderedWaves {
        /// Index of the first out-of-order wave.
        wave: usize,
    },
    /// A wave entry has no device placement but one was required.
    MissingPlacement {
        /// Index of the offending wave.
        wave: usize,
        /// The MetaOp lacking placement.
        metaop: MetaOpId,
    },
    /// Two entries of the same wave were placed on overlapping devices.
    PlacementOverlap {
        /// Index of the offending wave.
        wave: usize,
    },
    /// A wave entry's estimated per-device memory exceeds the device's
    /// capacity.
    MemoryExceeded {
        /// Index of the offending wave.
        wave: usize,
        /// The MetaOp whose entry overflows.
        metaop: MetaOpId,
        /// Estimated per-device bytes required by the entry.
        required: u64,
        /// Per-device memory capacity, bytes.
        capacity: u64,
    },
    /// Planning panicked — a bug in the planner, not a property of the
    /// input. The session that panicked may hold half-updated state and must
    /// be discarded; the multi-tenant service maps this to a per-tenant
    /// completion error instead of letting the panic take the worker down.
    Panicked {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// A wave entry was placed on a device outside the cluster.
    PlacementOutOfRange {
        /// Index of the offending wave.
        wave: usize,
        /// Raw id of the out-of-range device.
        device: u32,
        /// Devices the cluster actually has.
        available: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Graph(e) => write!(f, "invalid computation graph: {e}"),
            PlanError::EmptyCluster => write!(f, "cluster has no devices"),
            PlanError::NoCurve(m) => write!(f, "no scaling curve for {m}"),
            PlanError::CapacityExceeded {
                wave,
                requested,
                available,
            } => write!(
                f,
                "wave {wave} requests {requested} devices but only {available} exist"
            ),
            PlanError::IncompleteSchedule {
                metaop,
                scheduled,
                required,
            } => write!(f, "{metaop} scheduled {scheduled} of {required} operators"),
            PlanError::UnorderedWaves { wave } => {
                write!(f, "wave {wave} starts before its predecessor")
            }
            PlanError::MissingPlacement { wave, metaop } => {
                write!(f, "wave {wave} entry {metaop} has no device placement")
            }
            PlanError::PlacementOverlap { wave } => {
                write!(f, "wave {wave} places two entries on the same device")
            }
            PlanError::MemoryExceeded {
                wave,
                metaop,
                required,
                capacity,
            } => write!(
                f,
                "wave {wave} entry {metaop} needs {required} bytes/device but only {capacity} fit"
            ),
            PlanError::Panicked { message } => {
                write!(f, "planning panicked: {message}")
            }
            PlanError::PlacementOutOfRange {
                wave,
                device,
                available,
            } => write!(
                f,
                "wave {wave} places an entry on device {device} but the cluster has {available}"
            ),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PlanError {
    fn from(value: GraphError) -> Self {
        PlanError::Graph(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PlanError>();
        let e = PlanError::Graph(GraphError::CycleDetected);
        assert!(e.to_string().contains("cycle"));
        assert!(e.source().is_some());
        assert!(PlanError::EmptyCluster.source().is_none());
        let cap = PlanError::CapacityExceeded {
            wave: 3,
            requested: 9,
            available: 8,
        };
        assert!(cap.to_string().contains("wave 3"));
    }
}
