//! # spindle-core
//!
//! The Spindle execution planner — the primary contribution of the paper.
//!
//! Given the unified computation graph of a multi-task multi-modal workload
//! (`spindle-graph`), a cluster description (`spindle-cluster`) and per-operator
//! scaling curves (`spindle-estimator`), the planner produces an
//! [`ExecutionPlan`]: a sequence of *waves*, each wave being a set of sliced
//! MetaOps that execute concurrently on disjoint, placed device groups with
//! aligned time spans.
//!
//! The pipeline follows §3 of the paper:
//!
//! 1. **Graph contraction** (§3.1, [`MetaGraph::contract`]) fuses chains of
//!    identical operators into [`MetaOp`]s and assigns them to dependency
//!    [`MetaLevel`]s.
//! 2. **Scalability estimation** (§3.2, `spindle-estimator`) produces each
//!    MetaOp's execution-time function `T_m(n)`.
//! 3. **Resource allocation** (§3.3, [`mpsp`] + [`allocator`]) solves the
//!    relaxed malleable-project-scheduling problem by bisection and
//!    discretises the continuous optimum into at most two ASL-tuples per
//!    MetaOp.
//! 4. **Wavefront scheduling** (§3.4, [`wavefront`]) greedily slices the
//!    tuples into compact waves that keep every device busy.
//! 5. **Device placement** (§3.5, [`placement`]) maps each wave entry onto
//!    concrete devices, preferring device islands, prioritising
//!    high-communication flows and balancing memory.
//!
//! ## Example
//!
//! ```
//! use spindle_cluster::ClusterSpec;
//! use spindle_core::Planner;
//! use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny two-tower contrastive task.
//! let mut b = GraphBuilder::new();
//! let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
//! let audio = b.add_op_chain(t, OpKind::Encoder(Modality::Audio), TensorShape::new(8, 229, 768), 6)?;
//! let text = b.add_op_chain(t, OpKind::Encoder(Modality::Text), TensorShape::new(8, 77, 768), 6)?;
//! let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
//! b.add_flow(*audio.last().unwrap(), loss)?;
//! b.add_flow(*text.last().unwrap(), loss)?;
//! let graph = b.build()?;
//!
//! let cluster = ClusterSpec::homogeneous(1, 8);
//! let plan = Planner::new(&graph, &cluster).plan()?;
//! assert!(plan.makespan() > 0.0);
//! assert!(plan.validate().is_ok());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator;
mod error;
mod metagraph;
mod metaop;
pub mod mpsp;
pub mod placement;
mod plan;
mod planner;
pub mod wavefront;

pub use allocator::{AllocationPlan, DiscreteAllocation, MetaOpAllocation};
pub use error::PlanError;
pub use metagraph::{MetaGraph, MetaLevel};
pub use metaop::{MetaOp, MetaOpId};
pub use mpsp::ContinuousSolution;
pub use placement::PlacementStrategy;
pub use plan::{ExecutionPlan, Wave, WaveEntry};
pub use planner::{curves_for, Planner, PlannerConfig};
