//! # spindle-core
//!
//! The Spindle execution planner — the primary contribution of the paper.
//!
//! Given the unified computation graph of a multi-task multi-modal workload
//! (`spindle-graph`), a cluster description (`spindle-cluster`) and per-operator
//! scaling curves (`spindle-estimator`), the planner produces an
//! [`ExecutionPlan`]: a sequence of *waves*, each wave being a set of sliced
//! MetaOps that execute concurrently on disjoint, placed device groups with
//! aligned time spans.
//!
//! The public entry point is the owned, long-lived [`SpindleSession`]: it is
//! bound to one cluster, carries a persistent curve cache, and plans any
//! number of workloads — re-planning a changed task mix reuses every scaling
//! curve fitted before. Internally each plan is an explicit staged
//! [`pipeline`] following §3 of the paper, with typed intermediate artifacts:
//!
//! 1. **Graph contraction** (§3.1, [`ContractedGraph`]) fuses chains of
//!    identical operators into [`MetaOp`]s and assigns them to dependency
//!    [`MetaLevel`]s.
//! 2. **Scalability estimation** (§3.2, [`CurveSet`]) resolves each MetaOp's
//!    execution-time function `T_m(n)` through the session's curve cache.
//! 3. **Resource allocation + wavefront scheduling** (§3.3–§3.4,
//!    [`LevelSchedule`]) solves the relaxed malleable-project-scheduling
//!    problem by bisection, discretises the continuous optimum into at most
//!    two ASL-tuples per MetaOp, and greedily slices the tuples into compact
//!    waves.
//! 4. **Device placement** (§3.5) maps each wave entry onto concrete devices
//!    behind the [`PlacementPolicy`] trait.
//!
//! Spindle and the baseline systems all implement the [`PlanningSystem`]
//! trait, so experiment harnesses drive every system through one interface.
//!
//! ## Example
//!
//! ```
//! use spindle_cluster::ClusterSpec;
//! use spindle_core::SpindleSession;
//! use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny two-tower contrastive task.
//! let mut b = GraphBuilder::new();
//! let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
//! let audio = b.add_op_chain(t, OpKind::Encoder(Modality::Audio), TensorShape::new(8, 229, 768), 6)?;
//! let text = b.add_op_chain(t, OpKind::Encoder(Modality::Text), TensorShape::new(8, 77, 768), 6)?;
//! let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
//! b.add_flow(*audio.last().unwrap(), loss)?;
//! b.add_flow(*text.last().unwrap(), loss)?;
//! let graph = b.build()?;
//!
//! let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
//! let plan = session.plan(&graph)?;
//! assert!(plan.makespan() > 0.0);
//! assert!(plan.validate().is_ok());
//! // Re-planning reuses every cached curve: zero new fits.
//! let fits = session.curve_fits();
//! session.plan(&graph)?;
//! assert_eq!(session.curve_fits(), fits);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator;
pub mod arena;
mod error;
mod metagraph;
mod metaop;
pub mod mpsp;
pub mod pipeline;
pub mod placement;
mod plan;
mod planner;
mod session;
pub mod structural;
mod system;
pub mod wavefront;

pub use allocator::{AllocationPlan, DiscreteAllocation, MetaOpAllocation};
pub use arena::{CacheTelemetry, MetaOpArena, PlanningStats};
pub use error::PlanError;
pub use metagraph::{MetaGraph, MetaLevel};
pub use metaop::{MetaOp, MetaOpId};
pub use mpsp::ContinuousSolution;
pub use pipeline::{ContractedGraph, CurveSet, LevelSchedule};
pub use placement::{
    LocalityPlacement, PlacementCheckpoint, PlacementPolicy, PlacementStrategy, SequentialPlacement,
};
pub use plan::{ExecutionPlan, Wave, WaveEntry};
pub use planner::curves_for;
pub use session::{PlannerConfig, ReplanOutcome, SpindleSession, TopologyImpact};
pub use structural::{
    LevelArtifact, LevelKey, PlacedSkeleton, PlanKey, StructuralCacheStats, StructuralPlanCache,
    StructuralReuse, DEFAULT_STRUCTURAL_CACHE_BUDGET,
};
pub use system::{PlanningSystem, SpindlePlanner};
