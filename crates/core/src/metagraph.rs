//! The contracted MetaGraph and its dependency levels (§3.1).

use std::fmt;

use spindle_graph::{ComputationGraph, OpId};

use crate::{MetaOp, MetaOpId};

/// A dependency level of the MetaGraph: the set of MetaOps whose longest
/// dependency chain from any graph input has the same length. MetaOps within
/// one level have no dependencies among each other, so the per-level
/// sub-problem of the resource allocator needs no dependency constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaLevel {
    /// Index of the level (0 = graph inputs).
    pub index: usize,
    /// MetaOps belonging to the level.
    pub metaops: Vec<MetaOpId>,
}

/// The contracted computation graph `G_M = (V_M, E_M)` whose nodes are
/// [`MetaOp`]s, plus the derived MetaLevel decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaGraph {
    metaops: Vec<MetaOp>,
    edges: Vec<(MetaOpId, MetaOpId)>,
    levels: Vec<MetaLevel>,
    /// Dense `OpId -> MetaOpId` map (operators are densely indexed).
    op_to_metaop: Vec<MetaOpId>,
}

impl MetaGraph {
    /// Contracts a computation graph into a MetaGraph.
    ///
    /// Two adjacent operators `i → j` are fused when the edge is the only
    /// outgoing edge of `i` and the only incoming edge of `j` (direct
    /// predecessor/successor) and both share the same operator type and input
    /// data size — the two criteria of §3.1. Contraction proceeds in
    /// topological order until no more pairs qualify; levels are then assigned
    /// by dependency depth.
    #[must_use]
    pub fn contract(graph: &ComputationGraph) -> Self {
        let order = graph.topological_order();
        // Operators are densely indexed, so the op -> MetaOp map is a plain
        // vector filled in topological order (predecessors are always mapped
        // before their successors).
        let mut op_to_metaop: Vec<MetaOpId> = vec![MetaOpId(0); graph.num_ops()];
        let mut chains: Vec<Vec<OpId>> = Vec::new();

        for &op in &order {
            let operator = graph.op(op);
            // Candidate for fusion into the predecessor's chain?
            let fuse_into = if graph.in_degree(op) == 1 {
                let pred = graph.predecessors(op)[0];
                let pred_op = graph.op(pred);
                if graph.out_degree(pred) == 1 && pred_op.signature() == operator.signature() {
                    Some(op_to_metaop[pred.index()])
                } else {
                    None
                }
            } else {
                None
            };
            match fuse_into {
                Some(mid) => {
                    chains[mid.index()].push(op);
                    op_to_metaop[op.index()] = mid;
                }
                None => {
                    let mid = MetaOpId(chains.len() as u32);
                    chains.push(vec![op]);
                    op_to_metaop[op.index()] = mid;
                }
            }
        }

        let mut metaops: Vec<MetaOp> = chains
            .iter()
            .enumerate()
            .map(|(i, ops)| {
                let representative = graph.op(ops[0]).clone();
                MetaOp::new(MetaOpId(i as u32), ops.clone(), representative)
            })
            .collect();

        // MetaGraph edges: graph edges whose endpoints live in different MetaOps.
        let mut edges: Vec<(MetaOpId, MetaOpId)> = graph
            .edges()
            .iter()
            .filter_map(|&(a, b)| {
                let ma = op_to_metaop[a.index()];
                let mb = op_to_metaop[b.index()];
                (ma != mb).then_some((ma, mb))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();

        // Dependency depth of each MetaOp (longest path), which guarantees
        // that no two MetaOps of the same level depend on each other.
        let n = metaops.len();
        let mut preds: Vec<Vec<MetaOpId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<MetaOpId>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            preds[b.index()].push(a);
            succs[a.index()].push(b);
        }
        let mut depth = vec![0usize; n];
        // MetaOps were created in a topological order of the original graph, so
        // index order is a valid processing order.
        for i in 0..n {
            for &p in &preds[i] {
                depth[i] = depth[i].max(depth[p.index()] + 1);
            }
        }
        for (i, d) in depth.iter().enumerate() {
            metaops[i].set_level(*d);
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (0..=max_depth)
            .map(|lvl| MetaLevel {
                index: lvl,
                metaops: (0..n)
                    .filter(|&i| depth[i] == lvl)
                    .map(|i| MetaOpId(i as u32))
                    .collect(),
            })
            .collect();

        Self {
            metaops,
            edges,
            levels,
            op_to_metaop,
        }
    }

    /// The MetaOps of the graph, indexed by [`MetaOpId`].
    #[must_use]
    pub fn metaops(&self) -> &[MetaOp] {
        &self.metaops
    }

    /// The MetaOp with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn metaop(&self, id: MetaOpId) -> &MetaOp {
        &self.metaops[id.index()]
    }

    /// Number of MetaOps.
    #[must_use]
    pub fn num_metaops(&self) -> usize {
        self.metaops.len()
    }

    /// Data-flow edges between MetaOps.
    #[must_use]
    pub fn edges(&self) -> &[(MetaOpId, MetaOpId)] {
        &self.edges
    }

    /// The dependency levels, in execution order.
    #[must_use]
    pub fn levels(&self) -> &[MetaLevel] {
        &self.levels
    }

    /// The MetaOp that a given original operator was fused into.
    #[must_use]
    pub fn metaop_of(&self, op: OpId) -> Option<MetaOpId> {
        self.op_to_metaop.get(op.index()).copied()
    }

    /// Direct predecessor MetaOps of `id`.
    #[must_use]
    pub fn predecessors(&self, id: MetaOpId) -> Vec<MetaOpId> {
        self.edges
            .iter()
            .filter(|&&(_, b)| b == id)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Direct successor MetaOps of `id`.
    #[must_use]
    pub fn successors(&self, id: MetaOpId) -> Vec<MetaOpId> {
        self.edges
            .iter()
            .filter(|&&(a, _)| a == id)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Total number of original operators represented by the MetaGraph.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.metaops.iter().map(|m| m.num_ops() as usize).sum()
    }
}

impl fmt::Display for MetaGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metagraph: {} metaops over {} levels ({} original ops, {} edges)",
            self.num_metaops(),
            self.levels.len(),
            self.total_ops(),
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    /// The two-task example of Fig. 3: an audio-language task (audio + text
    /// encoders feeding an LM) and a vision-language task (vision + text).
    fn fig3_like_graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let tal = b.add_task("audio-lang", [Modality::Audio, Modality::Text], 8);
        let tvl = b.add_task("vision-lang", [Modality::Vision, Modality::Text], 4);
        // Task AL: 3 audio ops, 2 text ops, 3 LM ops.
        let audio = b
            .add_op_chain(
                tal,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                3,
            )
            .unwrap();
        let text_a = b
            .add_op_chain(
                tal,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                2,
            )
            .unwrap();
        let lm_a = b
            .add_op_chain(tal, OpKind::LmEncoder, TensorShape::new(8, 512, 1024), 3)
            .unwrap();
        b.add_flow(*audio.last().unwrap(), lm_a[0]).unwrap();
        b.add_flow(*text_a.last().unwrap(), lm_a[0]).unwrap();
        // Task VL: 2 text ops, 2+2 vision ops (different resolutions), 3 LM ops.
        let text_v = b
            .add_op_chain(
                tvl,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
                2,
            )
            .unwrap();
        let vis_hi = b
            .add_op_chain(
                tvl,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(4, 257, 768),
                2,
            )
            .unwrap();
        let vis_lo = b
            .add_op_chain(
                tvl,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(4, 197, 768),
                2,
            )
            .unwrap();
        let lm_v = b
            .add_op_chain(tvl, OpKind::LmEncoder, TensorShape::new(4, 512, 1024), 3)
            .unwrap();
        b.add_flow(*vis_hi.last().unwrap(), vis_lo[0]).unwrap();
        b.add_flow(*text_v.last().unwrap(), lm_v[0]).unwrap();
        b.add_flow(*vis_lo.last().unwrap(), lm_v[0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn contraction_produces_seven_metaops_like_fig3() {
        let g = fig3_like_graph();
        let mg = MetaGraph::contract(&g);
        // Fig. 3 contracts this structure into 7 MetaOps.
        assert_eq!(mg.num_metaops(), 7);
        assert_eq!(mg.total_ops(), g.num_ops());
        // Chains keep their lengths.
        let sizes: Vec<u32> = mg.metaops().iter().map(MetaOp::num_ops).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn fusion_requires_identical_signature() {
        let g = fig3_like_graph();
        let mg = MetaGraph::contract(&g);
        // The two vision chains have different input sizes (257 vs 197 tokens),
        // so they are distinct MetaOps even though they form one long chain.
        let vision_metaops: Vec<&MetaOp> = mg
            .metaops()
            .iter()
            .filter(|m| m.representative().kind() == OpKind::Encoder(Modality::Vision))
            .collect();
        assert_eq!(vision_metaops.len(), 2);
    }

    #[test]
    fn levels_have_no_internal_dependencies() {
        let g = fig3_like_graph();
        let mg = MetaGraph::contract(&g);
        for level in mg.levels() {
            for &a in &level.metaops {
                for &b in &level.metaops {
                    if a != b {
                        assert!(!mg.edges().contains(&(a, b)), "{a} -> {b} within level");
                    }
                }
            }
        }
        // Encoders sit below the LM modules.
        assert!(mg.levels().len() >= 2);
    }

    #[test]
    fn edges_connect_encoder_chains_to_lm() {
        let g = fig3_like_graph();
        let mg = MetaGraph::contract(&g);
        assert!(!mg.edges().is_empty());
        for &(a, b) in mg.edges() {
            assert!(mg.metaop(a).level() < mg.metaop(b).level());
        }
        // Predecessor / successor lookups agree with the edge list.
        let (a, b) = mg.edges()[0];
        assert!(mg.successors(a).contains(&b));
        assert!(mg.predecessors(b).contains(&a));
    }

    #[test]
    fn op_to_metaop_is_total() {
        let g = fig3_like_graph();
        let mg = MetaGraph::contract(&g);
        for op in g.ops() {
            let mid = mg.metaop_of(op.id()).expect("every op maps to a metaop");
            assert!(mg.metaop(mid).ops().contains(&op.id()));
        }
        assert!(mg.to_string().contains("metaops"));
    }

    #[test]
    fn single_op_graph_contracts_to_single_metaop() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text], 4);
        b.add_op(t, OpKind::Embedding, TensorShape::new(4, 77, 768))
            .unwrap();
        let g = b.build().unwrap();
        let mg = MetaGraph::contract(&g);
        assert_eq!(mg.num_metaops(), 1);
        assert_eq!(mg.levels().len(), 1);
        assert_eq!(mg.levels()[0].metaops.len(), 1);
    }
}
