//! MetaOps: fused chains of identical operators (§3.1).

use std::fmt;

use spindle_graph::{OpId, Operator, ParamId, TaskId};

/// Identifier of a MetaOp within a [`MetaGraph`](crate::MetaGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MetaOpId(pub u32);

impl MetaOpId {
    /// Raw index of the MetaOp.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MetaOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metaop{}", self.0)
    }
}

/// A MetaOp: a maximal chain of consecutive operators with identical workloads
/// (same operator type and input data size), produced by graph contraction.
///
/// Because all member operators share the same workload, the MetaOp is fully
/// characterised by one *representative* operator and the number of operators
/// it contains (`L_m` in the paper). The planner allocates resources and
/// schedules execution at MetaOp granularity, slicing the `L_m` operators
/// across waves as needed.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaOp {
    id: MetaOpId,
    ops: Vec<OpId>,
    representative: Operator,
    level: usize,
}

impl MetaOp {
    /// Creates a MetaOp from its member operators (in chain order) and a
    /// representative operator describing the per-operator workload.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    #[must_use]
    pub fn new(id: MetaOpId, ops: Vec<OpId>, representative: Operator) -> Self {
        assert!(
            !ops.is_empty(),
            "a MetaOp must contain at least one operator"
        );
        Self {
            id,
            ops,
            representative,
            level: 0,
        }
    }

    /// MetaOp identity.
    #[must_use]
    pub fn id(&self) -> MetaOpId {
        self.id
    }

    /// The member operators, in execution (chain) order.
    #[must_use]
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Number of consecutive operators fused into this MetaOp (`L_m`).
    #[must_use]
    pub fn num_ops(&self) -> u32 {
        self.ops.len() as u32
    }

    /// The representative operator describing the per-operator workload.
    #[must_use]
    pub fn representative(&self) -> &Operator {
        &self.representative
    }

    /// The task that activates this MetaOp.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.representative.task()
    }

    /// The dependency level (MetaLevel index) of this MetaOp.
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    pub(crate) fn set_level(&mut self, level: usize) {
        self.level = level;
    }

    /// All parameter groups touched by the MetaOp's operators. For fused
    /// layer chains each layer typically owns a distinct parameter group; the
    /// representative carries only the first layer's, so this is primarily the
    /// sharing signal used for parameter device groups.
    #[must_use]
    pub fn params(&self) -> &[ParamId] {
        self.representative.params()
    }

    /// Total forward+backward FLOPs of one iteration of the whole MetaOp.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.representative.flops_total() * f64::from(self.num_ops())
    }

    /// First operator of the chain (receives the MetaOp's external inputs).
    #[must_use]
    pub fn first_op(&self) -> OpId {
        self.ops[0]
    }

    /// Last operator of the chain (produces the MetaOp's external outputs).
    #[must_use]
    pub fn last_op(&self) -> OpId {
        *self.ops.last().expect("MetaOps are never empty")
    }
}

impl fmt::Display for MetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} x {} {}]",
            self.id,
            self.num_ops(),
            self.representative.kind(),
            self.representative.input_shape()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{Modality, OpKind, TensorShape};

    fn rep() -> Operator {
        Operator::new(
            OpId(0),
            OpKind::Encoder(Modality::Audio),
            TaskId(1),
            TensorShape::new(8, 229, 768),
        )
        .with_param(ParamId(3))
    }

    #[test]
    fn accessors() {
        let m = MetaOp::new(MetaOpId(2), vec![OpId(0), OpId(1), OpId(2)], rep());
        assert_eq!(m.id(), MetaOpId(2));
        assert_eq!(m.num_ops(), 3);
        assert_eq!(m.task(), TaskId(1));
        assert_eq!(m.first_op(), OpId(0));
        assert_eq!(m.last_op(), OpId(2));
        assert_eq!(m.params(), &[ParamId(3)]);
        assert_eq!(m.level(), 0);
        assert!((m.total_flops() - 3.0 * m.representative().flops_total()).abs() < 1e-6);
        assert!(m.to_string().contains("metaop2"));
    }

    #[test]
    #[should_panic(expected = "at least one operator")]
    fn empty_metaop_panics() {
        let _ = MetaOp::new(MetaOpId(0), vec![], rep());
    }

    #[test]
    fn metaop_id_display() {
        assert_eq!(MetaOpId(7).to_string(), "metaop7");
        assert_eq!(MetaOpId(7).index(), 7);
    }
}
