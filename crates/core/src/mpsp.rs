//! Continuous relaxation of the per-level allocation problem: the malleable
//! project scheduling problem (MPSP), solved by bisection (§3.3, Appendix B).
//!
//! Theorem 1: when every execution-time function `T_m(n)` is positive and
//! non-increasing, the optimum of the continuous problem has all MetaOps start
//! at time zero, run all their operators with a constant (real-valued)
//! allocation `n*_m`, and finish together at the common completion time `C̃*`
//! defined by `T_m(n*_m)·L_m = C̃*` and `Σ n*_m = N`.
//!
//! The bisection itself is allocation-free: active items live in a reusable
//! [`MpspScratch`] buffer with their single-device times hoisted, each
//! iteration sums candidate allocations in place, and the per-MetaOp
//! allocation map of the public [`ContinuousSolution`] is materialised exactly
//! once, at convergence.

use std::collections::BTreeMap;
use std::sync::Arc;

use spindle_estimator::ScalingCurve;

use crate::arena::MetaOpArena;
use crate::MetaOpId;

/// One MetaOp's inputs to the continuous problem.
#[derive(Debug, Clone)]
pub struct MpspItem {
    /// The MetaOp being allocated.
    pub metaop: MetaOpId,
    /// Number of operators in the MetaOp (`L_m`).
    pub num_ops: u32,
    /// Its execution-time function `T_m(n)`.
    pub curve: Arc<ScalingCurve>,
}

/// The continuous optimum of one MetaLevel's allocation problem.
#[derive(Debug, Clone)]
pub struct ContinuousSolution {
    /// The common completion time `C̃*` (theoretical optimum of the level).
    pub optimal_time: f64,
    /// Real-valued device allocation `n*_m` per MetaOp. Values below 1 mean
    /// the MetaOp needs less than one device to finish within `C̃*` (a
    /// "dummy allocation" candidate in the discretisation step).
    pub allocations: BTreeMap<MetaOpId, f64>,
}

/// Default convergence tolerance of the bisection, in seconds.
pub const DEFAULT_EPSILON: f64 = 1e-7;

/// Evaluates the continuous execution-time function at a possibly fractional
/// allocation. Allocations below one device are extrapolated hyperbolically
/// (`T(n) = T(1)/n` for `n < 1`), modelling time-sharing of a single device —
/// this is what allows levels with more MetaOps than devices to remain
/// feasible.
#[must_use]
pub fn continuous_time(curve: &ScalingCurve, n: f64) -> f64 {
    if n >= 1.0 {
        curve.time(n)
    } else {
        curve.time(1.0) / n.max(1e-6)
    }
}

/// Inverse of [`continuous_time`]: the fractional allocation at which one
/// operator of the MetaOp takes `time` seconds.
#[must_use]
pub fn continuous_inverse(curve: &ScalingCurve, time: f64) -> f64 {
    inverse_hoisted(curve, curve.time(1.0), time)
}

/// [`continuous_inverse`] with the single-device time `t1 = curve.time(1.0)`
/// hoisted by the caller — the form the bisection loop uses so it never
/// re-evaluates the fit at `n = 1`.
#[inline]
fn inverse_hoisted(curve: &ScalingCurve, t1: f64, time: f64) -> f64 {
    if time >= t1 {
        // Less than one device suffices.
        (t1 / time).max(1e-6)
    } else {
        curve.inverse(time)
    }
}

/// One active (non-empty) item of a solve, with hoisted constants.
#[derive(Debug, Clone)]
struct ActiveItem {
    metaop: MetaOpId,
    /// `L_m` as a float.
    weight: f64,
    /// Hoisted `curve.time(1.0)`.
    t1: f64,
    curve: Arc<ScalingCurve>,
}

/// Reusable working buffers (and probes) of the bisection solver.
///
/// A scratch can be reused across any number of [`solve_with`] /
/// [`solve_level`] calls; its buffers keep their capacity, so steady-state
/// solves perform no heap allocation. The counters feed
/// [`PlanningStats`](crate::PlanningStats).
#[derive(Debug, Default)]
pub struct MpspScratch {
    active: Vec<ActiveItem>,
    solves: u64,
    iterations: u64,
    high_water: usize,
}

impl MpspScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of solves performed through this scratch.
    #[must_use]
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Total bisection iterations across all solves.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Largest number of simultaneously active items seen — the capacity
    /// bound of the reused buffer.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Runs one bisection over the currently staged items, consuming them.
    fn bisect(&mut self, num_devices: u32, epsilon: f64) -> ContinuousSolution {
        self.solves += 1;
        self.high_water = self.high_water.max(self.active.len());
        if self.active.is_empty() || num_devices == 0 {
            self.active.clear();
            return ContinuousSolution {
                optimal_time: 0.0,
                allocations: BTreeMap::new(),
            };
        }
        let n = f64::from(num_devices);

        // Lower bound: every MetaOp gets the whole cluster (fastest possible);
        // upper bound: MetaOps run one after another on a single device.
        let mut t_min = 0.0_f64;
        let mut t_max = 0.0_f64;
        for item in &self.active {
            t_min = t_min.max(continuous_time(&item.curve, n) * item.weight);
            t_max += item.t1 * item.weight;
        }

        let mut low = t_min;
        let mut high = t_max.max(t_min);
        let eps = epsilon.max(f64::EPSILON);
        while high - low > eps {
            self.iterations += 1;
            let mid = 0.5 * (low + high);
            let mut total = 0.0_f64;
            for item in &self.active {
                total += inverse_hoisted(&item.curve, item.t1, mid / item.weight).min(n);
            }
            if total < n {
                // The cluster is not fully used at this completion time: we
                // can afford to finish faster.
                high = mid;
            } else {
                low = mid;
            }
        }
        let optimal_time = high;
        // The only map built by a solve: the public artifact, materialised
        // once at convergence.
        let allocations = self
            .active
            .iter()
            .map(|item| {
                let per_op = optimal_time / item.weight;
                let alloc = inverse_hoisted(&item.curve, item.t1, per_op).min(n);
                (item.metaop, alloc)
            })
            .collect();
        self.active.clear();
        ContinuousSolution {
            optimal_time,
            allocations,
        }
    }
}

/// Solves the relaxed MPSP for one MetaLevel by bisection search over the
/// common completion time `C̃*` (Alg. 2 of Appendix B).
///
/// `num_devices` is the cluster size `N`. Items with zero operators are
/// ignored. If the level is empty the solution has zero time and no
/// allocations.
#[must_use]
pub fn solve(items: &[MpspItem], num_devices: u32, epsilon: f64) -> ContinuousSolution {
    let mut scratch = MpspScratch::new();
    solve_with(items, num_devices, epsilon, &mut scratch)
}

/// [`solve`] with caller-owned scratch buffers, for allocation-free repeated
/// solves.
#[must_use]
pub fn solve_with(
    items: &[MpspItem],
    num_devices: u32,
    epsilon: f64,
    scratch: &mut MpspScratch,
) -> ContinuousSolution {
    scratch.active.clear();
    for item in items {
        if item.num_ops == 0 {
            continue;
        }
        scratch.active.push(ActiveItem {
            metaop: item.metaop,
            weight: f64::from(item.num_ops),
            t1: item.curve.time(1.0),
            curve: Arc::clone(&item.curve),
        });
    }
    scratch.bisect(num_devices, epsilon)
}

/// Solves one MetaLevel straight from the dense [`MetaOpArena`] — no
/// intermediate `MpspItem` vector, and the hoisted `T(1)` comes from the
/// arena's per-plan cache.
#[must_use]
pub fn solve_level(
    arena: &MetaOpArena,
    metaops: &[MetaOpId],
    num_devices: u32,
    epsilon: f64,
    scratch: &mut MpspScratch,
) -> ContinuousSolution {
    scratch.active.clear();
    for &id in metaops {
        let num_ops = arena.num_ops(id);
        if num_ops == 0 {
            continue;
        }
        scratch.active.push(ActiveItem {
            metaop: id,
            weight: f64::from(num_ops),
            t1: arena.t1(id),
            curve: Arc::clone(arena.curve(id)),
        });
    }
    scratch.bisect(num_devices, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_estimator::test_util::{linear_curve, saturating_curve};

    fn item(id: u32, num_ops: u32, curve: Arc<ScalingCurve>) -> MpspItem {
        MpspItem {
            metaop: MetaOpId(id),
            num_ops,
            curve,
        }
    }

    #[test]
    fn equal_workloads_split_evenly() {
        let items = vec![
            item(0, 10, linear_curve(1.0, 16)),
            item(1, 10, linear_curve(1.0, 16)),
        ];
        let sol = solve(&items, 16, DEFAULT_EPSILON);
        let a0 = sol.allocations[&MetaOpId(0)];
        let a1 = sol.allocations[&MetaOpId(1)];
        assert!((a0 - 8.0).abs() < 0.05, "a0 = {a0}");
        assert!((a1 - 8.0).abs() < 0.05);
        // C* = T(8) * 10 = 10/8.
        assert!((sol.optimal_time - 1.25).abs() < 0.01);
    }

    #[test]
    fn heavier_workload_gets_more_devices() {
        let items = vec![
            item(0, 30, linear_curve(1.0, 32)),
            item(1, 10, linear_curve(1.0, 32)),
        ];
        let sol = solve(&items, 16, DEFAULT_EPSILON);
        assert!(sol.allocations[&MetaOpId(0)] > 2.5 * sol.allocations[&MetaOpId(1)]);
    }

    #[test]
    fn all_metaops_finish_together_at_optimum() {
        let items = vec![
            item(0, 12, linear_curve(2.0, 32)),
            item(1, 6, saturating_curve(1.0, 32)),
            item(2, 20, linear_curve(0.5, 32)),
        ];
        let sol = solve(&items, 32, DEFAULT_EPSILON);
        for it in &items {
            let n = sol.allocations[&it.metaop];
            let finish = continuous_time(&it.curve, n) * f64::from(it.num_ops);
            // Items pinned at the cluster bound may finish early; all others
            // must finish exactly at C*.
            assert!(
                finish <= sol.optimal_time + 1e-3,
                "{} finishes at {finish} > {}",
                it.metaop,
                sol.optimal_time
            );
        }
        let total: f64 = sol.allocations.values().sum();
        assert!(total <= 32.0 + 1e-6);
    }

    #[test]
    fn poor_scalability_caps_useful_allocation() {
        let items = vec![
            item(0, 10, saturating_curve(1.0, 32)),
            item(1, 10, linear_curve(1.0, 32)),
        ];
        let sol = solve(&items, 32, DEFAULT_EPSILON);
        // The saturating MetaOp gains nothing beyond 2 devices, so it must not
        // hoard more than that even though the cluster has 32; the level's
        // optimum is pinned by its floor of T(2)·L = 5.
        assert!(sol.allocations[&MetaOpId(0)] <= 2.0 + 1e-6);
        assert!((sol.optimal_time - 5.0).abs() < 0.01);
        let total: f64 = sol.allocations.values().sum();
        assert!(total <= 32.0 + 1e-6);
    }

    #[test]
    fn more_metaops_than_devices_yields_fractional_allocations() {
        let items: Vec<MpspItem> = (0..8).map(|i| item(i, 4, linear_curve(1.0, 4))).collect();
        let sol = solve(&items, 4, DEFAULT_EPSILON);
        let total: f64 = sol.allocations.values().sum();
        assert!((total - 4.0).abs() < 0.1);
        assert!(sol.allocations.values().all(|&a| a < 1.0 + 1e-9));
        assert!(sol.optimal_time > 0.0);
    }

    #[test]
    fn empty_level_is_trivial() {
        let sol = solve(&[], 8, DEFAULT_EPSILON);
        assert_eq!(sol.optimal_time, 0.0);
        assert!(sol.allocations.is_empty());
    }

    #[test]
    fn single_metaop_takes_whole_cluster_or_its_max() {
        let items = vec![item(0, 10, linear_curve(1.0, 8))];
        let sol = solve(&items, 8, DEFAULT_EPSILON);
        let a = sol.allocations[&MetaOpId(0)];
        assert!(a >= 7.9, "allocation {a}");
    }

    #[test]
    fn continuous_time_extends_below_one_device() {
        let c = linear_curve(1.0, 8);
        assert!((continuous_time(&c, 0.5) - 2.0).abs() < 1e-9);
        assert!((continuous_inverse(&c, 2.0) - 0.5).abs() < 1e-9);
        assert!((continuous_inverse(&c, 0.25) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn reused_scratch_matches_fresh_solves_and_counts_work() {
        let items_a = vec![
            item(0, 12, linear_curve(2.0, 16)),
            item(1, 6, saturating_curve(1.0, 16)),
        ];
        let items_b = vec![item(2, 20, linear_curve(0.5, 16))];
        let mut scratch = MpspScratch::new();
        let a = solve_with(&items_a, 16, DEFAULT_EPSILON, &mut scratch);
        let b = solve_with(&items_b, 16, DEFAULT_EPSILON, &mut scratch);
        let a_fresh = solve(&items_a, 16, DEFAULT_EPSILON);
        let b_fresh = solve(&items_b, 16, DEFAULT_EPSILON);
        assert_eq!(a.allocations, a_fresh.allocations);
        assert_eq!(b.allocations, b_fresh.allocations);
        assert_eq!(a.optimal_time, a_fresh.optimal_time);
        assert_eq!(b.optimal_time, b_fresh.optimal_time);
        assert_eq!(scratch.solves(), 2);
        assert!(scratch.iterations() > 0);
        // High water equals the larger staging set, not the sum: the buffer
        // was reused, not regrown.
        assert_eq!(scratch.high_water(), 2);
    }
}
