//! The staged planning pipeline with typed intermediate artifacts.
//!
//! [`SpindleSession::plan`](crate::SpindleSession::plan) is a composition of
//! four explicit stages, each producing a typed artifact that can be built,
//! inspected and tested independently:
//!
//! 1. [`ContractedGraph::new`] — graph contraction (§3.1);
//! 2. [`CurveSet::resolve`] — scalability estimation (§3.2), served from the
//!    session's persistent curve cache;
//! 3. [`LevelSchedule::build`] — MPSP resource allocation + wavefront
//!    scheduling (§3.3–§3.4);
//! 4. [`LevelSchedule::place`] — device placement (§3.5) behind a
//!    [`PlacementPolicy`].
//!
//! The split exists for the dynamic re-planning loop: a session re-planning a
//! mutated workload re-runs stages 1 and 3–4 but stage 2 degenerates to cache
//! lookups for every operator signature seen before.

use std::sync::Arc;
use std::time::Duration;

use spindle_cluster::ClusterSpec;
use spindle_estimator::{ScalabilityEstimator, ScalingCurve};
use spindle_graph::ComputationGraph;

use crate::arena::{MetaOpArena, PlanningStats};
use crate::mpsp::{self, MpspItem, MpspScratch};
use crate::structural::{LevelArtifact, LevelKey, StructuralPlanCache};
use crate::wavefront::{CurveMap, WavefrontScratch};
use crate::{
    allocator, ExecutionPlan, MetaGraph, MetaOpId, PlacementCheckpoint, PlacementPolicy,
    PlacementStrategy, PlanError, Wave,
};

/// Stage-1 artifact: the contracted MetaGraph of a workload, behind an
/// [`Arc`] so plans (and cached plan skeletons) share it without deep copies.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractedGraph {
    metagraph: Arc<MetaGraph>,
}

impl ContractedGraph {
    /// Contracts a computation graph (§3.1).
    #[must_use]
    pub fn new(graph: &ComputationGraph) -> Self {
        Self {
            metagraph: Arc::new(MetaGraph::contract(graph)),
        }
    }

    /// The contracted MetaGraph.
    #[must_use]
    pub fn metagraph(&self) -> &MetaGraph {
        &self.metagraph
    }

    /// A shareable handle to the MetaGraph.
    #[must_use]
    pub fn metagraph_handle(&self) -> Arc<MetaGraph> {
        Arc::clone(&self.metagraph)
    }

    /// Consumes the artifact, yielding the (shared) MetaGraph.
    #[must_use]
    pub fn into_metagraph(self) -> Arc<MetaGraph> {
        self.metagraph
    }
}

impl From<MetaGraph> for ContractedGraph {
    fn from(metagraph: MetaGraph) -> Self {
        Self {
            metagraph: Arc::new(metagraph),
        }
    }
}

impl From<Arc<MetaGraph>> for ContractedGraph {
    fn from(metagraph: Arc<MetaGraph>) -> Self {
        Self { metagraph }
    }
}

/// Stage-2 artifact: one scaling curve per MetaOp of a [`ContractedGraph`].
#[derive(Debug, Clone, Default)]
pub struct CurveSet {
    curves: CurveMap,
}

impl CurveSet {
    /// Resolves the curve of every MetaOp against `estimator`. Signatures the
    /// estimator has already fitted are served from its cache.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoCurve`] for MetaOps whose representative cannot
    /// be profiled.
    pub fn resolve(
        contracted: &ContractedGraph,
        estimator: &ScalabilityEstimator,
    ) -> Result<Self, PlanError> {
        let mut curves = CurveMap::new();
        for metaop in contracted.metagraph().metaops() {
            let curve = estimator
                .try_curve_for(metaop.representative())
                .map_err(|_| PlanError::NoCurve(metaop.id()))?;
            curves.insert(metaop.id(), curve);
        }
        Ok(Self { curves })
    }

    /// The curve of a MetaOp, if resolved.
    #[must_use]
    pub fn get(&self, id: MetaOpId) -> Option<&Arc<ScalingCurve>> {
        self.curves.get(&id)
    }

    /// Number of resolved curves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// The underlying per-MetaOp curve map.
    #[must_use]
    pub fn as_map(&self) -> &CurveMap {
        &self.curves
    }

    /// Consumes the artifact, yielding the curve map.
    #[must_use]
    pub fn into_map(self) -> CurveMap {
        self.curves
    }
}

impl From<CurveMap> for CurveSet {
    fn from(curves: CurveMap) -> Self {
        Self { curves }
    }
}

/// Stage-3 artifact: the unplaced wave schedule of every MetaLevel, plus the
/// theoretical optimum `Σ C̃*` of the continuous relaxation.
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    waves: Vec<Wave>,
    theoretical_optimum: f64,
    num_devices: u32,
    stats: PlanningStats,
}

impl LevelSchedule {
    /// Allocates and schedules every MetaLevel (§3.3 + §3.4) and attaches
    /// per-entry memory estimates for the placement stage.
    ///
    /// All per-level working state lives in a dense [`MetaOpArena`] plus
    /// reusable MPSP/wavefront scratch buffers: steady-state levels allocate
    /// nothing beyond the produced wave artifacts.
    #[must_use]
    pub fn build(
        contracted: &ContractedGraph,
        curves: &CurveSet,
        estimator: &ScalabilityEstimator,
        num_devices: u32,
        epsilon: f64,
    ) -> Self {
        Self::build_with_cache(contracted, curves, estimator, num_devices, epsilon, None)
    }

    /// [`build`](Self::build) consulting a [`StructuralPlanCache`]: levels
    /// whose [`LevelKey`] hits the cache are *spliced* from the cached
    /// artifact (bit-identical to a fresh solve) instead of re-running MPSP,
    /// discretisation, wavefront scheduling and memory estimation; dirty
    /// levels are solved as usual and their artifacts inserted for the next
    /// re-plan. `stats().levels_reused` reports how many levels were spliced.
    #[must_use]
    pub fn build_with_cache(
        contracted: &ContractedGraph,
        curves: &CurveSet,
        estimator: &ScalabilityEstimator,
        num_devices: u32,
        epsilon: f64,
        cache: Option<&StructuralPlanCache>,
    ) -> Self {
        let metagraph = contracted.metagraph();
        let arena = MetaOpArena::build(metagraph, curves);
        let mut mpsp_scratch = MpspScratch::new();
        let mut wavefront_scratch = WavefrontScratch::new();
        let mut waves: Vec<Wave> = Vec::new();
        let mut theoretical_optimum = 0.0;
        let mut now = 0.0;
        let mut levels_planned = 0u64;
        let mut levels_reused = 0u64;
        // Per-entry memory estimates feed the placement's memory balancing.
        // Entries of one MetaOp recur across waves at the same allocation, so
        // memoise per (metaop, devices) to avoid re-running the model sweep.
        let mut memo: Vec<Vec<(u32, u64)>> = vec![Vec::new(); arena.len()];
        for level in metagraph.levels() {
            let key = cache.map(|_| LevelKey::of(metagraph, level, num_devices));
            if let Some(artifact) = key
                .as_ref()
                .and_then(|k| cache.expect("key implies cache").level(k))
            {
                now = artifact.splice(level, now, waves.len(), &mut waves);
                theoretical_optimum += artifact.optimal_time();
                levels_reused += 1;
                continue;
            }
            levels_planned += 1;
            let solution = mpsp::solve_level(
                &arena,
                &level.metaops,
                num_devices,
                epsilon,
                &mut mpsp_scratch,
            );
            theoretical_optimum += solution.optimal_time;
            let alloc_plan = allocator::discretize_level(&solution, &arena, &level.metaops);
            let (mut level_waves, end) = crate::wavefront::schedule_level_dense(
                &alloc_plan,
                &arena,
                num_devices,
                level.index,
                now,
                waves.len(),
                &mut wavefront_scratch,
            );
            for wave in &mut level_waves {
                for entry in &mut wave.entries {
                    let known = memo[entry.metaop.index()]
                        .iter()
                        .find(|&&(n, _)| n == entry.devices)
                        .map(|&(_, bytes)| bytes);
                    let per_op = known.unwrap_or_else(|| {
                        let rep = metagraph.metaop(entry.metaop).representative();
                        let bytes = estimator.memory_bytes(rep, entry.devices);
                        memo[entry.metaop.index()].push((entry.devices, bytes));
                        bytes
                    });
                    entry.memory_per_device = per_op.saturating_mul(u64::from(entry.layers));
                }
            }
            if let (Some(c), Some(k)) = (cache, key) {
                c.insert_level(
                    k,
                    LevelArtifact::capture(level, solution.optimal_time, &level_waves),
                );
            }
            waves.extend(level_waves);
            now = end;
        }

        let stats = PlanningStats {
            mpsp_solves: mpsp_scratch.solves(),
            bisection_iterations: mpsp_scratch.iterations(),
            waves_crafted: wavefront_scratch.waves_crafted(),
            levels_planned,
            levels_reused,
            mpsp_scratch_high_water: mpsp_scratch.high_water(),
            wavefront_scratch_high_water: wavefront_scratch.high_water(),
            // Session-level gauges; per-pass stats leave them empty.
            cache: crate::CacheTelemetry::default(),
        };
        Self {
            waves,
            theoretical_optimum,
            num_devices,
            stats,
        }
    }

    /// Hot-path counters of the pass that built this schedule.
    #[must_use]
    pub fn stats(&self) -> PlanningStats {
        self.stats
    }

    /// The scheduled waves, in execution order (unplaced).
    #[must_use]
    pub fn waves(&self) -> &[Wave] {
        &self.waves
    }

    /// The theoretical optimum `Σ C̃*` accumulated over all levels.
    #[must_use]
    pub fn theoretical_optimum(&self) -> f64 {
        self.theoretical_optimum
    }

    /// Cluster size the schedule was built for.
    #[must_use]
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// End time of the last wave.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.waves.last().map_or(0.0, Wave::end)
    }

    /// Decomposes the schedule into its raw waves and theoretical optimum —
    /// the partial re-plan path consumes these directly, splicing a subset of
    /// the waves behind a reused placed prefix.
    pub(crate) fn into_parts(self) -> (Vec<Wave>, f64) {
        (self.waves, self.theoretical_optimum)
    }

    /// Stage 4: assigns concrete devices to every wave entry through `policy`
    /// and assembles the final [`ExecutionPlan`].
    ///
    /// `planning_time` is the wall-clock time attributed to planning so far
    /// (sessions pass their pipeline timer; standalone callers may pass
    /// [`Duration::ZERO`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::CapacityExceeded`] if a wave requests more devices
    /// than the cluster provides.
    pub fn place(
        self,
        contracted: &ContractedGraph,
        cluster: &ClusterSpec,
        policy: &dyn PlacementPolicy,
        planning_time: Duration,
    ) -> Result<ExecutionPlan, PlanError> {
        let mut plan = ExecutionPlan::new(
            self.waves,
            contracted.metagraph_handle(),
            self.num_devices,
            self.theoretical_optimum,
            planning_time,
        );
        policy.place(&mut plan, cluster)?;
        plan.set_device_space(cluster.device_space() as u32);
        Ok(plan)
    }

    /// [`place`](Self::place) for the locality strategy, additionally
    /// snapshotting the placement pass's state after every level — the
    /// [`PlacementCheckpoint`]s that make migration-aware partial re-planning
    /// possible after device churn (one checkpoint per level, in level
    /// order). Strategies other than [`PlacementStrategy::Locality`] carry no
    /// cross-wave state, so they return an empty checkpoint list.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::CapacityExceeded`] if a wave requests more devices
    /// than the cluster provides.
    pub fn place_checkpointed(
        self,
        contracted: &ContractedGraph,
        cluster: &ClusterSpec,
        strategy: PlacementStrategy,
        planning_time: Duration,
    ) -> Result<(ExecutionPlan, Vec<PlacementCheckpoint>), PlanError> {
        let mut plan = ExecutionPlan::new(
            self.waves,
            contracted.metagraph_handle(),
            self.num_devices,
            self.theoretical_optimum,
            planning_time,
        );
        crate::placement::check_capacity(&plan, cluster)?;
        let checkpoints = match strategy {
            PlacementStrategy::Locality => {
                crate::placement::place_locality_checkpointed(&mut plan, cluster)
            }
            PlacementStrategy::Sequential => {
                strategy.policy().place(&mut plan, cluster)?;
                Vec::new()
            }
        };
        plan.set_device_space(cluster.device_space() as u32);
        Ok((plan, checkpoints))
    }
}

/// Computes the theoretical optimum `Σ C̃*` directly from the per-level MPSP
/// solutions, without discretisation, wavefront scheduling or placement — the
/// cheap path behind [`SpindleSession::theoretical_optimum`](crate::SpindleSession::theoretical_optimum).
#[must_use]
pub fn theoretical_optimum(
    contracted: &ContractedGraph,
    curves: &CurveSet,
    num_devices: u32,
    epsilon: f64,
) -> f64 {
    let metagraph = contracted.metagraph();
    let arena = MetaOpArena::build(metagraph, curves);
    let mut scratch = MpspScratch::new();
    metagraph
        .levels()
        .iter()
        .map(|level| {
            mpsp::solve_level(&arena, &level.metaops, num_devices, epsilon, &mut scratch)
                .optimal_time
        })
        .sum()
}

/// Builds the [`MpspItem`]s of one MetaLevel — the map-based form consumed by
/// the standalone [`mpsp::solve`] entry point (benches, tests, baselines).
/// The pipeline itself goes through [`MetaOpArena`] instead.
#[must_use]
pub fn level_items(
    metagraph: &MetaGraph,
    metaops: &[MetaOpId],
    curves: &CurveSet,
) -> Vec<MpspItem> {
    metaops
        .iter()
        .map(|&id| MpspItem {
            metaop: id,
            num_ops: metagraph.metaop(id).num_ops(),
            curve: Arc::clone(
                curves
                    .get(id)
                    .expect("CurveSet::resolve covers every MetaOp of the ContractedGraph"),
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlacementStrategy, SpindleSession};
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("al", [Modality::Audio, Modality::Text], 8);
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                6,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                6,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(*audio.last().unwrap(), loss).unwrap();
        b.add_flow(*text.last().unwrap(), loss).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stages_compose_into_a_valid_plan() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let estimator = ScalabilityEstimator::new(&cluster);

        let contracted = ContractedGraph::new(&graph);
        assert_eq!(contracted.metagraph().total_ops(), graph.num_ops());

        let curves = CurveSet::resolve(&contracted, &estimator).unwrap();
        assert_eq!(curves.len(), contracted.metagraph().num_metaops());
        assert!(!curves.is_empty());

        let schedule =
            LevelSchedule::build(&contracted, &curves, &estimator, 8, mpsp::DEFAULT_EPSILON);
        assert!(schedule.makespan() > 0.0);
        assert!(schedule.theoretical_optimum() > 0.0);
        assert_eq!(schedule.num_devices(), 8);
        assert!(schedule.waves().iter().all(|w| w.devices_used() <= 8));

        let plan = schedule
            .place(
                &contracted,
                &cluster,
                PlacementStrategy::Locality.policy(),
                Duration::ZERO,
            )
            .unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
    }

    #[test]
    fn staged_pipeline_matches_session_plan() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let mut session = SpindleSession::new(cluster.clone());
        let via_session = session.plan(&graph).unwrap();

        let estimator = ScalabilityEstimator::new(&cluster);
        let contracted = ContractedGraph::new(&graph);
        let curves = CurveSet::resolve(&contracted, &estimator).unwrap();
        let schedule =
            LevelSchedule::build(&contracted, &curves, &estimator, 8, mpsp::DEFAULT_EPSILON);
        let by_hand = schedule
            .place(
                &contracted,
                &cluster,
                PlacementStrategy::Locality.policy(),
                Duration::ZERO,
            )
            .unwrap();

        assert_eq!(via_session.waves(), by_hand.waves());
        assert!((via_session.theoretical_optimum() - by_hand.theoretical_optimum()).abs() < 1e-12);
    }

    #[test]
    fn direct_theoretical_optimum_matches_full_schedule() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let estimator = ScalabilityEstimator::new(&cluster);
        let contracted = ContractedGraph::new(&graph);
        let curves = CurveSet::resolve(&contracted, &estimator).unwrap();
        let direct = theoretical_optimum(&contracted, &curves, 8, mpsp::DEFAULT_EPSILON);
        let schedule =
            LevelSchedule::build(&contracted, &curves, &estimator, 8, mpsp::DEFAULT_EPSILON);
        assert!((direct - schedule.theoretical_optimum()).abs() < 1e-12);
        assert!(direct > 0.0);
    }

    #[test]
    fn artifacts_convert_to_and_from_raw_parts() {
        let graph = workload();
        let contracted = ContractedGraph::new(&graph);
        let roundtrip = ContractedGraph::from(contracted.clone().into_metagraph());
        assert_eq!(contracted, roundtrip);

        let cluster = ClusterSpec::homogeneous(1, 8);
        let estimator = ScalabilityEstimator::new(&cluster);
        let curves = CurveSet::resolve(&contracted, &estimator).unwrap();
        let map = curves.clone().into_map();
        assert_eq!(CurveSet::from(map).len(), curves.len());
    }
}
