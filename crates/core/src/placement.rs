//! Device placement (§3.5): mapping wave entries onto concrete devices.
//!
//! Three guidelines steer placement:
//!
//! 1. **Intra-device-island placement** — keep each entry (and the data flows
//!    it participates in) inside one NVLink island whenever possible.
//! 2. **Prioritising high communication workloads** — entries moving the most
//!    data get first pick of the best-connected devices.
//! 3. **Device memory balance** — entries prefer devices with the most free
//!    memory, and an entry that would overflow a device falls back to a
//!    memory-first assignment (the paper's "alternative placements with
//!    sub-optimal communication costs and better memory balance").

use spindle_cluster::{ClusterSpec, DeviceGroup, DeviceId};

use crate::{ExecutionPlan, MetaOpId, PlanError};

/// A device-placement policy: maps every wave entry of a plan onto concrete
/// devices.
///
/// New placement strategies implement this trait instead of touching the
/// planner core — [`SpindleSession`](crate::SpindleSession) invokes whatever
/// policy its configuration selects after wavefront scheduling. Implementors
/// must place *every* entry of *every* wave, keeping the entries of each wave
/// on disjoint devices ([`ExecutionPlan::validate`] checks this).
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Human-readable name of the policy.
    fn name(&self) -> &'static str;

    /// Assigns concrete devices to every wave entry of `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::CapacityExceeded`] if some wave requests more
    /// devices than the cluster provides.
    fn place(&self, plan: &mut ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError>;
}

/// The locality-, communication- and memory-aware policy of §3.5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityPlacement;

impl PlacementPolicy for LocalityPlacement {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn place(&self, plan: &mut ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError> {
        check_capacity(plan, cluster)?;
        place_locality(plan, cluster);
        Ok(())
    }
}

/// A naïve policy that assigns each entry consecutive devices starting from
/// device 0, ignoring locality — the ablation baseline of Fig. 10
/// ("Spindle w/o DP", i.e. without the device-placement mechanism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialPlacement;

impl PlacementPolicy for SequentialPlacement {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn place(&self, plan: &mut ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError> {
        check_capacity(plan, cluster)?;
        place_sequential(plan);
        Ok(())
    }
}

/// The placement strategy to apply to a plan — a compact, copyable selector
/// over the built-in [`PlacementPolicy`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementStrategy {
    /// The locality-, communication- and memory-aware strategy of §3.5
    /// ([`LocalityPlacement`]).
    #[default]
    Locality,
    /// Consecutive-device placement ignoring locality
    /// ([`SequentialPlacement`]).
    Sequential,
}

impl PlacementStrategy {
    /// The policy implementing this strategy.
    #[must_use]
    pub fn policy(self) -> &'static dyn PlacementPolicy {
        match self {
            PlacementStrategy::Locality => &LocalityPlacement,
            PlacementStrategy::Sequential => &SequentialPlacement,
        }
    }
}

/// Assigns concrete devices to every wave entry of `plan`.
///
/// # Errors
///
/// Returns [`PlanError::CapacityExceeded`] if some wave requests more devices
/// than the cluster provides.
pub fn place(
    plan: &mut ExecutionPlan,
    cluster: &ClusterSpec,
    strategy: PlacementStrategy,
) -> Result<(), PlanError> {
    strategy.policy().place(plan, cluster)
}

/// Shared precondition of every built-in policy: no wave may request more
/// devices than the cluster provides.
fn check_capacity(plan: &ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError> {
    let total_devices = cluster.num_devices() as u32;
    for wave in plan.waves() {
        if wave.devices_used() > total_devices {
            return Err(PlanError::CapacityExceeded {
                wave: wave.index,
                requested: wave.devices_used(),
                available: total_devices,
            });
        }
    }
    Ok(())
}

/// Naïve consecutive-device placement.
fn place_sequential(plan: &mut ExecutionPlan) {
    for wave in plan.waves_mut() {
        let mut next = 0u32;
        for entry in &mut wave.entries {
            entry.placement = Some(DeviceGroup::contiguous(
                DeviceId(next),
                entry.devices as usize,
            ));
            next += entry.devices;
        }
    }
}

/// Locality-, communication- and memory-aware placement.
///
/// All working state is dense and reused across waves: device sets are
/// `Vec`-indexed by `DeviceId`, per-MetaOp state by `MetaOpId`, and the
/// MetaGraph adjacency is extracted once up front instead of being re-scanned
/// (and re-allocated) per entry.
fn place_locality(plan: &mut ExecutionPlan, cluster: &ClusterSpec) {
    let islands = cluster.islands();
    let capacity = cluster.device_memory_bytes();
    let num_devices = cluster.num_devices();
    let num_metaops = plan.metagraph().num_metaops();

    // Dense adjacency and communication volume of each MetaOp: bytes it
    // receives plus bytes it sends along MetaGraph edges (guides guideline 2).
    // Extracted before the placement loop so the MetaGraph is never cloned.
    let mut preds: Vec<Vec<MetaOpId>> = vec![Vec::new(); num_metaops];
    let mut succs: Vec<Vec<MetaOpId>> = vec![Vec::new(); num_metaops];
    for &(a, b) in plan.metagraph().edges() {
        preds[b.index()].push(a);
        succs[a.index()].push(b);
    }
    let mut volume: Vec<u64> = vec![0; num_metaops];
    for metaop in plan.metagraph().metaops() {
        let i = metaop.id().index();
        let incoming: u64 = preds[i]
            .iter()
            .map(|&p| plan.metagraph().metaop(p).representative().output_bytes())
            .sum();
        let outgoing = metaop.representative().output_bytes() * succs[i].len() as u64;
        volume[i] = incoming + outgoing;
    }

    let mut memory_used: Vec<u64> = vec![0; num_devices];
    let mut resident: Vec<bool> = vec![false; num_metaops * num_devices];
    let mut last_placement: Vec<Option<DeviceGroup>> = vec![None; num_metaops];
    let mut free: Vec<bool> = vec![false; num_devices];
    let mut affinity: Vec<i64> = vec![0; num_devices];
    let mut order: Vec<usize> = Vec::new();
    let mut island_order: Vec<usize> = Vec::new();
    let mut candidates: Vec<DeviceId> = Vec::new();
    let mut chosen: Vec<DeviceId> = Vec::new();

    for wave in plan.waves_mut() {
        free.fill(true);
        // Guideline 2: place the most communication-intensive entries first.
        order.clear();
        order.extend(0..wave.entries.len());
        order.sort_by_key(|&i| std::cmp::Reverse(volume[wave.entries[i].metaop.index()]));

        for &idx in order.iter() {
            let entry = &wave.entries[idx];
            let needed = (entry.devices as usize).min(num_devices);
            // Affinity of each device for this entry.
            affinity.fill(0);
            let mark = |group: Option<&DeviceGroup>, weight: i64, affinity: &mut Vec<i64>| {
                if let Some(g) = group {
                    for d in g.iter() {
                        affinity[d.index()] += weight;
                    }
                }
            };
            mark(
                last_placement[entry.metaop.index()].as_ref(),
                4,
                &mut affinity,
            );
            for &pred in &preds[entry.metaop.index()] {
                mark(last_placement[pred.index()].as_ref(), 2, &mut affinity);
            }
            // Sibling affinity: co-locate with MetaOps that feed the same
            // successor, so the successor's inputs end up on one island.
            for &succ in &succs[entry.metaop.index()] {
                for &sibling in &preds[succ.index()] {
                    if sibling != entry.metaop {
                        mark(last_placement[sibling.index()].as_ref(), 1, &mut affinity);
                    }
                }
            }

            // Guideline 1: choose islands first, preferring islands with
            // enough free devices, high affinity and plenty of free memory.
            island_order.clear();
            island_order.extend(0..islands.len());
            island_order.sort_by_key(|&k| {
                let island = &islands[k];
                let mut free_count = 0usize;
                let mut free_mem = 0u64;
                // Affinity counts every device of the island (even occupied
                // ones): being on the same island as a producer is what makes
                // the data flow cheap, regardless of which sibling occupies it.
                let mut aff = 0i64;
                for d in island.devices.iter() {
                    aff += affinity[d.index()];
                    if free[d.index()] {
                        free_count += 1;
                        free_mem += capacity.saturating_sub(memory_used[d.index()]);
                    }
                }
                let fits = free_count >= needed;
                (
                    std::cmp::Reverse(fits),
                    std::cmp::Reverse(aff),
                    std::cmp::Reverse(free_mem),
                )
            });

            chosen.clear();
            for &k in &island_order {
                if chosen.len() >= needed {
                    break;
                }
                candidates.clear();
                candidates.extend(islands[k].devices.iter().filter(|d| free[d.index()]));
                // Guideline 3 tie-break: most affine, then most free memory.
                candidates.sort_by_key(|d| {
                    (
                        std::cmp::Reverse(affinity[d.index()]),
                        memory_used[d.index()],
                        d.0,
                    )
                });
                for &d in candidates.iter() {
                    if chosen.len() >= needed {
                        break;
                    }
                    chosen.push(d);
                }
            }

            // Memory-balance fallback: if any chosen device would exceed its
            // capacity, redo the choice ordering devices purely by free memory.
            let per_device = wave.entries[idx].memory_per_device;
            let would_overflow = chosen
                .iter()
                .any(|d| memory_used[d.index()] + per_device > capacity);
            if would_overflow {
                candidates.clear();
                candidates.extend(
                    (0..num_devices)
                        .filter(|&i| free[i])
                        .map(|i| DeviceId(i as u32)),
                );
                candidates.sort_by_key(|d| (memory_used[d.index()], d.0));
                chosen.clear();
                chosen.extend(candidates.iter().take(needed));
            }

            let metaop = wave.entries[idx].metaop;
            for &d in &chosen {
                free[d.index()] = false;
                let slot = metaop.index() * num_devices + d.index();
                if !resident[slot] {
                    resident[slot] = true;
                    memory_used[d.index()] = memory_used[d.index()].saturating_add(per_device);
                }
            }
            let group: DeviceGroup = chosen.iter().copied().collect();
            last_placement[metaop.index()] = Some(group.clone());
            wave.entries[idx].placement = Some(group);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetaGraph, Wave, WaveEntry};
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
    use std::time::Duration;

    /// Builds a plan with two encoder MetaOps feeding an LM MetaOp, scheduled
    /// in two waves (encoders, then LM).
    fn unplaced_plan() -> (ExecutionPlan, ClusterSpec) {
        let mut b = GraphBuilder::new();
        let t = b.add_task("al", [Modality::Audio, Modality::Text], 8);
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                4,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                4,
            )
            .unwrap();
        let lm = b
            .add_op_chain(t, OpKind::LmEncoder, TensorShape::new(8, 512, 1024), 4)
            .unwrap();
        b.add_flow(*audio.last().unwrap(), lm[0]).unwrap();
        b.add_flow(*text.last().unwrap(), lm[0]).unwrap();
        let graph = b.build().unwrap();
        let mg = MetaGraph::contract(&graph);
        assert_eq!(mg.num_metaops(), 3);
        let audio_id = mg.metaop_of(audio[0]).unwrap();
        let text_id = mg.metaop_of(text[0]).unwrap();
        let lm_id = mg.metaop_of(lm[0]).unwrap();

        let mut e0 = WaveEntry::new(audio_id, 4, 4, 1.0);
        e0.memory_per_device = 1 << 30;
        let mut e1 = WaveEntry::new(text_id, 4, 4, 0.9);
        e1.memory_per_device = 1 << 30;
        let mut e2 = WaveEntry::new(lm_id, 4, 8, 0.7);
        e2.memory_per_device = 2 << 30;
        let waves = vec![
            Wave {
                index: 0,
                level: 0,
                start: 0.0,
                duration: 4.0,
                entries: vec![e0, e1],
            },
            Wave {
                index: 1,
                level: 1,
                start: 4.0,
                duration: 2.8,
                entries: vec![e2],
            },
        ];
        let plan = ExecutionPlan::new(waves, mg, 16, 6.0, Duration::ZERO);
        (plan, ClusterSpec::homogeneous(2, 8))
    }

    #[test]
    fn sequential_placement_is_consecutive() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Sequential).unwrap();
        plan.require_placement().unwrap();
        plan.validate().unwrap();
        let first = plan.waves()[0].entries[0].placement.as_ref().unwrap();
        assert_eq!(first.devices()[0], DeviceId(0));
        let second = plan.waves()[0].entries[1].placement.as_ref().unwrap();
        assert_eq!(second.devices()[0], DeviceId(4));
    }

    #[test]
    fn locality_placement_is_valid_and_disjoint_per_wave() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Locality).unwrap();
        plan.require_placement().unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn locality_prefers_single_island_groups() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Locality).unwrap();
        // 4-device entries fit inside one 8-GPU island and must stay there.
        for entry in &plan.waves()[0].entries {
            let group = entry.placement.as_ref().unwrap();
            assert!(
                cluster.is_intra_island(group).unwrap(),
                "group {group} spans islands"
            );
        }
    }

    #[test]
    fn capacity_violation_rejected() {
        let (plan, _) = unplaced_plan();
        let small_cluster = ClusterSpec::homogeneous(1, 4);
        let mut plan = plan;
        let err = place(&mut plan, &small_cluster, PlacementStrategy::Locality).unwrap_err();
        assert!(matches!(err, PlanError::CapacityExceeded { .. }));
    }

    #[test]
    fn successor_lands_near_predecessors() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Locality).unwrap();
        // The LM entry (8 devices) must reuse every device its two 4-device
        // predecessors used, because affinity pulls it there.
        let wave0 = &plan.waves()[0];
        let wave1 = &plan.waves()[1];
        let mut pred_devices: Vec<DeviceId> = wave0
            .entries
            .iter()
            .flat_map(|e| e.placement.as_ref().unwrap().iter())
            .collect();
        pred_devices.sort_unstable();
        let mut lm_devices: Vec<DeviceId> = wave1.entries[0]
            .placement
            .as_ref()
            .unwrap()
            .iter()
            .collect();
        lm_devices.sort_unstable();
        assert_eq!(pred_devices, lm_devices);
    }

    #[test]
    fn strategies_resolve_to_named_policies() {
        assert_eq!(PlacementStrategy::Locality.policy().name(), "locality");
        assert_eq!(PlacementStrategy::Sequential.policy().name(), "sequential");
        // Policies are directly invokable, like any custom implementation.
        let (mut plan, cluster) = unplaced_plan();
        let policy: &dyn PlacementPolicy = &LocalityPlacement;
        policy.place(&mut plan, &cluster).unwrap();
        plan.require_placement().unwrap();
    }
}
