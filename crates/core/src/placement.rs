//! Device placement (§3.5): mapping wave entries onto concrete devices.
//!
//! Three guidelines steer placement:
//!
//! 1. **Intra-device-island placement** — keep each entry (and the data flows
//!    it participates in) inside one NVLink island whenever possible.
//! 2. **Prioritising high communication workloads** — entries moving the most
//!    data get first pick of the best-connected devices.
//! 3. **Device memory balance** — entries prefer devices with the most free
//!    memory, and an entry that would overflow a device falls back to a
//!    memory-first assignment (the paper's "alternative placements with
//!    sub-optimal communication costs and better memory balance").

use spindle_cluster::{ClusterSpec, DeviceGroup, DeviceId, Island};

use crate::{ExecutionPlan, MetaOpId, PlanError, Wave};

/// A device-placement policy: maps every wave entry of a plan onto concrete
/// devices.
///
/// New placement strategies implement this trait instead of touching the
/// planner core — [`SpindleSession`](crate::SpindleSession) invokes whatever
/// policy its configuration selects after wavefront scheduling. Implementors
/// must place *every* entry of *every* wave, keeping the entries of each wave
/// on disjoint devices ([`ExecutionPlan::validate`] checks this).
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Human-readable name of the policy.
    fn name(&self) -> &'static str;

    /// Assigns concrete devices to every wave entry of `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::CapacityExceeded`] if some wave requests more
    /// devices than the cluster provides.
    fn place(&self, plan: &mut ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError>;
}

/// The locality-, communication- and memory-aware policy of §3.5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityPlacement;

impl PlacementPolicy for LocalityPlacement {
    fn name(&self) -> &'static str {
        "locality"
    }

    fn place(&self, plan: &mut ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError> {
        check_capacity(plan, cluster)?;
        place_locality(plan, cluster);
        Ok(())
    }
}

/// A naïve policy that assigns each entry consecutive devices starting from
/// device 0, ignoring locality — the ablation baseline of Fig. 10
/// ("Spindle w/o DP", i.e. without the device-placement mechanism).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialPlacement;

impl PlacementPolicy for SequentialPlacement {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn place(&self, plan: &mut ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError> {
        check_capacity(plan, cluster)?;
        place_sequential(plan);
        Ok(())
    }
}

/// The placement strategy to apply to a plan — a compact, copyable selector
/// over the built-in [`PlacementPolicy`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementStrategy {
    /// The locality-, communication- and memory-aware strategy of §3.5
    /// ([`LocalityPlacement`]).
    #[default]
    Locality,
    /// Consecutive-device placement ignoring locality
    /// ([`SequentialPlacement`]).
    Sequential,
}

impl PlacementStrategy {
    /// The policy implementing this strategy.
    #[must_use]
    pub fn policy(self) -> &'static dyn PlacementPolicy {
        match self {
            PlacementStrategy::Locality => &LocalityPlacement,
            PlacementStrategy::Sequential => &SequentialPlacement,
        }
    }
}

/// Assigns concrete devices to every wave entry of `plan`.
///
/// # Errors
///
/// Returns [`PlanError::CapacityExceeded`] if some wave requests more devices
/// than the cluster provides.
pub fn place(
    plan: &mut ExecutionPlan,
    cluster: &ClusterSpec,
    strategy: PlacementStrategy,
) -> Result<(), PlanError> {
    strategy.policy().place(plan, cluster)
}

/// Shared precondition of every built-in policy: no wave may request more
/// devices than the cluster provides.
pub(crate) fn check_capacity(plan: &ExecutionPlan, cluster: &ClusterSpec) -> Result<(), PlanError> {
    let total_devices = cluster.num_devices() as u32;
    for wave in plan.waves() {
        if wave.devices_used() > total_devices {
            return Err(PlanError::CapacityExceeded {
                wave: wave.index,
                requested: wave.devices_used(),
                available: total_devices,
            });
        }
    }
    Ok(())
}

/// Naïve consecutive-device placement.
fn place_sequential(plan: &mut ExecutionPlan) {
    for wave in plan.waves_mut() {
        let mut next = 0u32;
        for entry in &mut wave.entries {
            entry.placement = Some(DeviceGroup::contiguous(
                DeviceId(next),
                entry.devices as usize,
            ));
            next += entry.devices;
        }
    }
}

/// Snapshot of the locality pass's cross-wave state at a level boundary:
/// per-device memory load, MetaOp-on-device residency, and each MetaOp's last
/// device group. Stored per level alongside cached plan skeletons so that a
/// topology change can keep the placements of a clean prefix of levels and
/// resume the pass — restricted to the surviving device set — from the first
/// dirty level instead of re-placing the whole plan
/// (see [`SpindleSession::replan`](crate::SpindleSession::replan)).
///
/// The snapshot is sparse (device-id keyed, not dense-indexed), so it can be
/// restored onto a cluster whose device numbering gained holes after
/// [`ClusterSpec::without_devices`]. State attached to devices that no longer
/// exist is dropped on restore — exactly the state whose loss forces a
/// migration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementCheckpoint {
    /// Bytes resident per device; only loaded devices are listed.
    memory_used: Vec<(DeviceId, u64)>,
    /// `(metaop index, device)` residency pairs.
    resident: Vec<(u32, DeviceId)>,
    /// Last device group of each placed MetaOp, by metaop index.
    last_placement: Vec<(u32, DeviceGroup)>,
}

impl PlacementCheckpoint {
    /// Approximate heap footprint, for cache byte accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.memory_used.len() * std::mem::size_of::<(DeviceId, u64)>()
            + self.resident.len() * std::mem::size_of::<(u32, DeviceId)>()
            + self
                .last_placement
                .iter()
                .map(|(_, g)| {
                    std::mem::size_of::<(u32, DeviceGroup)>()
                        + g.len() * std::mem::size_of::<DeviceId>()
                })
                .sum::<usize>()
    }
}

/// The locality pass (§3.5) with its cross-wave state made explicit, so the
/// state can be checkpointed at level boundaries and restored later.
///
/// All working state is dense and reused across waves: device sets are
/// `Vec`-indexed by `DeviceId` (sized by [`ClusterSpec::device_space`], so a
/// post-churn cluster with holes in its numbering indexes safely), per-MetaOp
/// state by `MetaOpId`, and the MetaGraph adjacency is extracted once up
/// front instead of being re-scanned (and re-allocated) per entry.
struct LocalityPass {
    islands: Vec<Island>,
    all_devices: Vec<DeviceId>,
    capacity: u64,
    /// Devices available for allocation (the surviving count).
    num_devices: usize,
    /// Dense id-space size (one past the highest device id).
    space: usize,
    num_metaops: usize,
    preds: Vec<Vec<MetaOpId>>,
    succs: Vec<Vec<MetaOpId>>,
    volume: Vec<u64>,
    // Cross-wave state — what checkpoints capture.
    memory_used: Vec<u64>,
    resident: Vec<bool>,
    last_placement: Vec<Option<DeviceGroup>>,
    // Per-wave scratch.
    free: Vec<bool>,
    affinity: Vec<i64>,
    order: Vec<usize>,
    island_order: Vec<usize>,
    candidates: Vec<DeviceId>,
    chosen: Vec<DeviceId>,
}

impl LocalityPass {
    fn new(plan: &ExecutionPlan, cluster: &ClusterSpec) -> Self {
        let num_metaops = plan.metagraph().num_metaops();
        let space = cluster.device_space();

        // Dense adjacency and communication volume of each MetaOp: bytes it
        // receives plus bytes it sends along MetaGraph edges (guideline 2).
        let mut preds: Vec<Vec<MetaOpId>> = vec![Vec::new(); num_metaops];
        let mut succs: Vec<Vec<MetaOpId>> = vec![Vec::new(); num_metaops];
        for &(a, b) in plan.metagraph().edges() {
            preds[b.index()].push(a);
            succs[a.index()].push(b);
        }
        let mut volume: Vec<u64> = vec![0; num_metaops];
        for metaop in plan.metagraph().metaops() {
            let i = metaop.id().index();
            let incoming: u64 = preds[i]
                .iter()
                .map(|&p| plan.metagraph().metaop(p).representative().output_bytes())
                .sum();
            let outgoing = metaop.representative().output_bytes() * succs[i].len() as u64;
            volume[i] = incoming + outgoing;
        }

        Self {
            islands: cluster.islands(),
            all_devices: cluster.all_devices().iter().collect(),
            capacity: cluster.device_memory_bytes(),
            num_devices: cluster.num_devices(),
            space,
            num_metaops,
            preds,
            succs,
            volume,
            memory_used: vec![0; space],
            resident: vec![false; num_metaops * space],
            last_placement: vec![None; num_metaops],
            free: vec![false; space],
            affinity: vec![0; space],
            order: Vec::new(),
            island_order: Vec::new(),
            candidates: Vec::new(),
            chosen: Vec::new(),
        }
    }

    /// Snapshots the cross-wave state in sparse, id-stable form.
    fn checkpoint(&self) -> PlacementCheckpoint {
        PlacementCheckpoint {
            memory_used: self
                .memory_used
                .iter()
                .enumerate()
                .filter(|&(_, &bytes)| bytes > 0)
                .map(|(i, &bytes)| (DeviceId(i as u32), bytes))
                .collect(),
            resident: (0..self.num_metaops)
                .flat_map(|m| {
                    let row = &self.resident[m * self.space..(m + 1) * self.space];
                    row.iter()
                        .enumerate()
                        .filter(|&(_, &r)| r)
                        .map(move |(d, _)| (m as u32, DeviceId(d as u32)))
                })
                .collect(),
            last_placement: self
                .last_placement
                .iter()
                .enumerate()
                .filter_map(|(m, g)| g.as_ref().map(|g| (m as u32, g.clone())))
                .collect(),
        }
    }

    /// Loads a checkpoint, dropping state attached to devices that are not
    /// part of this pass's cluster (they were removed by churn). A last
    /// placement touching a removed device keeps its surviving members —
    /// affinity toward the survivors still makes the data flows cheap.
    fn restore(&mut self, checkpoint: &PlacementCheckpoint) {
        let mut present = vec![false; self.space];
        for &d in &self.all_devices {
            present[d.index()] = true;
        }
        self.memory_used.fill(0);
        for &(d, bytes) in &checkpoint.memory_used {
            if d.index() < self.space && present[d.index()] {
                self.memory_used[d.index()] = bytes;
            }
        }
        self.resident.fill(false);
        for &(m, d) in &checkpoint.resident {
            let m = m as usize;
            if m < self.num_metaops && d.index() < self.space && present[d.index()] {
                self.resident[m * self.space + d.index()] = true;
            }
        }
        self.last_placement.fill(None);
        for (m, group) in &checkpoint.last_placement {
            let m = *m as usize;
            if m >= self.num_metaops {
                continue;
            }
            let survivors: DeviceGroup = group
                .iter()
                .filter(|d| d.index() < self.space && present[d.index()])
                .collect();
            if !survivors.is_empty() {
                self.last_placement[m] = Some(survivors);
            }
        }
    }

    /// Places every entry of one wave, advancing the cross-wave state.
    fn place_wave(&mut self, wave: &mut Wave) {
        self.free.fill(false);
        for &d in &self.all_devices {
            self.free[d.index()] = true;
        }
        // Guideline 2: place the most communication-intensive entries first.
        self.order.clear();
        self.order.extend(0..wave.entries.len());
        let volume = &self.volume;
        self.order
            .sort_by_key(|&i| std::cmp::Reverse(volume[wave.entries[i].metaop.index()]));

        for oi in 0..self.order.len() {
            let idx = self.order[oi];
            let entry = &wave.entries[idx];
            let needed = (entry.devices as usize).min(self.num_devices);
            // Affinity of each device for this entry.
            self.affinity.fill(0);
            let mark = |group: Option<&DeviceGroup>, weight: i64, affinity: &mut Vec<i64>| {
                if let Some(g) = group {
                    for d in g.iter() {
                        affinity[d.index()] += weight;
                    }
                }
            };
            mark(
                self.last_placement[entry.metaop.index()].as_ref(),
                4,
                &mut self.affinity,
            );
            for &pred in &self.preds[entry.metaop.index()] {
                mark(
                    self.last_placement[pred.index()].as_ref(),
                    2,
                    &mut self.affinity,
                );
            }
            // Sibling affinity: co-locate with MetaOps that feed the same
            // successor, so the successor's inputs end up on one island.
            for &succ in &self.succs[entry.metaop.index()] {
                for &sibling in &self.preds[succ.index()] {
                    if sibling != entry.metaop {
                        mark(
                            self.last_placement[sibling.index()].as_ref(),
                            1,
                            &mut self.affinity,
                        );
                    }
                }
            }

            // Guideline 1: choose islands first, preferring islands with
            // enough free devices, high affinity and plenty of free memory.
            self.island_order.clear();
            self.island_order.extend(0..self.islands.len());
            let (islands, free, affinity, memory_used, capacity) = (
                &self.islands,
                &self.free,
                &self.affinity,
                &self.memory_used,
                self.capacity,
            );
            self.island_order.sort_by_key(|&k| {
                let island = &islands[k];
                let mut free_count = 0usize;
                let mut free_mem = 0u64;
                // Affinity counts every device of the island (even occupied
                // ones): being on the same island as a producer is what makes
                // the data flow cheap, regardless of which sibling occupies it.
                let mut aff = 0i64;
                for d in island.devices.iter() {
                    aff += affinity[d.index()];
                    if free[d.index()] {
                        free_count += 1;
                        free_mem += capacity.saturating_sub(memory_used[d.index()]);
                    }
                }
                let fits = free_count >= needed;
                (
                    std::cmp::Reverse(fits),
                    std::cmp::Reverse(aff),
                    std::cmp::Reverse(free_mem),
                )
            });

            self.chosen.clear();
            for ki in 0..self.island_order.len() {
                let k = self.island_order[ki];
                if self.chosen.len() >= needed {
                    break;
                }
                self.candidates.clear();
                self.candidates.extend(
                    self.islands[k]
                        .devices
                        .iter()
                        .filter(|d| self.free[d.index()]),
                );
                // Guideline 3 tie-break: most affine, then most free memory.
                let (affinity, memory_used) = (&self.affinity, &self.memory_used);
                self.candidates.sort_by_key(|d| {
                    (
                        std::cmp::Reverse(affinity[d.index()]),
                        memory_used[d.index()],
                        d.0,
                    )
                });
                for ci in 0..self.candidates.len() {
                    if self.chosen.len() >= needed {
                        break;
                    }
                    let d = self.candidates[ci];
                    self.chosen.push(d);
                }
            }

            // Memory-balance fallback: if any chosen device would exceed its
            // capacity, redo the choice ordering devices purely by free memory.
            let per_device = wave.entries[idx].memory_per_device;
            let would_overflow = self
                .chosen
                .iter()
                .any(|d| self.memory_used[d.index()] + per_device > self.capacity);
            if would_overflow {
                self.candidates.clear();
                self.candidates
                    .extend(self.all_devices.iter().filter(|d| self.free[d.index()]));
                let memory_used = &self.memory_used;
                self.candidates
                    .sort_by_key(|d| (memory_used[d.index()], d.0));
                self.chosen.clear();
                let take = needed.min(self.candidates.len());
                self.chosen.extend(self.candidates.iter().take(take));
            }

            let metaop = wave.entries[idx].metaop;
            for i in 0..self.chosen.len() {
                let d = self.chosen[i];
                self.free[d.index()] = false;
                let slot = metaop.index() * self.space + d.index();
                if !self.resident[slot] {
                    self.resident[slot] = true;
                    self.memory_used[d.index()] =
                        self.memory_used[d.index()].saturating_add(per_device);
                }
            }
            let group: DeviceGroup = self.chosen.iter().copied().collect();
            self.last_placement[metaop.index()] = Some(group.clone());
            wave.entries[idx].placement = Some(group);
        }
    }
}

/// Locality-, communication- and memory-aware placement.
fn place_locality(plan: &mut ExecutionPlan, cluster: &ClusterSpec) {
    let mut pass = LocalityPass::new(plan, cluster);
    for wave in plan.waves_mut() {
        pass.place_wave(wave);
    }
}

/// [`place_locality`] that also snapshots the pass state at every level
/// boundary. `checkpoints[i]` is the state after the last wave of the `i`-th
/// level of the plan, in wave order — restoring `checkpoints[i]` and
/// re-placing levels `i+1..` reproduces a full pass exactly.
pub(crate) fn place_locality_checkpointed(
    plan: &mut ExecutionPlan,
    cluster: &ClusterSpec,
) -> Vec<PlacementCheckpoint> {
    let mut pass = LocalityPass::new(plan, cluster);
    let mut checkpoints = Vec::new();
    let mut current_level: Option<usize> = None;
    for wave in plan.waves_mut() {
        if let Some(level) = current_level {
            if level != wave.level {
                checkpoints.push(pass.checkpoint());
            }
        }
        current_level = Some(wave.level);
        pass.place_wave(wave);
    }
    if current_level.is_some() {
        checkpoints.push(pass.checkpoint());
    }
    checkpoints
}

/// Resumes a locality pass from `resume_from` (the checkpoint taken after the
/// last clean level) and places only `plan.waves_mut()[first_wave..]` — the
/// waves of the dirty levels — onto `cluster`'s surviving devices. Waves
/// before `first_wave` keep whatever placement they already carry. Returns
/// one checkpoint per level placed, so the resulting hybrid plan can itself
/// seed the next partial re-plan.
pub(crate) fn place_locality_resume(
    plan: &mut ExecutionPlan,
    cluster: &ClusterSpec,
    first_wave: usize,
    resume_from: &PlacementCheckpoint,
) -> Vec<PlacementCheckpoint> {
    let mut pass = LocalityPass::new(plan, cluster);
    pass.restore(resume_from);
    let mut checkpoints = Vec::new();
    let mut current_level: Option<usize> = None;
    for wave in plan.waves_mut().iter_mut().skip(first_wave) {
        if let Some(level) = current_level {
            if level != wave.level {
                checkpoints.push(pass.checkpoint());
            }
        }
        current_level = Some(wave.level);
        pass.place_wave(wave);
    }
    if current_level.is_some() {
        checkpoints.push(pass.checkpoint());
    }
    checkpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetaGraph, Wave, WaveEntry};
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
    use std::time::Duration;

    /// Builds a plan with two encoder MetaOps feeding an LM MetaOp, scheduled
    /// in two waves (encoders, then LM).
    fn unplaced_plan() -> (ExecutionPlan, ClusterSpec) {
        let mut b = GraphBuilder::new();
        let t = b.add_task("al", [Modality::Audio, Modality::Text], 8);
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                4,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                4,
            )
            .unwrap();
        let lm = b
            .add_op_chain(t, OpKind::LmEncoder, TensorShape::new(8, 512, 1024), 4)
            .unwrap();
        b.add_flow(*audio.last().unwrap(), lm[0]).unwrap();
        b.add_flow(*text.last().unwrap(), lm[0]).unwrap();
        let graph = b.build().unwrap();
        let mg = MetaGraph::contract(&graph);
        assert_eq!(mg.num_metaops(), 3);
        let audio_id = mg.metaop_of(audio[0]).unwrap();
        let text_id = mg.metaop_of(text[0]).unwrap();
        let lm_id = mg.metaop_of(lm[0]).unwrap();

        let mut e0 = WaveEntry::new(audio_id, 4, 4, 1.0);
        e0.memory_per_device = 1 << 30;
        let mut e1 = WaveEntry::new(text_id, 4, 4, 0.9);
        e1.memory_per_device = 1 << 30;
        let mut e2 = WaveEntry::new(lm_id, 4, 8, 0.7);
        e2.memory_per_device = 2 << 30;
        let waves = vec![
            Wave {
                index: 0,
                level: 0,
                start: 0.0,
                duration: 4.0,
                entries: vec![e0, e1],
            },
            Wave {
                index: 1,
                level: 1,
                start: 4.0,
                duration: 2.8,
                entries: vec![e2],
            },
        ];
        let plan = ExecutionPlan::new(waves, mg, 16, 6.0, Duration::ZERO);
        (plan, ClusterSpec::homogeneous(2, 8))
    }

    #[test]
    fn sequential_placement_is_consecutive() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Sequential).unwrap();
        plan.require_placement().unwrap();
        plan.validate().unwrap();
        let first = plan.waves()[0].entries[0].placement.as_ref().unwrap();
        assert_eq!(first.devices()[0], DeviceId(0));
        let second = plan.waves()[0].entries[1].placement.as_ref().unwrap();
        assert_eq!(second.devices()[0], DeviceId(4));
    }

    #[test]
    fn locality_placement_is_valid_and_disjoint_per_wave() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Locality).unwrap();
        plan.require_placement().unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn locality_prefers_single_island_groups() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Locality).unwrap();
        // 4-device entries fit inside one 8-GPU island and must stay there.
        for entry in &plan.waves()[0].entries {
            let group = entry.placement.as_ref().unwrap();
            assert!(
                cluster.is_intra_island(group).unwrap(),
                "group {group} spans islands"
            );
        }
    }

    #[test]
    fn capacity_violation_rejected() {
        let (plan, _) = unplaced_plan();
        let small_cluster = ClusterSpec::homogeneous(1, 4);
        let mut plan = plan;
        let err = place(&mut plan, &small_cluster, PlacementStrategy::Locality).unwrap_err();
        assert!(matches!(err, PlanError::CapacityExceeded { .. }));
    }

    #[test]
    fn successor_lands_near_predecessors() {
        let (mut plan, cluster) = unplaced_plan();
        place(&mut plan, &cluster, PlacementStrategy::Locality).unwrap();
        // The LM entry (8 devices) must reuse every device its two 4-device
        // predecessors used, because affinity pulls it there.
        let wave0 = &plan.waves()[0];
        let wave1 = &plan.waves()[1];
        let mut pred_devices: Vec<DeviceId> = wave0
            .entries
            .iter()
            .flat_map(|e| e.placement.as_ref().unwrap().iter())
            .collect();
        pred_devices.sort_unstable();
        let mut lm_devices: Vec<DeviceId> = wave1.entries[0]
            .placement
            .as_ref()
            .unwrap()
            .iter()
            .collect();
        lm_devices.sort_unstable();
        assert_eq!(pred_devices, lm_devices);
    }

    #[test]
    fn strategies_resolve_to_named_policies() {
        assert_eq!(PlacementStrategy::Locality.policy().name(), "locality");
        assert_eq!(PlacementStrategy::Sequential.policy().name(), "sequential");
        // Policies are directly invokable, like any custom implementation.
        let (mut plan, cluster) = unplaced_plan();
        let policy: &dyn PlacementPolicy = &LocalityPlacement;
        policy.place(&mut plan, &cluster).unwrap();
        plan.require_placement().unwrap();
    }
}
