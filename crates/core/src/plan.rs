//! Execution plans: waves, wave entries and the overall plan consumed by the
//! runtime engine.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use spindle_cluster::DeviceGroup;

use crate::{MetaGraph, MetaOpId, PlanError};

/// One sliced MetaOp scheduled inside a wave: `layers` consecutive operators
/// of `metaop` executing on `devices` devices (an ASL-tuple of §3.3 whose
/// start time is the wave's start time).
#[derive(Debug, Clone, PartialEq)]
pub struct WaveEntry {
    /// The MetaOp being executed.
    pub metaop: MetaOpId,
    /// Number of consecutive operators of the MetaOp scheduled in this wave.
    pub layers: u32,
    /// Number of devices allocated.
    pub devices: u32,
    /// Execution time of a single operator at this allocation, seconds.
    pub time_per_op: f64,
    /// Execution time of the whole entry (`layers × time_per_op`), seconds.
    pub exec_time: f64,
    /// Estimated peak per-device memory consumed by this entry, bytes.
    pub memory_per_device: u64,
    /// Concrete devices assigned by the placement step; `None` until placed.
    pub placement: Option<DeviceGroup>,
}

impl WaveEntry {
    /// Creates an unplaced wave entry.
    #[must_use]
    pub fn new(metaop: MetaOpId, layers: u32, devices: u32, time_per_op: f64) -> Self {
        Self {
            metaop,
            layers,
            devices,
            time_per_op,
            exec_time: f64::from(layers) * time_per_op,
            memory_per_device: 0,
            placement: None,
        }
    }
}

/// A wave: the smallest scheduling unit of Spindle. All entries of a wave
/// execute concurrently on disjoint device groups; device allocation stays
/// fixed for the duration of the wave and data flows move only at wave
/// boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Wave {
    /// Index of the wave in overall execution order.
    pub index: usize,
    /// The MetaLevel this wave belongs to.
    pub level: usize,
    /// Start time within the iteration, seconds.
    pub start: f64,
    /// Duration of the wave (the longest entry), seconds.
    pub duration: f64,
    /// The sliced MetaOps executing in this wave.
    pub entries: Vec<WaveEntry>,
}

impl Wave {
    /// Total number of devices occupied by the wave's entries.
    #[must_use]
    pub fn devices_used(&self) -> u32 {
        self.entries.iter().map(|e| e.devices).sum()
    }

    /// End time of the wave.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Device-time utilisation of the wave: busy device-seconds divided by
    /// `duration × devices_available`. 1.0 means no device idles.
    #[must_use]
    pub fn utilization(&self, devices_available: u32) -> f64 {
        if self.duration <= 0.0 || devices_available == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .entries
            .iter()
            .map(|e| e.exec_time * f64::from(e.devices))
            .sum();
        busy / (self.duration * f64::from(devices_available))
    }

    /// The entry executing `metaop`, if any.
    #[must_use]
    pub fn entry_for(&self, metaop: MetaOpId) -> Option<&WaveEntry> {
        self.entries.iter().find(|e| e.metaop == metaop)
    }
}

/// The complete execution plan for one training iteration: the ordered waves
/// (with device placement), the MetaGraph they were derived from, and the
/// theoretical lower bound used for optimality analysis (Fig. 11).
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    waves: Vec<Wave>,
    /// Shared: re-planning paths that reuse cached wave fragments hand the
    /// same contracted MetaGraph to several plans without deep-cloning its
    /// op maps.
    metagraph: Arc<MetaGraph>,
    num_devices: u32,
    /// One past the highest device id the plan may legally reference. Equals
    /// `num_devices` on a pristine cluster; larger after device churn, where
    /// surviving devices keep their global ids and the numbering has holes
    /// (see [`ClusterSpec::device_space`](spindle_cluster::ClusterSpec::device_space)).
    device_space: u32,
    theoretical_optimum: f64,
    planning_time: Duration,
}

impl ExecutionPlan {
    /// Assembles a plan from its parts. Baseline planners use this constructor
    /// to describe their own (non-wavefront) schedules in the same format.
    /// The plan's device id space defaults to `0..num_devices`; planning on a
    /// post-churn cluster with id holes widens it via
    /// [`set_device_space`](Self::set_device_space).
    #[must_use]
    pub fn new(
        waves: Vec<Wave>,
        metagraph: impl Into<Arc<MetaGraph>>,
        num_devices: u32,
        theoretical_optimum: f64,
        planning_time: Duration,
    ) -> Self {
        Self {
            waves,
            metagraph: metagraph.into(),
            num_devices,
            device_space: num_devices,
            theoretical_optimum,
            planning_time,
        }
    }

    /// The waves of the plan, in execution order.
    #[must_use]
    pub fn waves(&self) -> &[Wave] {
        &self.waves
    }

    /// Mutable access to the waves (used by the placement step).
    pub(crate) fn waves_mut(&mut self) -> &mut Vec<Wave> {
        &mut self.waves
    }

    /// Records the wall-clock planning time (set once placement finishes).
    pub(crate) fn set_planning_time(&mut self, elapsed: Duration) {
        self.planning_time = elapsed;
    }

    /// The MetaGraph the plan schedules.
    #[must_use]
    pub fn metagraph(&self) -> &MetaGraph {
        &self.metagraph
    }

    /// A shareable handle to the MetaGraph.
    #[must_use]
    pub fn metagraph_handle(&self) -> Arc<MetaGraph> {
        Arc::clone(&self.metagraph)
    }

    /// Cluster size the plan was built for.
    #[must_use]
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// One past the highest device id the plan may legally reference. On a
    /// pristine cluster this equals [`num_devices`](Self::num_devices); after
    /// device churn it can exceed it, because survivors keep their global
    /// ids and the numbering gains holes.
    #[must_use]
    pub fn device_space(&self) -> u32 {
        self.device_space.max(self.num_devices)
    }

    /// Widens the legal device id space to `space` (for plans placed on a
    /// post-churn cluster whose surviving ids are not contiguous). Values
    /// below `num_devices` are ignored — the space never shrinks below the
    /// device count.
    pub fn set_device_space(&mut self, space: u32) {
        self.device_space = space.max(self.num_devices);
    }

    /// The theoretical optimum `Σ_levels C̃*` from the continuous relaxation —
    /// an unachievable lower bound on the compute portion of the iteration.
    #[must_use]
    pub fn theoretical_optimum(&self) -> f64 {
        self.theoretical_optimum
    }

    /// Wall-clock time the planner spent producing this plan (Fig. 12).
    #[must_use]
    pub fn planning_time(&self) -> Duration {
        self.planning_time
    }

    /// Planned makespan: the end time of the last wave (compute + intra-wave
    /// alignment idle time, excluding inter-wave transmission and parameter
    /// synchronisation, which the runtime adds).
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.waves.last().map_or(0.0, Wave::end)
    }

    /// Number of waves.
    #[must_use]
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// Checks the structural invariants of the plan:
    ///
    /// * no wave allocates more devices than the cluster has;
    /// * placed entries of a wave occupy disjoint devices;
    /// * every MetaOp's operators are all scheduled exactly once across waves;
    /// * waves are ordered by start time.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), PlanError> {
        let mut scheduled: BTreeMap<MetaOpId, u32> = BTreeMap::new();
        let mut prev_start = 0.0f64;
        for wave in &self.waves {
            if wave.devices_used() > self.num_devices {
                return Err(PlanError::CapacityExceeded {
                    wave: wave.index,
                    requested: wave.devices_used(),
                    available: self.num_devices,
                });
            }
            if wave.start + 1e-9 < prev_start {
                return Err(PlanError::UnorderedWaves { wave: wave.index });
            }
            prev_start = wave.start;
            let mut used: Vec<spindle_cluster::DeviceId> = Vec::new();
            for entry in &wave.entries {
                *scheduled.entry(entry.metaop).or_insert(0) += entry.layers;
                if let Some(group) = &entry.placement {
                    for d in group.iter() {
                        if used.contains(&d) {
                            return Err(PlanError::PlacementOverlap { wave: wave.index });
                        }
                        used.push(d);
                    }
                }
            }
        }
        for metaop in self.metagraph.metaops() {
            let got = scheduled.get(&metaop.id()).copied().unwrap_or(0);
            if got != metaop.num_ops() {
                return Err(PlanError::IncompleteSchedule {
                    metaop: metaop.id(),
                    scheduled: got,
                    required: metaop.num_ops(),
                });
            }
        }
        Ok(())
    }

    /// Requires every entry to carry a placement (called before handing the
    /// plan to the runtime).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::MissingPlacement`] naming the first unplaced entry.
    pub fn require_placement(&self) -> Result<(), PlanError> {
        for wave in &self.waves {
            for entry in &wave.entries {
                if entry.placement.is_none() {
                    return Err(PlanError::MissingPlacement {
                        wave: wave.index,
                        metaop: entry.metaop,
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks that every wave entry's estimated per-device memory fits within
    /// `capacity_bytes` — the memory-bound invariant the scenario fuzzer
    /// asserts on every randomized draw.
    ///
    /// Entries whose memory was never annotated (`memory_per_device == 0`)
    /// pass trivially; the planner and every baseline annotate theirs.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::MemoryExceeded`] naming the first overflowing
    /// entry.
    pub fn check_memory(&self, capacity_bytes: u64) -> Result<(), PlanError> {
        for wave in &self.waves {
            for entry in &wave.entries {
                if entry.memory_per_device > capacity_bytes {
                    return Err(PlanError::MemoryExceeded {
                        wave: wave.index,
                        metaop: entry.metaop,
                        required: entry.memory_per_device,
                        capacity: capacity_bytes,
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks that every placed device id lies within the plan's device id
    /// space ([`device_space`](Self::device_space) — `0..num_devices` on a
    /// pristine cluster, wider when churn left holes in the numbering).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::PlacementOutOfRange`] naming the first stray
    /// device.
    pub fn check_placement_in_range(&self) -> Result<(), PlanError> {
        let space = self.device_space();
        for wave in &self.waves {
            for entry in &wave.entries {
                if let Some(group) = &entry.placement {
                    for d in group.iter() {
                        if d.0 >= space {
                            return Err(PlanError::PlacementOutOfRange {
                                wave: wave.index,
                                device: d.0,
                                available: space,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the full invariant suite the scenario fuzzer enforces on every
    /// draw: structural validity ([`validate`](Self::validate) — full op
    /// coverage, per-wave device capacity, wave ordering, disjoint
    /// placements), complete placement
    /// ([`require_placement`](Self::require_placement)), in-range device ids
    /// and the per-device memory bound.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self, device_memory_bytes: u64) -> Result<(), PlanError> {
        self.validate()?;
        self.require_placement()?;
        self.check_placement_in_range()?;
        self.check_memory(device_memory_bytes)
    }

    /// Average device utilisation over the plan's makespan (compute only).
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .waves
            .iter()
            .flat_map(|w| w.entries.iter())
            .map(|e| e.exec_time * f64::from(e.devices))
            .sum();
        busy / (makespan * f64::from(self.num_devices))
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution plan: {} waves over {} devices, makespan {:.2} ms, avg utilization {:.0}%",
            self.num_waves(),
            self.num_devices,
            self.makespan() * 1e3,
            self.average_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::DeviceId;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn tiny_metagraph() -> MetaGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Audio, Modality::Text], 8);
        b.add_op_chain(
            t,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
            2,
        )
        .unwrap();
        b.add_op_chain(
            t,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(8, 77, 768),
            3,
        )
        .unwrap();
        MetaGraph::contract(&b.build().unwrap())
    }

    fn placed(entry: WaveEntry, first: u32) -> WaveEntry {
        WaveEntry {
            placement: Some(DeviceGroup::contiguous(
                DeviceId(first),
                entry.devices as usize,
            )),
            ..entry
        }
    }

    fn simple_plan() -> ExecutionPlan {
        let mg = tiny_metagraph();
        let wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 2.0,
            entries: vec![
                placed(WaveEntry::new(MetaOpId(0), 2, 4, 1.0), 0),
                placed(WaveEntry::new(MetaOpId(1), 3, 4, 0.5), 4),
            ],
        };
        ExecutionPlan::new(vec![wave], mg, 8, 1.9, Duration::from_millis(1))
    }

    #[test]
    fn valid_plan_passes_validation() {
        let plan = simple_plan();
        assert!(plan.validate().is_ok());
        assert!(plan.require_placement().is_ok());
        assert_eq!(plan.num_waves(), 1);
        assert_eq!(plan.makespan(), 2.0);
        assert_eq!(plan.num_devices(), 8);
        assert!((plan.theoretical_optimum() - 1.9).abs() < 1e-12);
        assert!(plan.average_utilization() > 0.5);
        assert!(plan.to_string().contains("1 waves"));
    }

    #[test]
    fn capacity_violation_detected() {
        let mg = tiny_metagraph();
        let wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 1.0,
            entries: vec![
                WaveEntry::new(MetaOpId(0), 2, 6, 0.5),
                WaveEntry::new(MetaOpId(1), 3, 6, 0.3),
            ],
        };
        let plan = ExecutionPlan::new(vec![wave], mg, 8, 0.0, Duration::ZERO);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::CapacityExceeded {
                requested: 12,
                available: 8,
                ..
            })
        ));
    }

    #[test]
    fn incomplete_schedule_detected() {
        let mg = tiny_metagraph();
        let wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 1.0,
            entries: vec![WaveEntry::new(MetaOpId(0), 2, 4, 0.5)],
        };
        let plan = ExecutionPlan::new(vec![wave], mg, 8, 0.0, Duration::ZERO);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::IncompleteSchedule {
                metaop: MetaOpId(1),
                scheduled: 0,
                required: 3
            })
        ));
    }

    #[test]
    fn placement_overlap_detected() {
        let mg = tiny_metagraph();
        let wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 1.0,
            entries: vec![
                placed(WaveEntry::new(MetaOpId(0), 2, 4, 0.5), 0),
                placed(WaveEntry::new(MetaOpId(1), 3, 4, 0.3), 2),
            ],
        };
        let plan = ExecutionPlan::new(vec![wave], mg, 8, 0.0, Duration::ZERO);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::PlacementOverlap { wave: 0 })
        ));
    }

    #[test]
    fn missing_placement_detected() {
        let mg = tiny_metagraph();
        let wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 1.0,
            entries: vec![
                WaveEntry::new(MetaOpId(0), 2, 4, 0.5),
                WaveEntry::new(MetaOpId(1), 3, 4, 0.3),
            ],
        };
        let plan = ExecutionPlan::new(vec![wave], mg, 8, 0.0, Duration::ZERO);
        assert!(matches!(
            plan.require_placement(),
            Err(PlanError::MissingPlacement { wave: 0, .. })
        ));
    }

    #[test]
    fn memory_bound_and_placement_range_checks() {
        let plan = simple_plan();
        // The toy plan annotates no memory, so any capacity passes.
        plan.check_memory(1).unwrap();
        plan.check_invariants(1).unwrap();

        // Inflate one entry's memory beyond the capacity: caught, with the
        // offending wave and requirement reported.
        let mg = tiny_metagraph();
        let mut wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 2.0,
            entries: vec![
                placed(WaveEntry::new(MetaOpId(0), 2, 4, 1.0), 0),
                placed(WaveEntry::new(MetaOpId(1), 3, 4, 0.5), 4),
            ],
        };
        wave.entries[1].memory_per_device = 100;
        let plan = ExecutionPlan::new(vec![wave], mg, 8, 1.9, Duration::ZERO);
        plan.check_memory(100).unwrap();
        assert!(matches!(
            plan.check_memory(99),
            Err(PlanError::MemoryExceeded {
                wave: 0,
                metaop: MetaOpId(1),
                required: 100,
                capacity: 99,
            })
        ));
        assert!(plan.check_invariants(99).is_err());

        // A placement naming a device the cluster does not have is caught
        // even though the wave's device *count* is within capacity.
        let mg = tiny_metagraph();
        let wave = Wave {
            index: 0,
            level: 0,
            start: 0.0,
            duration: 2.0,
            entries: vec![
                placed(WaveEntry::new(MetaOpId(0), 2, 4, 1.0), 0),
                placed(WaveEntry::new(MetaOpId(1), 3, 4, 0.5), 6),
            ],
        };
        let plan = ExecutionPlan::new(vec![wave], mg, 8, 1.9, Duration::ZERO);
        assert!(matches!(
            plan.check_placement_in_range(),
            Err(PlanError::PlacementOutOfRange {
                wave: 0,
                device: 8,
                available: 8,
            })
        ));
        assert!(plan.check_invariants(u64::MAX).is_err());
    }

    #[test]
    fn wave_helpers() {
        let plan = simple_plan();
        let wave = &plan.waves()[0];
        assert_eq!(wave.devices_used(), 8);
        assert_eq!(wave.end(), 2.0);
        assert!(wave.utilization(8) > 0.5);
        assert!(wave.entry_for(MetaOpId(0)).is_some());
        assert!(wave.entry_for(MetaOpId(9)).is_none());
    }
}
