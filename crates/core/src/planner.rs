//! The legacy one-shot planner — a thin deprecated shim over
//! [`SpindleSession`].

use std::sync::Arc;

use spindle_cluster::ClusterSpec;
use spindle_estimator::ScalabilityEstimator;
use spindle_graph::ComputationGraph;

use crate::wavefront::CurveMap;
use crate::{ExecutionPlan, MetaGraph, PlanError, PlannerConfig, SpindleSession};

/// The original single-shot Spindle planner API.
///
/// `Planner` borrows the graph and cluster and rebuilds the scalability
/// estimator on every construction, so repeated planning re-fits every scaling
/// curve from scratch. [`SpindleSession`] owns its state, keeps the curve
/// cache warm across plans, and exposes the pipeline stage by stage — new code
/// should use it directly. This shim remains for one release and simply
/// drives a session internally.
#[deprecated(
    since = "0.2.0",
    note = "use `SpindleSession` (owned, cache-friendly, staged) instead; \
            `Planner` is a one-shot shim over it"
)]
#[derive(Debug)]
pub struct Planner<'a> {
    graph: &'a ComputationGraph,
    cluster: &'a ClusterSpec,
    estimator: Arc<ScalabilityEstimator>,
    config: PlannerConfig,
}

#[allow(deprecated)]
impl<'a> Planner<'a> {
    /// Creates a planner with the default configuration and the default
    /// analytic performance model for `cluster`.
    #[must_use]
    pub fn new(graph: &'a ComputationGraph, cluster: &'a ClusterSpec) -> Self {
        Self::with_config(graph, cluster, PlannerConfig::default())
    }

    /// Creates a planner with an explicit configuration.
    #[must_use]
    pub fn with_config(
        graph: &'a ComputationGraph,
        cluster: &'a ClusterSpec,
        config: PlannerConfig,
    ) -> Self {
        Self {
            graph,
            cluster,
            estimator: Arc::new(ScalabilityEstimator::new(cluster)),
            config,
        }
    }

    /// Creates a planner that uses a caller-supplied estimator (e.g. one backed
    /// by recorded profiles instead of the analytic model).
    #[must_use]
    pub fn with_estimator(
        graph: &'a ComputationGraph,
        cluster: &'a ClusterSpec,
        estimator: ScalabilityEstimator,
        config: PlannerConfig,
    ) -> Self {
        Self {
            graph,
            cluster,
            estimator: Arc::new(estimator),
            config,
        }
    }

    /// The planner's configuration.
    #[must_use]
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The estimator used by this planner.
    #[must_use]
    pub fn estimator(&self) -> &ScalabilityEstimator {
        &self.estimator
    }

    /// Runs the full planning pipeline and returns the execution plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyCluster`] for clusters without devices and
    /// [`PlanError::NoCurve`] if an operator cannot be profiled.
    pub fn plan(&self) -> Result<ExecutionPlan, PlanError> {
        self.session().plan(self.graph)
    }

    /// The theoretical optimum `Σ C̃*` of the workload, computed directly from
    /// the per-level MPSP solutions without building the full plan.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`plan`](Self::plan).
    pub fn theoretical_optimum(&self) -> Result<f64, PlanError> {
        self.session().theoretical_optimum(self.graph)
    }

    fn session(&self) -> SpindleSession {
        SpindleSession::with_estimator(
            Arc::new(self.cluster.clone()),
            Arc::clone(&self.estimator),
            self.config,
        )
    }
}

/// Helper for baseline planners and tests: builds the curve map of a MetaGraph
/// against an estimator.
///
/// # Errors
///
/// Returns [`PlanError::NoCurve`] for operators that cannot be profiled.
pub fn curves_for(
    metagraph: &MetaGraph,
    estimator: &ScalabilityEstimator,
) -> Result<CurveMap, PlanError> {
    let mut curves = CurveMap::new();
    for metaop in metagraph.metaops() {
        let curve = estimator
            .try_curve_for(metaop.representative())
            .map_err(|_| PlanError::NoCurve(metaop.id()))?;
        curves.insert(metaop.id(), curve);
    }
    Ok(curves)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    /// A 2-task contrastive workload with heterogeneous towers.
    fn workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        for (name, m, seq, batch, layers) in [
            ("audio-text", Modality::Audio, 229u32, 8u32, 12usize),
            ("vision-text", Modality::Vision, 257, 4, 24),
        ] {
            let t = b.add_task(name, [m, Modality::Text], batch);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(m),
                    TensorShape::new(batch, seq, 768),
                    layers,
                )
                .unwrap();
            let text = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Text),
                    TensorShape::new(batch, 77, 768),
                    12,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.add_flow(*text.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn legacy_shim_still_plans() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = Planner::new(&graph, &cluster).plan().unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
        assert!(plan.makespan() > 0.0);
    }

    #[test]
    fn legacy_shim_matches_session_output() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let shim = Planner::new(&graph, &cluster).plan().unwrap();
        let session = SpindleSession::new(cluster).plan(&graph).unwrap();
        assert_eq!(shim.waves(), session.waves());
        assert!((shim.theoretical_optimum() - session.theoretical_optimum()).abs() < 1e-12);
    }

    #[test]
    fn theoretical_optimum_skips_plan_construction() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let planner = Planner::new(&graph, &cluster);
        let direct = planner.theoretical_optimum().unwrap();
        let plan = planner.plan().unwrap();
        assert!((direct - plan.theoretical_optimum()).abs() < 1e-12);
        assert!(direct > 0.0);
    }

    #[test]
    fn config_accessors_work() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let config = PlannerConfig {
            placement: crate::PlacementStrategy::Sequential,
            ..PlannerConfig::default()
        };
        let planner = Planner::with_config(&graph, &cluster, config);
        assert_eq!(
            planner.config().placement,
            crate::PlacementStrategy::Sequential
        );
        assert!(planner.estimator().cached_curves() == 0);
        let plan = planner.plan().unwrap();
        plan.require_placement().unwrap();
    }

    #[test]
    fn curves_for_covers_every_metaop() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let mg = MetaGraph::contract(&graph);
        let est = ScalabilityEstimator::new(&cluster);
        let curves = curves_for(&mg, &est).unwrap();
        assert_eq!(curves.len(), mg.num_metaops());
    }
}
