//! Free-standing planning helpers shared by baselines and tests.
//!
//! The legacy one-shot `Planner` shim that used to live here was removed in
//! 0.3 — use [`SpindleSession`](crate::SpindleSession) (owned, cache-friendly,
//! staged) instead. Only [`curves_for`] remains.

use spindle_estimator::ScalabilityEstimator;

use crate::wavefront::CurveMap;
use crate::{MetaGraph, PlanError};

/// Helper for baseline planners and tests: builds the curve map of a MetaGraph
/// against an estimator.
///
/// # Errors
///
/// Returns [`PlanError::NoCurve`] for operators that cannot be profiled.
pub fn curves_for(
    metagraph: &MetaGraph,
    estimator: &ScalabilityEstimator,
) -> Result<CurveMap, PlanError> {
    let mut curves = CurveMap::new();
    for metaop in metagraph.metaops() {
        let curve = estimator
            .try_curve_for(metaop.representative())
            .map_err(|_| PlanError::NoCurve(metaop.id()))?;
        curves.insert(metaop.id(), curve);
    }
    Ok(curves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};

    /// A 2-task contrastive workload with heterogeneous towers.
    fn workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        for (name, m, seq, batch, layers) in [
            ("audio-text", Modality::Audio, 229u32, 8u32, 12usize),
            ("vision-text", Modality::Vision, 257, 4, 24),
        ] {
            let t = b.add_task(name, [m, Modality::Text], batch);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(m),
                    TensorShape::new(batch, seq, 768),
                    layers,
                )
                .unwrap();
            let text = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Text),
                    TensorShape::new(batch, 77, 768),
                    12,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.add_flow(*text.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn curves_for_covers_every_metaop() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let mg = MetaGraph::contract(&graph);
        let est = ScalabilityEstimator::new(&cluster);
        let curves = curves_for(&mg, &est).unwrap();
        assert_eq!(curves.len(), mg.num_metaops());
    }
}
