//! The end-to-end Spindle execution planner (Fig. 2).

use std::sync::Arc;
use std::time::Instant;

use spindle_cluster::ClusterSpec;
use spindle_estimator::{ScalabilityEstimator, ScalingCurve};
use spindle_graph::ComputationGraph;

use crate::mpsp::{self, MpspItem};
use crate::wavefront::CurveMap;
use crate::{
    allocator, placement, ExecutionPlan, MetaGraph, PlacementStrategy, PlanError, Wave,
};

/// Tunable knobs of the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Device-placement strategy (§3.5); [`PlacementStrategy::Sequential`] is
    /// the ablation variant of Fig. 10.
    pub placement: PlacementStrategy,
    /// Convergence tolerance of the MPSP bisection search, in seconds.
    pub bisection_epsilon: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            placement: PlacementStrategy::Locality,
            bisection_epsilon: mpsp::DEFAULT_EPSILON,
        }
    }
}

/// The Spindle execution planner: contracts the graph, estimates scalability,
/// allocates resources level by level, schedules waves and places them on
/// devices.
#[derive(Debug)]
pub struct Planner<'a> {
    graph: &'a ComputationGraph,
    cluster: &'a ClusterSpec,
    estimator: ScalabilityEstimator,
    config: PlannerConfig,
}

impl<'a> Planner<'a> {
    /// Creates a planner with the default configuration and the default
    /// analytic performance model for `cluster`.
    #[must_use]
    pub fn new(graph: &'a ComputationGraph, cluster: &'a ClusterSpec) -> Self {
        Self::with_config(graph, cluster, PlannerConfig::default())
    }

    /// Creates a planner with an explicit configuration.
    #[must_use]
    pub fn with_config(
        graph: &'a ComputationGraph,
        cluster: &'a ClusterSpec,
        config: PlannerConfig,
    ) -> Self {
        Self {
            graph,
            cluster,
            estimator: ScalabilityEstimator::new(cluster),
            config,
        }
    }

    /// Creates a planner that uses a caller-supplied estimator (e.g. one backed
    /// by recorded profiles instead of the analytic model).
    #[must_use]
    pub fn with_estimator(
        graph: &'a ComputationGraph,
        cluster: &'a ClusterSpec,
        estimator: ScalabilityEstimator,
        config: PlannerConfig,
    ) -> Self {
        Self {
            graph,
            cluster,
            estimator,
            config,
        }
    }

    /// The planner's configuration.
    #[must_use]
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// The estimator used by this planner.
    #[must_use]
    pub fn estimator(&self) -> &ScalabilityEstimator {
        &self.estimator
    }

    /// Runs the full planning pipeline and returns the execution plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyCluster`] for clusters without devices and
    /// [`PlanError::NoCurve`] if an operator cannot be profiled.
    pub fn plan(&self) -> Result<ExecutionPlan, PlanError> {
        let started = Instant::now();
        let num_devices = self.cluster.num_devices() as u32;
        if num_devices == 0 {
            return Err(PlanError::EmptyCluster);
        }

        // §3.1 graph contraction.
        let metagraph = MetaGraph::contract(self.graph);

        // §3.2 scalability estimation (cached per signature).
        let mut curves: CurveMap = CurveMap::new();
        for metaop in metagraph.metaops() {
            let curve: Arc<ScalingCurve> = self
                .estimator
                .try_curve_for(metaop.representative())
                .map_err(|_| PlanError::NoCurve(metaop.id()))?;
            curves.insert(metaop.id(), curve);
        }

        // §3.3 + §3.4: per-level allocation and wavefront scheduling.
        let mut waves: Vec<Wave> = Vec::new();
        let mut theoretical_optimum = 0.0;
        let mut now = 0.0;
        for level in metagraph.levels() {
            let items: Vec<MpspItem> = level
                .metaops
                .iter()
                .map(|&id| MpspItem {
                    metaop: id,
                    num_ops: metagraph.metaop(id).num_ops(),
                    curve: Arc::clone(&curves[&id]),
                })
                .collect();
            let solution = mpsp::solve(&items, num_devices, self.config.bisection_epsilon);
            theoretical_optimum += solution.optimal_time;
            let alloc_plan = allocator::discretize(&solution, &items);
            let (level_waves, end) = crate::wavefront::schedule_level(
                &alloc_plan,
                &curves,
                num_devices,
                level.index,
                now,
                waves.len(),
            );
            waves.extend(level_waves);
            now = end;
        }

        // Per-entry memory estimates feed the placement's memory balancing.
        for wave in &mut waves {
            for entry in &mut wave.entries {
                let rep = metagraph.metaop(entry.metaop).representative();
                entry.memory_per_device = self
                    .estimator
                    .memory_bytes(rep, entry.devices)
                    .saturating_mul(u64::from(entry.layers));
            }
        }

        let mut plan = ExecutionPlan::new(
            waves,
            metagraph,
            num_devices,
            theoretical_optimum,
            started.elapsed(),
        );
        // §3.5 device placement.
        placement::place(&mut plan, self.cluster, self.config.placement)?;
        plan.set_planning_time(started.elapsed());
        Ok(plan)
    }

    /// Convenience accessor used by experiments: the theoretical optimum
    /// `Σ C̃*` of the current workload without building the full plan.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`plan`](Self::plan).
    pub fn theoretical_optimum(&self) -> Result<f64, PlanError> {
        Ok(self.plan()?.theoretical_optimum())
    }
}

/// Helper for baseline planners and tests: builds the curve map of a MetaGraph
/// against an estimator.
///
/// # Errors
///
/// Returns [`PlanError::NoCurve`] for operators that cannot be profiled.
pub fn curves_for(
    metagraph: &MetaGraph,
    estimator: &ScalabilityEstimator,
) -> Result<CurveMap, PlanError> {
    let mut curves = CurveMap::new();
    for metaop in metagraph.metaops() {
        let curve = estimator
            .try_curve_for(metaop.representative())
            .map_err(|_| PlanError::NoCurve(metaop.id()))?;
        curves.insert(metaop.id(), curve);
    }
    Ok(curves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    /// A 2-task contrastive workload with heterogeneous towers.
    fn workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        for (name, m, seq, batch, layers) in [
            ("audio-text", Modality::Audio, 229u32, 8u32, 12usize),
            ("vision-text", Modality::Vision, 257, 4, 24),
        ] {
            let t = b.add_task(name, [m, Modality::Text], batch);
            let tower = b
                .add_op_chain(t, OpKind::Encoder(m), TensorShape::new(batch, seq, 768), layers)
                .unwrap();
            let text = b
                .add_op_chain(t, OpKind::Encoder(Modality::Text), TensorShape::new(batch, 77, 768), 12)
                .unwrap();
            let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768)).unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.add_flow(*text.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn plan_is_complete_and_valid() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = Planner::new(&graph, &cluster).plan().unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
        assert!(plan.makespan() > 0.0);
        assert!(plan.theoretical_optimum() > 0.0);
        assert!(plan.makespan() + 1e-9 >= plan.theoretical_optimum() * 0.99);
        assert!(plan.num_waves() >= 2);
    }

    #[test]
    fn makespan_close_to_theoretical_optimum() {
        // Fig. 11: the practical plan should stay within a few percent of C̃*.
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = Planner::new(&graph, &cluster).plan().unwrap();
        let ratio = plan.makespan() / plan.theoretical_optimum();
        assert!(ratio < 1.35, "deviation too large: {ratio:.3}");
    }

    #[test]
    fn more_devices_never_slow_the_plan_down_much() {
        let graph = workload();
        let small = Planner::new(&graph, &ClusterSpec::homogeneous(1, 8)).plan().unwrap();
        let large = Planner::new(&graph, &ClusterSpec::homogeneous(2, 8)).plan().unwrap();
        assert!(large.makespan() <= small.makespan() * 1.05);
    }

    #[test]
    fn sequential_placement_config_is_respected() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let config = PlannerConfig {
            placement: PlacementStrategy::Sequential,
            ..PlannerConfig::default()
        };
        let planner = Planner::with_config(&graph, &cluster, config);
        assert_eq!(planner.config().placement, PlacementStrategy::Sequential);
        let plan = planner.plan().unwrap();
        plan.require_placement().unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn planning_time_is_recorded_and_small() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(4, 8);
        let plan = Planner::new(&graph, &cluster).plan().unwrap();
        // Fig. 12: planning takes seconds at most; this small case must be
        // well under a second.
        assert!(plan.planning_time().as_secs_f64() < 1.0);
        assert!(plan.planning_time().as_nanos() > 0);
    }

    #[test]
    fn curves_for_covers_every_metaop() {
        let graph = workload();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let mg = MetaGraph::contract(&graph);
        let est = ScalabilityEstimator::new(&cluster);
        let curves = curves_for(&mg, &est).unwrap();
        assert_eq!(curves.len(), mg.num_metaops());
    }
}
