//! The long-lived planning session: owned state, staged pipeline, and a
//! persistent cross-plan curve cache.

use std::sync::Arc;
use std::time::Instant;

use spindle_cluster::{ClusterSpec, DeviceId, LinkClass, NodeId};
use spindle_estimator::{CurveCacheStats, ScalabilityEstimator, DEFAULT_CURVE_CACHE_BUDGET};
use spindle_graph::ComputationGraph;

use crate::pipeline::{self, ContractedGraph, CurveSet, LevelSchedule};
use crate::structural::{
    PlacedSkeleton, PlanKey, StructuralCacheStats, StructuralPlanCache, StructuralReuse,
    DEFAULT_STRUCTURAL_CACHE_BUDGET,
};
use crate::{
    mpsp, CacheTelemetry, ExecutionPlan, PlacementCheckpoint, PlacementStrategy, PlanError,
    PlanningStats, Wave,
};

/// One produced plan with its hot-path counters, structural-reuse probe and
/// topology-change impact (all-zero when the topology did not change).
type PhasePlan = (
    ExecutionPlan,
    PlanningStats,
    StructuralReuse,
    TopologyImpact,
);
type PhaseResult = Result<PhasePlan, PlanError>;

/// What a topology change cost one re-plan: how many devices the session lost
/// relative to the placement being reused, how much of the plan had to be
/// re-placed, and the estimated parameter-migration traffic.
///
/// Migration is priced with the analytical α-β link model
/// ([`InterconnectSpec::transfer_time`](spindle_cluster::InterconnectSpec::transfer_time)):
/// for every MetaOp whose placement shifted, the bytes resident per lost
/// device move once over the cheapest class of link that connects an old
/// replica to the new device (intra-island when a surviving replica shares
/// the island, inter-island otherwise), and the per-transfer times are
/// summed — a serialized upper bound. The runtime simulator charges the finer
/// contended cost by pushing the same transfers through its flow model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TopologyImpact {
    /// Devices lost relative to the topology the reused placement was made
    /// for (0 when the topology did not shrink since the last plan of this
    /// structure).
    pub devices_lost: usize,
    /// Levels whose placement had to be redone on the surviving device set.
    /// A clean prefix of levels (placements untouched by the loss) keeps its
    /// placements and pays zero migration.
    pub levels_replaced: usize,
    /// Parameter bytes that must move to realize the new placement. Zero when
    /// the previous placement is unknown (nothing to diff against).
    pub migration_bytes: u64,
    /// Serialized α-β estimate of the migration time, seconds.
    pub migration_cost_s: f64,
    /// Distinct re-placed MetaOps whose every old replica died: no survivor
    /// can source their state, so it must be re-materialised from the
    /// checkpoint tier. Always counted, whether or not the caller models
    /// checkpoints.
    pub rematerialized_metaops: usize,
    /// State bytes of the re-materialised MetaOps' new placements, restored
    /// from the checkpoint tier rather than migrated from survivors.
    pub restore_bytes: u64,
}

/// Tunable knobs of the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Device-placement strategy (§3.5); [`PlacementStrategy::Sequential`] is
    /// the ablation variant of Fig. 10.
    pub placement: PlacementStrategy,
    /// Convergence tolerance of the MPSP bisection search, in seconds.
    pub bisection_epsilon: f64,
    /// Memoize per-level planning artifacts and placed plan skeletons in the
    /// session's [`StructuralPlanCache`], so re-planning after task churn
    /// re-solves only the dirty levels (default: on). Disable to force every
    /// plan through the full pipeline, e.g. to measure the incremental
    /// speedup.
    pub structural_cache: bool,
    /// Byte budget of the structural plan cache
    /// (default: [`DEFAULT_STRUCTURAL_CACHE_BUDGET`]). Once the accounted
    /// bytes exceed the budget, least-recently-used artifacts are evicted;
    /// `usize::MAX` disables eviction. Applied on every planning pass, so
    /// changes through [`SpindleSession::config_mut`] take effect
    /// immediately.
    pub structural_cache_budget: usize,
    /// Byte budget of the estimator's curve cache
    /// (default: [`DEFAULT_CURVE_CACHE_BUDGET`]); semantics as for
    /// [`structural_cache_budget`](Self::structural_cache_budget). Note that
    /// sessions pooling one estimator share one budgeted cache.
    pub curve_cache_budget: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            placement: PlacementStrategy::Locality,
            bisection_epsilon: mpsp::DEFAULT_EPSILON,
            structural_cache: true,
            structural_cache_budget: DEFAULT_STRUCTURAL_CACHE_BUDGET,
            curve_cache_budget: DEFAULT_CURVE_CACHE_BUDGET,
        }
    }
}

/// The result of an online re-plan: the new execution plan plus a probe of
/// how much the session's persistent curve cache helped.
#[derive(Debug)]
pub struct ReplanOutcome {
    /// The freshly produced plan for the changed workload.
    pub plan: ExecutionPlan,
    /// Operator signatures that had to be profiled and fitted anew.
    pub new_curve_fits: usize,
    /// Curve-cache hits served while producing this plan.
    pub cache_hits: usize,
    /// `true` if the cache was fully warm (zero new fits).
    pub warm: bool,
    /// MetaLevels of the re-planned graph.
    pub levels_total: usize,
    /// Levels spliced from the structural plan cache instead of being
    /// re-solved (MPSP + wavefront + memory estimation skipped).
    pub levels_reused: usize,
    /// `true` if the fully placed wave list was served structurally (every
    /// level clean and the plan structure seen before), skipping placement.
    pub placement_reused: bool,
    /// Cache telemetry for this re-plan: `cache.bytes` is the bytes held by
    /// the session's caches (curve cache plus structural plan cache) after
    /// the re-plan, `cache.evictions` counts entries evicted *during this
    /// re-plan* to stay within the configured byte budgets (both caches
    /// combined).
    pub cache: CacheTelemetry,
    /// Devices lost since the placement being reused was made (0 when the
    /// topology did not shrink; see [`TopologyImpact::devices_lost`]).
    pub devices_lost: usize,
    /// Levels re-placed onto the surviving device set after a topology
    /// change; the remaining `levels_total - levels_replaced` clean-prefix
    /// levels kept their placements and paid zero migration.
    pub levels_replaced: usize,
    /// Parameter bytes that must move to realize the new placement
    /// ([`TopologyImpact::migration_bytes`]).
    pub migration_bytes: u64,
    /// Serialized α-β estimate of the migration time, seconds
    /// ([`TopologyImpact::migration_cost_s`]).
    pub migration_cost: f64,
    /// Re-placed MetaOps that lost every replica and must restore from the
    /// checkpoint tier ([`TopologyImpact::rematerialized_metaops`]).
    pub rematerialized_metaops: usize,
    /// State bytes restored from the checkpoint tier
    /// ([`TopologyImpact::restore_bytes`]).
    pub restore_bytes: u64,
}

impl ReplanOutcome {
    /// Cache hit rate of this re-plan: hits over total lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.new_curve_fits;
        if total == 0 {
            return 1.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Fraction of levels served from the structural cache.
    #[must_use]
    pub fn level_reuse_rate(&self) -> f64 {
        if self.levels_total == 0 {
            return 1.0;
        }
        self.levels_reused as f64 / self.levels_total as f64
    }
}

/// A long-lived Spindle planning session bound to one cluster.
///
/// Unlike a one-shot planner invocation, a session *owns* its
/// state: the cluster description (shared via [`Arc`]), the scalability
/// estimator with its persistent curve cache, and a
/// [`StructuralPlanCache`](crate::StructuralPlanCache) memoizing per-level
/// planning artifacts and placed plan skeletons. In the dynamic multi-task
/// scenario of the paper's Appendix D (the task mix changes, the system
/// re-plans at every phase), a warm session re-fits **zero** curves for
/// workloads it has already profiled *and* re-solves only the MetaLevels a
/// task-mix change actually touched — clean levels are spliced from cached
/// fragments and recurring plan structures reuse their placed waves
/// wholesale, bit-identical to planning from scratch.
///
/// A session plans any number of workloads:
///
/// ```
/// use spindle_cluster::ClusterSpec;
/// use spindle_core::SpindleSession;
/// use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new();
/// let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
/// let audio = b.add_op_chain(t, OpKind::Encoder(Modality::Audio), TensorShape::new(8, 229, 768), 6)?;
/// let text = b.add_op_chain(t, OpKind::Encoder(Modality::Text), TensorShape::new(8, 77, 768), 6)?;
/// let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
/// b.add_flow(*audio.last().unwrap(), loss)?;
/// b.add_flow(*text.last().unwrap(), loss)?;
/// let graph = b.build()?;
///
/// let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
/// let cold = session.plan(&graph)?;
/// let fits_after_cold = session.curve_fits();
/// let warm = session.plan(&graph)?; // cache-served: zero new fits
/// assert_eq!(session.curve_fits(), fits_after_cold);
/// assert_eq!(cold.waves(), warm.waves());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SpindleSession {
    /// The *active* cluster — `pristine` minus the currently `removed`
    /// devices. All planning happens against this.
    cluster: Arc<ClusterSpec>,
    /// The full cluster as constructed, before any churn.
    pristine: Arc<ClusterSpec>,
    /// Currently removed device ids (sorted, deduplicated).
    removed: Vec<DeviceId>,
    /// The active device set before the most recent topology change:
    /// `(device count, missing ids)`. Lets the next re-plan probe the
    /// structural cache for the pre-churn placed skeleton and reuse its
    /// clean-prefix placements.
    prev_topology: Option<(u32, Vec<u32>)>,
    estimator: Arc<ScalabilityEstimator>,
    config: PlannerConfig,
    plans_produced: usize,
    stats: PlanningStats,
    structural: StructuralPlanCache,
}

impl SpindleSession {
    /// Creates a session for `cluster` with the default configuration and the
    /// default analytic performance model.
    #[must_use]
    pub fn new(cluster: impl Into<Arc<ClusterSpec>>) -> Self {
        Self::with_config(cluster, PlannerConfig::default())
    }

    /// Creates a session with an explicit configuration.
    #[must_use]
    pub fn with_config(cluster: impl Into<Arc<ClusterSpec>>, config: PlannerConfig) -> Self {
        let cluster = cluster.into();
        let estimator = Arc::new(ScalabilityEstimator::new(&cluster));
        Self::with_estimator(cluster, estimator, config)
    }

    /// Creates a session around a caller-supplied estimator (e.g. one backed
    /// by recorded profiles, or one shared with another session to pool curve
    /// caches).
    #[must_use]
    pub fn with_estimator(
        cluster: impl Into<Arc<ClusterSpec>>,
        estimator: Arc<ScalabilityEstimator>,
        config: PlannerConfig,
    ) -> Self {
        let cluster = cluster.into();
        Self {
            pristine: Arc::clone(&cluster),
            cluster,
            removed: Vec::new(),
            prev_topology: None,
            estimator,
            config,
            plans_produced: 0,
            stats: PlanningStats::default(),
            structural: StructuralPlanCache::new(),
        }
    }

    /// The cluster this session plans for.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// A shareable handle to the cluster description.
    #[must_use]
    pub fn cluster_handle(&self) -> Arc<ClusterSpec> {
        Arc::clone(&self.cluster)
    }

    /// The full cluster this session was created with, before any device
    /// churn.
    #[must_use]
    pub fn pristine_cluster(&self) -> &ClusterSpec {
        &self.pristine
    }

    /// Devices currently removed from the active cluster (sorted).
    #[must_use]
    pub fn removed_devices(&self) -> &[DeviceId] {
        &self.removed
    }

    /// The `(device count, missing ids)` signature of a cluster's active
    /// device set within its dense id space.
    fn device_set_signature(cluster: &ClusterSpec) -> (u32, Vec<u32>) {
        let space = cluster.device_space();
        let mut present = vec![false; space];
        for d in cluster.all_devices().iter() {
            present[d.index()] = true;
        }
        let missing = (0..space as u32)
            .filter(|&i| !present[i as usize])
            .collect();
        (cluster.num_devices() as u32, missing)
    }

    /// Rebuilds the active cluster from `pristine` minus `removed`, recording
    /// the previous active set for partial placement reuse. Returns the
    /// signed change in device count (positive = devices lost).
    fn apply_topology(&mut self) -> Result<isize, PlanError> {
        let before = self.cluster.num_devices() as isize;
        let next = self
            .pristine
            .without_devices(&self.removed)
            .map_err(|_| PlanError::EmptyCluster)?;
        let after = next.num_devices() as isize;
        if before != after || next.all_devices() != self.cluster.all_devices() {
            self.prev_topology = Some(Self::device_set_signature(&self.cluster));
            self.cluster = Arc::new(next);
        }
        Ok(before - after)
    }

    /// Removes `devices` from the active cluster — the topology-change entry
    /// point for device churn (spot reclamation, GPU failure, preemption).
    /// Ids already removed or unknown are ignored. Subsequent plans place
    /// onto the surviving set only; the next re-plan of a structure planned
    /// before the change reuses the placements of its clean prefix of levels
    /// and reports the migration the dirty suffix costs (see
    /// [`ReplanOutcome`]).
    ///
    /// Returns the number of devices actually lost.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyCluster`] (leaving the session unchanged) if
    /// the removal would leave no device.
    pub fn remove_devices(&mut self, devices: &[DeviceId]) -> Result<usize, PlanError> {
        let saved = self.removed.clone();
        for &d in devices {
            if !self.removed.contains(&d) {
                self.removed.push(d);
            }
        }
        self.removed.sort_unstable();
        match self.apply_topology() {
            Ok(delta) => Ok(delta.max(0) as usize),
            Err(e) => {
                self.removed = saved;
                Err(e)
            }
        }
    }

    /// Returns previously removed `devices` to the active cluster (spot
    /// capacity coming back, a node rejoining). Ids not currently removed are
    /// ignored. A restore that returns the cluster to a previously planned
    /// topology lets re-plans serve placed skeletons cached for that
    /// topology — bit-identical to cold plans of the restored cluster.
    ///
    /// Returns the number of devices actually regained.
    pub fn restore_devices(&mut self, devices: &[DeviceId]) -> usize {
        self.removed.retain(|d| !devices.contains(d));
        match self.apply_topology() {
            Ok(delta) => (-delta).max(0) as usize,
            Err(_) => unreachable!("restoring devices cannot empty the cluster"),
        }
    }

    /// The session's estimator (and its persistent curve cache).
    #[must_use]
    pub fn estimator(&self) -> &ScalabilityEstimator {
        &self.estimator
    }

    /// A shareable handle to the estimator, e.g. for baseline planners that
    /// want to reuse the session's curve cache.
    #[must_use]
    pub fn estimator_handle(&self) -> Arc<ScalabilityEstimator> {
        Arc::clone(&self.estimator)
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to switch the placement
    /// strategy between plans).
    pub fn config_mut(&mut self) -> &mut PlannerConfig {
        &mut self.config
    }

    /// Number of plans this session has produced.
    #[must_use]
    pub fn plans_produced(&self) -> usize {
        self.plans_produced
    }

    /// Number of distinct operator signatures whose curves are cached.
    #[must_use]
    pub fn cached_curves(&self) -> usize {
        self.estimator.cached_curves()
    }

    /// Number of profile-and-fit operations performed over the session's
    /// lifetime. Re-planning a workload whose operator signatures were all
    /// seen before leaves this unchanged.
    #[must_use]
    pub fn curve_fits(&self) -> usize {
        self.estimator.curve_fits()
    }

    /// A snapshot of the curve-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CurveCacheStats {
        self.estimator.cache_stats()
    }

    /// A snapshot of the structural plan cache's counters (level artifacts,
    /// placed skeletons, hits and misses).
    #[must_use]
    pub fn structural_cache_stats(&self) -> StructuralCacheStats {
        self.structural.stats()
    }

    /// Drops every cached structural artifact (level schedules and placed
    /// skeletons). The curve cache is unaffected.
    pub fn clear_structural_cache(&mut self) {
        self.structural.clear();
    }

    /// Approximate bytes currently held by the session's caches: the
    /// estimator's curve cache plus the structural plan cache.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.estimator.cache_bytes() + self.structural.bytes()
    }

    /// Total cache entries evicted (both caches combined) to stay within the
    /// configured byte budgets, over the session's lifetime.
    #[must_use]
    pub fn cache_evictions(&self) -> usize {
        self.estimator.cache_evictions() + self.structural.evictions()
    }

    /// Accumulated hot-path counters over every plan this session produced:
    /// bisection iterations, waves crafted and the scratch-buffer high-water
    /// marks, plus a live snapshot of the cache byte/eviction gauges. Benches
    /// and tests use these to assert the allocation-free planning invariants
    /// (e.g. the MPSP scratch never grows beyond the largest level) instead
    /// of trusting them.
    #[must_use]
    pub fn planning_stats(&self) -> PlanningStats {
        let mut stats = self.stats;
        stats.cache = CacheTelemetry {
            bytes: self.cache_bytes(),
            evictions: self.cache_evictions() as u64,
        };
        stats
    }

    /// Stage 1: contracts a workload graph into its MetaGraph.
    #[must_use]
    pub fn contract(&self, graph: &ComputationGraph) -> ContractedGraph {
        ContractedGraph::new(graph)
    }

    /// Stage 2: resolves the scaling curve of every MetaOp, served from the
    /// session's curve cache wherever possible.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::NoCurve`] for MetaOps that cannot be profiled.
    pub fn resolve_curves(&self, contracted: &ContractedGraph) -> Result<CurveSet, PlanError> {
        CurveSet::resolve(contracted, &self.estimator)
    }

    /// Stage 3: allocates devices level by level (MPSP) and schedules the
    /// waves.
    #[must_use]
    pub fn schedule(&self, contracted: &ContractedGraph, curves: &CurveSet) -> LevelSchedule {
        LevelSchedule::build(
            contracted,
            curves,
            &self.estimator,
            self.cluster.num_devices() as u32,
            self.config.bisection_epsilon,
        )
    }

    /// Runs the full staged pipeline and returns the execution plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyCluster`] for clusters without devices and
    /// [`PlanError::NoCurve`] if an operator cannot be profiled.
    pub fn plan(&mut self, graph: &ComputationGraph) -> Result<ExecutionPlan, PlanError> {
        if self.cluster.num_devices() == 0 {
            return Err(PlanError::EmptyCluster);
        }
        let (plan, stats, _reuse, _impact) = self.plan_shared(graph)?;
        self.stats.merge(&stats);
        self.plans_produced += 1;
        Ok(plan)
    }

    /// Re-plans a (possibly changed) workload and reports how warm the
    /// session's caches were for it — the online re-planning hook used by
    /// the runtime's dynamic run loop when the task mix changes mid-run.
    ///
    /// Functionally identical to [`plan`](Self::plan); the extra value is the
    /// probe: how many genuinely new operator signatures had to be fitted
    /// versus how many were served from the curve cache, and how many
    /// MetaLevels (and whether the placement) were spliced from the
    /// structural plan cache instead of being re-solved. An incremental
    /// re-plan produces a plan bit-identical to a cold plan of the same
    /// graph; only the cost differs.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`plan`](Self::plan).
    pub fn replan(&mut self, graph: &ComputationGraph) -> Result<ReplanOutcome, PlanError> {
        if self.cluster.num_devices() == 0 {
            return Err(PlanError::EmptyCluster);
        }
        let before = self.cache_stats();
        let evictions_before = self.cache_evictions();
        let (plan, stats, reuse, impact) = self.plan_shared(graph)?;
        self.stats.merge(&stats);
        self.plans_produced += 1;
        let after = self.cache_stats();
        let new_curve_fits = after.fits.saturating_sub(before.fits);
        Ok(ReplanOutcome {
            plan,
            new_curve_fits,
            cache_hits: after.hits.saturating_sub(before.hits),
            warm: new_curve_fits == 0,
            levels_total: reuse.levels_total,
            levels_reused: reuse.levels_reused,
            placement_reused: reuse.placement_reused,
            cache: CacheTelemetry {
                bytes: self.cache_bytes(),
                evictions: self.cache_evictions().saturating_sub(evictions_before) as u64,
            },
            devices_lost: impact.devices_lost,
            levels_replaced: impact.levels_replaced,
            migration_bytes: impact.migration_bytes,
            migration_cost: impact.migration_cost_s,
            rematerialized_metaops: impact.rematerialized_metaops,
            restore_bytes: impact.restore_bytes,
        })
    }

    /// Plans several independent phase graphs concurrently, one scoped worker
    /// thread per phase, all sharing this session's curve cache (phase
    /// workers that hit signatures another phase already fitted serve them
    /// straight from the cache's read path).
    ///
    /// This is the re-planning fast path for dynamic schedules (Appendix D /
    /// Fig. 13): the task mix of every phase is known up front, so the phases
    /// can be planned in parallel instead of one after another. Plans are
    /// returned in the order of `graphs`, and the produced plans are
    /// identical to sequential [`plan`](Self::plan) calls.
    ///
    /// The worker count is capped at the machine's available parallelism
    /// (phases are striped across workers); when only one hardware thread is
    /// available — or only one phase was passed — planning runs inline, since
    /// a spawned thread would add scheduling overhead without concurrency.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyCluster`] for clusters without devices and
    /// the first phase's [`PlanError::NoCurve`] if an operator cannot be
    /// profiled. Plans of phases that succeeded before the failing one are
    /// discarded, but their fitted curves stay in the session cache.
    pub fn plan_phases_parallel(
        &mut self,
        graphs: &[&ComputationGraph],
    ) -> Result<Vec<ExecutionPlan>, PlanError> {
        if self.cluster.num_devices() == 0 {
            return Err(PlanError::EmptyCluster);
        }
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(graphs.len());
        let results: Vec<PhaseResult> = if workers <= 1 {
            graphs.iter().map(|graph| self.plan_shared(graph)).collect()
        } else {
            let shared: &Self = self;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            graphs
                                .iter()
                                .enumerate()
                                .skip(w)
                                .step_by(workers)
                                .map(|(i, graph)| (i, shared.plan_shared(graph)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let mut slots: Vec<Option<PhaseResult>> = (0..graphs.len()).map(|_| None).collect();
                for handle in handles {
                    for (i, result) in handle.join().expect("phase planning worker panicked") {
                        slots[i] = Some(result);
                    }
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("striped workers cover every phase"))
                    .collect()
            })
        };
        // Surface any failure before touching the session counters: a failed
        // pass must not leave `plans_produced`/`planning_stats` accounting
        // for plans the caller never received.
        let mut produced = Vec::with_capacity(results.len());
        for result in results {
            produced.push(result?);
        }
        let mut plans = Vec::with_capacity(produced.len());
        for (plan, stats, _reuse, _impact) in produced {
            self.stats.merge(&stats);
            self.plans_produced += 1;
            plans.push(plan);
        }
        Ok(plans)
    }

    /// One full pipeline pass against `&self` only — shared by the
    /// sequential, re-planning and phase-parallel entry points. Consults the
    /// structural plan cache (when enabled): a whole-plan hit skips stages 3
    /// and 4 entirely, per-level hits splice cached schedule fragments, and
    /// misses solve fresh and feed the cache for the next re-plan.
    fn plan_shared(&self, graph: &ComputationGraph) -> Result<PhasePlan, PlanError> {
        let started = Instant::now();
        // Apply the configured byte budgets before the pass touches either
        // cache (both calls are one relaxed load when unchanged), so
        // `config_mut` edits take effect on the very next plan.
        self.estimator
            .ensure_cache_budget(self.config.curve_cache_budget);
        self.structural
            .ensure_budget(self.config.structural_cache_budget);
        let contracted = self.contract(graph);
        let curves = self.resolve_curves(&contracted)?;
        let num_devices = self.cluster.num_devices() as u32;
        let device_space = self.cluster.device_space() as u32;
        let cache = if self.config.structural_cache {
            self.structural
                .ensure_epsilon(self.config.bisection_epsilon);
            Some(&self.structural)
        } else {
            None
        };
        let plan_key = cache.map(|_| {
            let (n, missing) = Self::device_set_signature(&self.cluster);
            PlanKey::with_device_set(contracted.metagraph(), n, missing, self.config.placement)
        });
        if let Some(skeleton) = plan_key
            .as_ref()
            .and_then(|k| cache.expect("key implies cache").skeleton(k))
        {
            // Whole-plan structural hit: clone the placed waves and attach
            // the freshly contracted MetaGraph. Bit-identical to the full
            // pipeline by construction of `PlanKey`.
            let levels_total = contracted.metagraph().levels().len();
            let mut plan = ExecutionPlan::new(
                skeleton.waves.clone(),
                contracted.metagraph_handle(),
                num_devices,
                skeleton.theoretical_optimum,
                started.elapsed(),
            );
            plan.set_device_space(device_space);
            let stats = PlanningStats {
                levels_reused: levels_total as u64,
                ..PlanningStats::default()
            };
            let reuse = StructuralReuse {
                levels_total,
                levels_reused: levels_total,
                placement_reused: true,
            };
            return Ok((plan, stats, reuse, TopologyImpact::default()));
        }
        // Migration-aware partial placement reuse: when the topology shrank
        // since this structure was last placed, salvage the clean prefix of
        // levels from the pre-churn skeleton instead of re-placing everything.
        let mut impact = TopologyImpact::default();
        if let (Some(c), Some((prev_n, prev_missing))) = (cache, self.prev_topology.as_ref()) {
            if *prev_n > num_devices && self.config.placement == PlacementStrategy::Locality {
                impact.devices_lost = (*prev_n - num_devices) as usize;
                let prev_key = PlanKey::with_device_set(
                    contracted.metagraph(),
                    *prev_n,
                    prev_missing.clone(),
                    self.config.placement,
                );
                if let Some(old) = c.skeleton(&prev_key) {
                    if let Some(result) =
                        self.replan_after_loss(&contracted, &curves, &old, c, impact, started)?
                    {
                        return Ok(result);
                    }
                } else {
                    // The pre-churn placement was evicted: nothing to diff
                    // against, so the whole plan is re-placed and the
                    // migration volume is unknown (reported as zero).
                    impact.levels_replaced = contracted.metagraph().levels().len();
                }
            }
        }
        let schedule = LevelSchedule::build_with_cache(
            &contracted,
            &curves,
            &self.estimator,
            num_devices,
            self.config.bisection_epsilon,
            cache,
        );
        let stats = schedule.stats();
        let reuse = StructuralReuse {
            levels_total: contracted.metagraph().levels().len(),
            levels_reused: stats.levels_reused as usize,
            placement_reused: false,
        };
        let (mut plan, checkpoints) = schedule.place_checkpointed(
            &contracted,
            &self.cluster,
            self.config.placement,
            started.elapsed(),
        )?;
        plan.set_planning_time(started.elapsed());
        if let (Some(c), Some(key)) = (cache, plan_key) {
            c.insert_skeleton(
                key,
                PlacedSkeleton {
                    waves: plan.waves().to_vec(),
                    theoretical_optimum: plan.theoretical_optimum(),
                    checkpoints,
                },
            );
        }
        Ok((plan, stats, reuse, impact))
    }

    /// The partial-reuse re-plan after device loss: keep the placements of
    /// the maximal clean prefix of levels (none of their placed devices was
    /// removed — they pay zero migration), rebuild and re-place the dirty
    /// suffix onto the surviving devices by resuming the placement pass from
    /// the last clean level's checkpoint, and price the parameter migration
    /// the suffix's placement shift causes. Returns `Ok(None)` when the old
    /// skeleton cannot seed a resume (no usable checkpoints) — the caller
    /// falls back to a full re-plan.
    fn replan_after_loss(
        &self,
        contracted: &ContractedGraph,
        curves: &CurveSet,
        old: &PlacedSkeleton,
        cache: &StructuralPlanCache,
        mut impact: TopologyImpact,
        started: Instant,
    ) -> Result<Option<PhasePlan>, PlanError> {
        let num_devices = self.cluster.num_devices() as u32;
        let device_space = self.cluster.device_space();
        let levels_total = contracted.metagraph().levels().len();
        let num_metaops = contracted.metagraph().num_metaops();
        let mut present = vec![false; device_space];
        for d in self.cluster.all_devices().iter() {
            present[d.index()] = true;
        }
        // The clean prefix: maximal leading run of levels whose placements
        // reference surviving devices only.
        let mut clean_prefix = 0usize;
        'levels: for lvl in 0..levels_total {
            for wave in old.waves.iter().filter(|w| w.level == lvl) {
                for entry in &wave.entries {
                    let clean = entry.placement.as_ref().is_some_and(|g| {
                        g.iter()
                            .all(|d| d.index() < device_space && present[d.index()])
                    });
                    if !clean {
                        break 'levels;
                    }
                }
            }
            clean_prefix += 1;
        }
        let new_key = {
            let (n, missing) = Self::device_set_signature(&self.cluster);
            PlanKey::with_device_set(contracted.metagraph(), n, missing, self.config.placement)
        };
        if clean_prefix == levels_total {
            // Every placed device survived: the old plan is feasible on the
            // surviving set as-is (disjoint placements on survivors cannot
            // exceed the surviving capacity) and pays zero migration.
            let mut plan = ExecutionPlan::new(
                old.waves.clone(),
                contracted.metagraph_handle(),
                num_devices,
                old.theoretical_optimum,
                started.elapsed(),
            );
            plan.set_device_space(device_space as u32);
            cache.insert_skeleton(
                new_key,
                PlacedSkeleton {
                    waves: old.waves.clone(),
                    theoretical_optimum: old.theoretical_optimum,
                    checkpoints: old.checkpoints.clone(),
                },
            );
            let stats = PlanningStats {
                levels_reused: levels_total as u64,
                ..PlanningStats::default()
            };
            let reuse = StructuralReuse {
                levels_total,
                levels_reused: levels_total,
                placement_reused: true,
            };
            impact.levels_replaced = 0;
            return Ok(Some((plan, stats, reuse, impact)));
        }
        if clean_prefix > 0 && old.checkpoints.len() < clean_prefix {
            // Skeleton predates checkpointing (or used a stateless strategy):
            // nothing to resume from.
            return Ok(None);
        }
        // Where the suffix MetaOps used to live, for the migration diff.
        let mut old_sites: Vec<Vec<DeviceId>> = vec![Vec::new(); num_metaops];
        for wave in old.waves.iter().filter(|w| w.level >= clean_prefix) {
            for entry in &wave.entries {
                if let Some(group) = &entry.placement {
                    let sites = &mut old_sites[entry.metaop.index()];
                    for d in group.iter() {
                        if !sites.contains(&d) {
                            sites.push(d);
                        }
                    }
                }
            }
        }
        // Re-solve every level at the surviving capacity (level artifacts
        // cached per capacity make repeats cheap), keep the clean prefix's
        // old waves verbatim, and splice the freshly scheduled suffix after
        // them.
        let schedule = LevelSchedule::build_with_cache(
            contracted,
            curves,
            &self.estimator,
            num_devices,
            self.config.bisection_epsilon,
            Some(cache),
        );
        let stats = schedule.stats();
        let (new_waves, new_optimum) = schedule.into_parts();
        let mut waves: Vec<Wave> = old
            .waves
            .iter()
            .filter(|w| w.level < clean_prefix)
            .cloned()
            .collect();
        let prefix_len = waves.len();
        let mut now = waves.last().map_or(0.0, Wave::end);
        for mut wave in new_waves.into_iter().filter(|w| w.level >= clean_prefix) {
            wave.index = waves.len();
            wave.start = now;
            now = wave.end();
            waves.push(wave);
        }
        let mut plan = ExecutionPlan::new(
            waves,
            contracted.metagraph_handle(),
            num_devices,
            new_optimum,
            started.elapsed(),
        );
        crate::placement::check_capacity(&plan, &self.cluster)?;
        let resume = if clean_prefix > 0 {
            old.checkpoints[clean_prefix - 1].clone()
        } else {
            PlacementCheckpoint::default()
        };
        let suffix_checkpoints =
            crate::placement::place_locality_resume(&mut plan, &self.cluster, prefix_len, &resume);
        plan.set_device_space(device_space as u32);
        // Price the migration: for every suffix MetaOp, each device it now
        // occupies but did not before receives that MetaOp's per-device bytes
        // over the cheapest link class connecting it to a surviving old
        // replica (intra-island when one shares the island, inter-island
        // otherwise — including the no-survivor case, a checkpoint restore).
        let interconnect = self.cluster.interconnect();
        let mut new_sites: Vec<Vec<DeviceId>> = vec![Vec::new(); num_metaops];
        let mut bytes_per_device: Vec<u64> = vec![0; num_metaops];
        for wave in plan.waves().iter().skip(prefix_len) {
            for entry in &wave.entries {
                let m = entry.metaop.index();
                bytes_per_device[m] = bytes_per_device[m].max(entry.memory_per_device);
                if let Some(group) = &entry.placement {
                    for d in group.iter() {
                        if !new_sites[m].contains(&d) {
                            new_sites[m].push(d);
                        }
                    }
                }
            }
        }
        for m in 0..num_metaops {
            let bytes = bytes_per_device[m];
            if bytes == 0 {
                continue;
            }
            let old_nodes: Vec<NodeId> = old_sites[m]
                .iter()
                .filter(|d| d.index() < device_space && present[d.index()])
                .filter_map(|&d| self.cluster.node_of(d).ok())
                .collect();
            // Every old replica died: the MetaOp cannot be migrated at all —
            // its new sites restore from the checkpoint tier. Count it so
            // lost state is surfaced, never silently dropped.
            let rematerialized = !old_sites[m].is_empty() && old_nodes.is_empty();
            if rematerialized && !new_sites[m].is_empty() {
                impact.rematerialized_metaops += 1;
            }
            for &d in new_sites[m].iter().filter(|d| !old_sites[m].contains(d)) {
                impact.migration_bytes += bytes;
                if rematerialized {
                    impact.restore_bytes += bytes;
                }
                let class = match self.cluster.node_of(d) {
                    Ok(node) if old_nodes.contains(&node) => LinkClass::IntraIsland,
                    _ => LinkClass::InterIsland,
                };
                impact.migration_cost_s += interconnect.transfer_time(class, bytes);
            }
        }
        let mut checkpoints = old.checkpoints[..clean_prefix].to_vec();
        checkpoints.extend(suffix_checkpoints);
        cache.insert_skeleton(
            new_key,
            PlacedSkeleton {
                waves: plan.waves().to_vec(),
                theoretical_optimum: new_optimum,
                checkpoints,
            },
        );
        plan.set_planning_time(started.elapsed());
        let reuse = StructuralReuse {
            levels_total,
            levels_reused: stats.levels_reused as usize,
            placement_reused: false,
        };
        impact.levels_replaced = levels_total - clean_prefix;
        Ok(Some((plan, stats, reuse, impact)))
    }

    /// The theoretical optimum `Σ C̃*` of a workload on this session's
    /// cluster, computed directly from the per-level MPSP solutions — no
    /// discretisation, wavefront scheduling or device placement.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`plan`](Self::plan).
    pub fn theoretical_optimum(&self, graph: &ComputationGraph) -> Result<f64, PlanError> {
        if self.cluster.num_devices() == 0 {
            return Err(PlanError::EmptyCluster);
        }
        let contracted = self.contract(graph);
        let curves = self.resolve_curves(&contracted)?;
        Ok(pipeline::theoretical_optimum(
            &contracted,
            &curves,
            self.cluster.num_devices() as u32,
            self.config.bisection_epsilon,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlacementStrategy;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    /// A 2-task contrastive workload with heterogeneous towers.
    fn workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        for (name, m, seq, batch, layers) in [
            ("audio-text", Modality::Audio, 229u32, 8u32, 12usize),
            ("vision-text", Modality::Vision, 257, 4, 24),
        ] {
            let t = b.add_task(name, [m, Modality::Text], batch);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(m),
                    TensorShape::new(batch, seq, 768),
                    layers,
                )
                .unwrap();
            let text = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Text),
                    TensorShape::new(batch, 77, 768),
                    12,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.add_flow(*text.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn session_plan_is_complete_and_valid() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let plan = session.plan(&graph).unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
        assert!(plan.makespan() > 0.0);
        assert!(plan.theoretical_optimum() > 0.0);
        assert!(plan.makespan() + 1e-9 >= plan.theoretical_optimum() * 0.99);
        assert!(plan.num_waves() >= 2);
        assert_eq!(session.plans_produced(), 1);
    }

    #[test]
    fn makespan_close_to_theoretical_optimum() {
        // Fig. 11: the practical plan should stay within a few percent of C̃*.
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let plan = session.plan(&graph).unwrap();
        let ratio = plan.makespan() / plan.theoretical_optimum();
        assert!(ratio < 1.35, "deviation too large: {ratio:.3}");
    }

    #[test]
    fn more_devices_never_slow_the_plan_down_much() {
        let graph = workload();
        let small = SpindleSession::new(ClusterSpec::homogeneous(1, 8))
            .plan(&graph)
            .unwrap();
        let large = SpindleSession::new(ClusterSpec::homogeneous(2, 8))
            .plan(&graph)
            .unwrap();
        assert!(large.makespan() <= small.makespan() * 1.05);
    }

    #[test]
    fn replanning_the_same_workload_performs_no_new_fits() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let cold = session.plan(&graph).unwrap();
        let fits = session.curve_fits();
        assert!(fits > 0);
        let warm = session.plan(&graph).unwrap();
        assert_eq!(session.curve_fits(), fits, "warm re-plan must not re-fit");
        assert_eq!(cold.waves(), warm.waves());
        assert_eq!(session.plans_produced(), 2);
        assert!(session.cache_stats().hits > 0);
    }

    #[test]
    fn replan_probe_reports_cache_warmth() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let cold = session.replan(&graph).unwrap();
        assert!(cold.new_curve_fits > 0);
        assert!(!cold.warm);
        assert!(cold.plan.makespan() > 0.0);
        let warm = session.replan(&graph).unwrap();
        assert_eq!(warm.new_curve_fits, 0);
        assert!(warm.warm);
        assert!(warm.cache_hits > 0);
        assert!((warm.hit_rate() - 1.0).abs() < 1e-12);
        assert!(cold.hit_rate() < 1.0);
        assert_eq!(warm.plan.waves(), cold.plan.waves());
    }

    #[test]
    fn sequential_placement_config_is_respected() {
        let graph = workload();
        let config = PlannerConfig {
            placement: PlacementStrategy::Sequential,
            ..PlannerConfig::default()
        };
        let mut session = SpindleSession::with_config(ClusterSpec::homogeneous(2, 8), config);
        assert_eq!(session.config().placement, PlacementStrategy::Sequential);
        let plan = session.plan(&graph).unwrap();
        plan.require_placement().unwrap();
        plan.validate().unwrap();
        // Switching the strategy between plans works too.
        session.config_mut().placement = PlacementStrategy::Locality;
        let plan = session.plan(&graph).unwrap();
        plan.validate().unwrap();
    }

    #[test]
    fn planning_time_is_recorded_and_small() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(4, 8));
        let plan = session.plan(&graph).unwrap();
        // Fig. 12: planning takes seconds at most; this small case must be
        // well under a second.
        assert!(plan.planning_time().as_secs_f64() < 1.0);
        assert!(plan.planning_time().as_nanos() > 0);
    }

    #[test]
    fn theoretical_optimum_matches_full_plan_without_building_it() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let direct = session.theoretical_optimum(&graph).unwrap();
        let plan = session.plan(&graph).unwrap();
        assert!((direct - plan.theoretical_optimum()).abs() < 1e-12);
    }

    #[test]
    fn parallel_phase_planning_matches_sequential() {
        let schedule_graphs = [workload(), workload()];
        let extra = {
            // A third, different phase so the parallel pass mixes cached and
            // fresh signatures.
            let mut b = GraphBuilder::new();
            let t = b.add_task("solo", [Modality::Depth, Modality::Text], 16);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Depth),
                    TensorShape::new(16, 99, 512),
                    8,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(16, 1, 512))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.build().unwrap()
        };
        let graphs: Vec<&ComputationGraph> = vec![&schedule_graphs[0], &schedule_graphs[1], &extra];

        let mut sequential = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let expected: Vec<_> = graphs.iter().map(|g| sequential.plan(g).unwrap()).collect();

        let mut parallel = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let got = parallel.plan_phases_parallel(&graphs).unwrap();
        assert_eq!(got.len(), expected.len());
        for (p, e) in got.iter().zip(&expected) {
            assert_eq!(p.waves(), e.waves());
            assert!((p.theoretical_optimum() - e.theoretical_optimum()).abs() < 1e-12);
        }
        assert_eq!(parallel.plans_produced(), 3);
        assert_eq!(
            parallel.planning_stats().waves_crafted,
            sequential.planning_stats().waves_crafted
        );
        // The shared cache never fits one signature twice, even when phases
        // race on it.
        assert_eq!(parallel.curve_fits(), parallel.cached_curves());
    }

    #[test]
    fn parallel_phase_planning_on_warm_session_performs_no_fits() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        session.plan(&graph).unwrap();
        let fits = session.curve_fits();
        let graphs = vec![&graph, &graph, &graph, &graph];
        let plans = session.plan_phases_parallel(&graphs).unwrap();
        assert_eq!(plans.len(), 4);
        assert_eq!(session.curve_fits(), fits, "warm phases must not re-fit");
        assert_eq!(session.plans_produced(), 5);
    }

    #[test]
    fn planning_stats_expose_hot_path_counters() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        assert_eq!(session.planning_stats(), crate::PlanningStats::default());
        let plan = session.plan(&graph).unwrap();
        let stats = session.planning_stats();
        assert!(stats.mpsp_solves > 0);
        assert!(stats.bisection_iterations > 0);
        assert_eq!(stats.waves_crafted, plan.num_waves() as u64);
        // Zero-alloc invariant: the scratch buffers never grow beyond the
        // largest level of the workload.
        let contracted = session.contract(&graph);
        let largest_level = contracted
            .metagraph()
            .levels()
            .iter()
            .map(|l| l.metaops.len())
            .max()
            .unwrap();
        assert!(stats.mpsp_scratch_high_water <= largest_level);
        assert!(stats.wavefront_scratch_high_water <= largest_level);
        // A second plan of the same graph is served from the structural
        // cache: no new waves are crafted, and the reuse counters account
        // for every level.
        session.plan(&graph).unwrap();
        let stats = session.planning_stats();
        assert_eq!(stats.waves_crafted, plan.num_waves() as u64);
        assert_eq!(
            stats.levels_reused,
            contracted.metagraph().levels().len() as u64
        );
        assert!(session.structural_cache_stats().skeleton_hits > 0);
        // With the structural cache disabled the pipeline runs in full again.
        session.config_mut().structural_cache = false;
        session.plan(&graph).unwrap();
        assert_eq!(
            session.planning_stats().waves_crafted,
            2 * plan.num_waves() as u64
        );
    }

    #[test]
    fn cache_budgets_flow_from_config_and_are_reported() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let cold = session.replan(&graph).unwrap();
        assert!(
            cold.cache.bytes > 0,
            "caches hold the cold plan's artifacts"
        );
        assert_eq!(cold.cache.evictions, 0, "default budgets are generous");
        let stats = session.planning_stats();
        assert_eq!(stats.cache.bytes, session.cache_bytes());
        assert_eq!(stats.cache.evictions, 0);
        // Starve both caches: the next pass evicts everything it inserts.
        session.config_mut().structural_cache_budget = 1;
        session.config_mut().curve_cache_budget = 1;
        let starved = session.replan(&graph).unwrap();
        assert!(starved.cache.evictions > 0, "tiny budgets must evict");
        assert!(session.cache_bytes() <= 2, "hard byte bound on both caches");
        assert_eq!(starved.plan.waves(), cold.plan.waves(), "plans unaffected");
        // A post-eviction re-plan re-fits from scratch yet stays identical.
        let refit = session.replan(&graph).unwrap();
        assert!(refit.new_curve_fits > 0, "evicted curves are fitted anew");
        assert_eq!(refit.plan.waves(), cold.plan.waves());
    }

    /// A 3-level chain (embedding → towers → loss) whose first level is a
    /// single MetaOp: on a 12-device cluster its power-of-two allocation
    /// occupies only devices 0..8, so removing a high-id device leaves level
    /// 0's placement clean while dirtying the later, work-conserving levels.
    fn staged_workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("staged", [Modality::Audio, Modality::Text], 8);
        let embed = b
            .add_op(t, OpKind::Embedding, TensorShape::new(8, 229, 768))
            .unwrap();
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                8,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                6,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(embed, audio[0]).unwrap();
        b.add_flow(embed, text[0]).unwrap();
        b.add_flow(*audio.last().unwrap(), loss).unwrap();
        b.add_flow(*text.last().unwrap(), loss).unwrap();
        b.build().unwrap()
    }

    fn placed_devices(plan: &ExecutionPlan) -> Vec<spindle_cluster::DeviceId> {
        let mut devices = Vec::new();
        for wave in plan.waves() {
            for entry in &wave.entries {
                if let Some(group) = &entry.placement {
                    for d in group.iter() {
                        if !devices.contains(&d) {
                            devices.push(d);
                        }
                    }
                }
            }
        }
        devices
    }

    #[test]
    fn device_loss_replan_reuses_clean_prefix_and_prices_migration() {
        let graph = staged_workload();
        let cluster = ClusterSpec::homogeneous(3, 4);
        let capacity = cluster.device_memory_bytes();
        let mut session = SpindleSession::new(cluster);
        let cold = session.replan(&graph).unwrap();
        assert_eq!(cold.devices_lost, 0);
        assert_eq!(cold.levels_replaced, 0);
        assert_eq!(cold.migration_bytes, 0);
        let dead = spindle_cluster::DeviceId(11);
        assert!(placed_devices(&cold.plan).contains(&dead));
        let cold_prefix: Vec<Wave> = cold
            .plan
            .waves()
            .iter()
            .filter(|w| w.level == 0)
            .cloned()
            .collect();

        assert_eq!(session.remove_devices(&[dead]).unwrap(), 1);
        assert_eq!(session.cluster().num_devices(), 11);
        let churned = session.replan(&graph).unwrap();
        assert_eq!(churned.devices_lost, 1);
        assert_eq!(churned.levels_total, 3);
        assert!(
            churned.levels_replaced > 0 && churned.levels_replaced < churned.levels_total,
            "partial churn must replace a proper suffix, got {}/{}",
            churned.levels_replaced,
            churned.levels_total
        );
        assert!(churned.migration_bytes > 0, "placement shift moves bytes");
        assert!(churned.migration_cost > 0.0);
        // One lost device out of a replicated placement leaves survivors for
        // every MetaOp: nothing has to come back from the checkpoint tier.
        assert_eq!(churned.rematerialized_metaops, 0);
        assert_eq!(churned.restore_bytes, 0);
        churned.plan.check_invariants(capacity).unwrap();
        assert!(
            !placed_devices(&churned.plan).contains(&dead),
            "removed device must not appear in any placement"
        );
        // The clean prefix keeps its placements verbatim — zero migration.
        let new_prefix: Vec<Wave> = churned
            .plan
            .waves()
            .iter()
            .filter(|w| w.level == 0)
            .cloned()
            .collect();
        assert_eq!(cold_prefix, new_prefix);
        // A second re-plan on the shrunken topology is a plain skeleton hit.
        let settled = session.replan(&graph).unwrap();
        assert_eq!(settled.devices_lost, 0);
        assert!(settled.placement_reused);
        assert_eq!(settled.plan.waves(), churned.plan.waves());
    }

    #[test]
    fn restore_then_recur_is_bit_identical_to_cold() {
        let graph = staged_workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(3, 4));
        let cold = session.replan(&graph).unwrap();
        let dead = [spindle_cluster::DeviceId(9), spindle_cluster::DeviceId(11)];
        assert_eq!(session.remove_devices(&dead).unwrap(), 2);
        session.replan(&graph).unwrap();
        assert_eq!(session.restore_devices(&dead), 2);
        assert_eq!(session.cluster().num_devices(), 12);
        assert_eq!(session.removed_devices(), &[]);
        let restored = session.replan(&graph).unwrap();
        assert_eq!(restored.plan.waves(), cold.plan.waves());
        // And with a cleared cache the restored re-plan still reproduces the
        // cold plan bit for bit — determinism, not cache luck.
        session.clear_structural_cache();
        let recomputed = session.replan(&graph).unwrap();
        assert_eq!(recomputed.plan.waves(), cold.plan.waves());
    }

    #[test]
    fn removing_every_device_is_rejected_and_leaves_session_usable() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 4));
        session.plan(&graph).unwrap();
        let all: Vec<_> = session.cluster().all_devices().iter().collect();
        assert!(matches!(
            session.remove_devices(&all),
            Err(PlanError::EmptyCluster)
        ));
        assert_eq!(session.cluster().num_devices(), 4, "session unchanged");
        session.plan(&graph).unwrap();
    }

    #[test]
    fn sessions_can_pool_one_estimator() {
        let graph = workload();
        let cluster = Arc::new(ClusterSpec::homogeneous(1, 8));
        let estimator = Arc::new(ScalabilityEstimator::new(&cluster));
        let mut a = SpindleSession::with_estimator(
            Arc::clone(&cluster),
            Arc::clone(&estimator),
            PlannerConfig::default(),
        );
        a.plan(&graph).unwrap();
        let fits = estimator.curve_fits();
        let mut b = SpindleSession::with_estimator(cluster, estimator, PlannerConfig::default());
        b.plan(&graph).unwrap();
        assert_eq!(b.curve_fits(), fits, "second session reuses pooled curves");
    }
}
