//! The structural plan cache behind incremental delta re-planning.
//!
//! The dynamic-schedule scenario (Appendix D / Fig. 13) re-plans at every
//! task arrival or departure, but each event perturbs only a slice of the
//! plan: a MetaLevel whose task mix did not change poses *exactly* the same
//! allocation/scheduling sub-problem as before, and a task mix that recurs
//! (tasks leave and later rejoin — the dominant pattern of churn traces)
//! poses the same whole-plan problem. This module memoizes both granularities
//! so [`SpindleSession::replan`](crate::SpindleSession::replan) re-solves
//! only the *dirty* levels and splices cached fragments for the clean ones:
//!
//! * **Per-level artifacts** ([`LevelArtifact`], keyed by [`LevelKey`]): the
//!   MPSP solution's optimum `C̃*` together with the discretised allocation
//!   as crafted, memory-annotated waves in level-relative form (MetaOps as
//!   positions within the level, times relative to the level start). Splicing
//!   replays the exact accumulation of the cold path, so a spliced schedule
//!   is *bit-identical* to a freshly solved one.
//! * **Placed skeletons** ([`PlacedSkeleton`], keyed by [`PlanKey`]): the
//!   fully placed wave list of a whole plan. Device placement is a stateful
//!   global pass (affinity and memory balance carry across waves and
//!   levels), so placement fragments can only be reused when *every* level is
//!   clean and the MetaGraph wiring matches — which is what the plan-level
//!   key guarantees.
//!
//! Keys are built from [`WorkloadSignature`]s — the task-independent identity
//! of an operator's cost model — so a cached level serves hits across task-id
//! shifts (a departed early task renumbers every later task) and even across
//! different tasks with identical towers. Two equal keys imply bit-identical
//! profiling results, bit-identical MPSP bisection iterates and therefore
//! bit-identical schedules; the `incremental_replan` integration tests pin
//! this equivalence over seeded churn sequences.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use spindle_graph::WorkloadSignature;

use crate::{MetaGraph, MetaLevel, PlacementCheckpoint, PlacementStrategy, Wave, WaveEntry};

/// Default byte budget of the structural plan cache: comfortably holds every
/// artifact of paper-scale and hyperscale runs while bounding a long-running
/// service. Configure per session via
/// [`PlannerConfig::structural_cache_budget`](crate::PlannerConfig).
pub const DEFAULT_STRUCTURAL_CACHE_BUDGET: usize = 64 * 1024 * 1024;

/// Approximate bytes of one placed (or unplaced) wave: the wave struct, its
/// entries and any placement device lists.
fn wave_bytes(wave: &Wave) -> usize {
    std::mem::size_of::<Wave>()
        + wave
            .entries
            .iter()
            .map(|e| {
                std::mem::size_of::<WaveEntry>()
                    + e.placement.as_ref().map_or(0, |g| {
                        g.len() * std::mem::size_of::<spindle_cluster::DeviceId>()
                    })
            })
            .sum::<usize>()
}

/// Canonical signature of one MetaLevel's allocation + scheduling sub-problem:
/// the level's MetaOp workloads (signature and operator count, in level
/// order) plus the device budget. Two levels with equal keys have
/// bit-identical MPSP solutions and wave schedules.
///
/// The key is order-sensitive on purpose: the bisection solver accumulates
/// floating-point sums in level order, so only an identically ordered level
/// is guaranteed to reproduce the same bits. (Levels list MetaOps in id
/// order, which graph builders derive from task declaration order, so
/// recurring task mixes produce identically ordered levels.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LevelKey {
    num_devices: u32,
    items: Vec<(WorkloadSignature, u32)>,
}

impl LevelKey {
    /// Builds the key of `level` within `metagraph` for a cluster of
    /// `num_devices`.
    #[must_use]
    pub fn of(metagraph: &MetaGraph, level: &MetaLevel, num_devices: u32) -> Self {
        Self {
            num_devices,
            items: level
                .metaops
                .iter()
                .map(|&id| {
                    let m = metagraph.metaop(id);
                    (m.representative().workload_signature(), m.num_ops())
                })
                .collect(),
        }
    }

    /// Approximate memory footprint of the key, for cache byte accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.items.len() * std::mem::size_of::<(WorkloadSignature, u32)>()
    }
}

/// Canonical signature of a whole structural planning problem: every MetaOp's
/// workload (in id order), the MetaGraph wiring, the device budget and the
/// placement strategy. Equal keys imply bit-identical *placed* plans, because
/// placement reads nothing beyond MetaOp volumes (workload-determined), the
/// edge structure and the wave schedule (level-determined).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    num_devices: u32,
    /// Device ids absent from the dense space `0..num_devices + missing.len()`
    /// — empty on a pristine cluster, the removed ids after device churn.
    /// Two post-churn clusters can have equal device *counts* but different
    /// survivor *sets*; their placed skeletons are not interchangeable.
    missing: Vec<u32>,
    placement: PlacementStrategy,
    metaops: Vec<(WorkloadSignature, u32)>,
    edges: Vec<(u32, u32)>,
}

impl PlanKey {
    /// Builds the plan-level key of `metagraph` for a pristine cluster of
    /// `num_devices` contiguous devices under `placement`.
    #[must_use]
    pub fn of(metagraph: &MetaGraph, num_devices: u32, placement: PlacementStrategy) -> Self {
        Self::with_device_set(metagraph, num_devices, Vec::new(), placement)
    }

    /// Builds the key for an explicit device set: `num_devices` survivors in
    /// the dense id space `0..num_devices + missing.len()` with `missing`
    /// (sorted) ids absent.
    #[must_use]
    pub fn with_device_set(
        metagraph: &MetaGraph,
        num_devices: u32,
        missing: Vec<u32>,
        placement: PlacementStrategy,
    ) -> Self {
        Self {
            num_devices,
            missing,
            placement,
            metaops: metagraph
                .metaops()
                .iter()
                .map(|m| (m.representative().workload_signature(), m.num_ops()))
                .collect(),
            edges: metagraph.edges().iter().map(|&(a, b)| (a.0, b.0)).collect(),
        }
    }

    /// Approximate memory footprint of the key, for cache byte accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.missing.len() * std::mem::size_of::<u32>()
            + self.metaops.len() * std::mem::size_of::<(WorkloadSignature, u32)>()
            + self.edges.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// One cached wave entry in level-relative form: the MetaOp is stored as its
/// *position* within the level (`slot`), so the entry can be rebased onto any
/// level with the same key.
#[derive(Debug, Clone)]
struct CachedEntry {
    slot: u32,
    layers: u32,
    devices: u32,
    time_per_op: f64,
    exec_time: f64,
    memory_per_device: u64,
}

/// One cached wave: its duration plus rebasable entries. Start times are not
/// stored — splicing replays the cold path's `start = now; now = start +
/// duration` accumulation so rebased timestamps come out bit-identical.
#[derive(Debug, Clone)]
struct CachedWave {
    duration: f64,
    entries: Vec<CachedEntry>,
}

/// The cached per-level planning artifact: the continuous optimum `C̃*` of
/// the level's MPSP solution and the crafted waves (which embody the
/// discretised device allocation) with memory annotations, in level-relative
/// form.
#[derive(Debug, Clone)]
pub struct LevelArtifact {
    optimal_time: f64,
    waves: Vec<CachedWave>,
}

impl LevelArtifact {
    /// Captures the freshly built waves of one level in rebasable form.
    ///
    /// # Panics
    ///
    /// Panics if a wave references a MetaOp outside `level` (the wavefront
    /// scheduler never does).
    #[must_use]
    pub fn capture(level: &MetaLevel, optimal_time: f64, level_waves: &[Wave]) -> Self {
        let waves = level_waves
            .iter()
            .map(|wave| CachedWave {
                duration: wave.duration,
                entries: wave
                    .entries
                    .iter()
                    .map(|entry| CachedEntry {
                        // Level MetaOp lists are in ascending id order.
                        slot: level
                            .metaops
                            .binary_search(&entry.metaop)
                            .expect("wave entries only reference the level's MetaOps")
                            as u32,
                        layers: entry.layers,
                        devices: entry.devices,
                        time_per_op: entry.time_per_op,
                        exec_time: entry.exec_time,
                        memory_per_device: entry.memory_per_device,
                    })
                    .collect(),
            })
            .collect();
        Self {
            optimal_time,
            waves,
        }
    }

    /// The continuous optimum `C̃*` of the level (the MPSP solution).
    #[must_use]
    pub fn optimal_time(&self) -> f64 {
        self.optimal_time
    }

    /// Approximate memory footprint of the artifact, for cache byte
    /// accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .waves
                .iter()
                .map(|w| {
                    std::mem::size_of::<CachedWave>()
                        + w.entries.len() * std::mem::size_of::<CachedEntry>()
                })
                .sum::<usize>()
    }

    /// Number of cached waves.
    #[must_use]
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// Splices the cached waves onto `level` starting at `start_time` with
    /// wave indices from `first_wave_index`, appending to `out`. Returns the
    /// end time of the level — exactly what the cold path would have
    /// computed.
    pub fn splice(
        &self,
        level: &MetaLevel,
        start_time: f64,
        first_wave_index: usize,
        out: &mut Vec<Wave>,
    ) -> f64 {
        let mut now = start_time;
        for (i, cached) in self.waves.iter().enumerate() {
            let wave = Wave {
                index: first_wave_index + i,
                level: level.index,
                start: now,
                duration: cached.duration,
                entries: cached
                    .entries
                    .iter()
                    .map(|e| WaveEntry {
                        metaop: level.metaops[e.slot as usize],
                        layers: e.layers,
                        devices: e.devices,
                        time_per_op: e.time_per_op,
                        exec_time: e.exec_time,
                        memory_per_device: e.memory_per_device,
                        placement: None,
                    })
                    .collect(),
            };
            now = wave.end();
            out.push(wave);
        }
        now
    }
}

/// The cached whole-plan artifact: the fully placed wave list and the summed
/// theoretical optimum of a previously planned structure.
#[derive(Debug, Clone)]
pub struct PlacedSkeleton {
    /// The placed waves, ready to clone into a new [`ExecutionPlan`](crate::ExecutionPlan).
    pub waves: Vec<Wave>,
    /// The plan's theoretical optimum `Σ C̃*`.
    pub theoretical_optimum: f64,
    /// Placement-pass state snapshotted after each level (`checkpoints[i]` =
    /// state after the last wave of level `i`). After device churn, a clean
    /// prefix of levels keeps its placements and the pass resumes from the
    /// last clean checkpoint instead of re-placing the whole plan. Empty for
    /// stateless placement strategies.
    pub checkpoints: Vec<PlacementCheckpoint>,
}

impl PlacedSkeleton {
    /// Approximate memory footprint of the skeleton (waves, entries,
    /// placement device lists and level checkpoints), for cache byte
    /// accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.waves.iter().map(wave_bytes).sum::<usize>()
            + self
                .checkpoints
                .iter()
                .map(PlacementCheckpoint::approx_bytes)
                .sum::<usize>()
    }
}

/// How much of a plan was served structurally — reported per plan by
/// [`SpindleSession`](crate::SpindleSession) and per re-plan through
/// [`ReplanOutcome`](crate::ReplanOutcome).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructuralReuse {
    /// MetaLevels of the planned graph.
    pub levels_total: usize,
    /// Levels spliced from the structural cache instead of being re-solved.
    pub levels_reused: usize,
    /// `true` if the fully placed wave list was reused (every level clean and
    /// the MetaGraph wiring seen before), skipping placement entirely.
    pub placement_reused: bool,
}

impl StructuralReuse {
    /// Fraction of levels served from the cache (1.0 when there are none).
    #[must_use]
    pub fn level_reuse_rate(&self) -> f64 {
        if self.levels_total == 0 {
            return 1.0;
        }
        self.levels_reused as f64 / self.levels_total as f64
    }
}

/// Counters of the structural cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructuralCacheStats {
    /// Distinct level signatures currently cached.
    pub level_entries: usize,
    /// Distinct placed plan structures currently cached.
    pub skeleton_entries: usize,
    /// Level lookups served from the cache.
    pub level_hits: usize,
    /// Level lookups that missed (and were solved fresh).
    pub level_misses: usize,
    /// Whole-plan lookups served from the cache.
    pub skeleton_hits: usize,
    /// Whole-plan lookups that missed.
    pub skeleton_misses: usize,
    /// Approximate bytes currently held (artifacts, skeletons and keys).
    pub bytes: usize,
    /// Artifacts evicted to keep the cache within its byte budget.
    pub evictions: usize,
}

/// One cached level artifact with its LRU stamp and accounted size.
#[derive(Debug)]
struct LevelSlot {
    artifact: Arc<LevelArtifact>,
    bytes: usize,
    /// Tick of the most recent lookup; a relaxed store through the read path
    /// (an approximate LRU is all eviction needs).
    tick: AtomicU64,
}

/// One cached placed skeleton with its LRU stamp and accounted size.
#[derive(Debug)]
struct SkeletonSlot {
    skeleton: Arc<PlacedSkeleton>,
    bytes: usize,
    tick: AtomicU64,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Bisection epsilon the level artifacts were solved under; a config
    /// change invalidates them.
    epsilon_bits: u64,
    /// Approximate bytes currently cached across both maps.
    bytes: usize,
    levels: HashMap<LevelKey, LevelSlot>,
    skeletons: HashMap<PlanKey, SkeletonSlot>,
}

impl CacheInner {
    /// Evicts least-recently-used slots (levels and skeletons pooled under
    /// one LRU clock) until the accounted bytes fit `budget`. Returns the
    /// number of evictions performed. A just-inserted slot carries the
    /// freshest tick so it goes last, but even it is dropped when it alone
    /// exceeds the budget — the byte bound is a hard invariant.
    fn evict_to_budget(&mut self, budget: usize) -> usize {
        let mut evicted = 0;
        while self.bytes > budget && (!self.levels.is_empty() || !self.skeletons.is_empty()) {
            let oldest_level = self
                .levels
                .iter()
                .min_by_key(|(_, s)| s.tick.load(Ordering::Relaxed))
                .map(|(k, s)| (k.clone(), s.tick.load(Ordering::Relaxed)));
            let oldest_skeleton = self
                .skeletons
                .iter()
                .min_by_key(|(_, s)| s.tick.load(Ordering::Relaxed))
                .map(|(k, s)| (k.clone(), s.tick.load(Ordering::Relaxed)));
            let level_is_older = match (&oldest_level, &oldest_skeleton) {
                (Some((_, lt)), Some((_, st))) => lt <= st,
                (Some(_), None) => true,
                _ => false,
            };
            if level_is_older {
                let (key, _) = oldest_level.expect("checked above");
                if let Some(slot) = self.levels.remove(&key) {
                    self.bytes -= slot.bytes;
                    evicted += 1;
                }
            } else if let Some((key, _)) = oldest_skeleton {
                if let Some(slot) = self.skeletons.remove(&key) {
                    self.bytes -= slot.bytes;
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

/// The level-keyed structural plan cache of a
/// [`SpindleSession`](crate::SpindleSession).
///
/// Thread-safe behind an `RwLock` (the phase-parallel planning workers share
/// it): lookups take the read path, only fresh solves write. Hit/miss
/// counters let tests and benches *assert* structural reuse rather than
/// trusting it.
///
/// The cache is bounded: artifacts carry approximate byte sizes and an LRU
/// tick, and inserts evict least-recently-used entries once the accounted
/// bytes exceed the configured budget (unbounded by default; sessions apply
/// [`PlannerConfig::structural_cache_budget`](crate::PlannerConfig) on every
/// planning pass).
pub struct StructuralPlanCache {
    inner: RwLock<CacheInner>,
    /// Byte budget; `usize::MAX` means unbounded.
    budget: AtomicUsize,
    /// Global LRU clock; every lookup hit stamps its slot with the next tick.
    clock: AtomicU64,
    level_hits: AtomicUsize,
    level_misses: AtomicUsize,
    skeleton_hits: AtomicUsize,
    skeleton_misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl Default for StructuralPlanCache {
    fn default() -> Self {
        Self {
            inner: RwLock::new(CacheInner::default()),
            budget: AtomicUsize::new(usize::MAX),
            clock: AtomicU64::new(0),
            level_hits: AtomicUsize::new(0),
            level_misses: AtomicUsize::new(0),
            skeleton_hits: AtomicUsize::new(0),
            skeleton_misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }
}

impl fmt::Debug for StructuralPlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("StructuralPlanCache")
            .field("level_entries", &stats.level_entries)
            .field("skeleton_entries", &stats.skeleton_entries)
            .field("level_hits", &stats.level_hits)
            .field("skeleton_hits", &stats.skeleton_hits)
            .finish()
    }
}

impl StructuralPlanCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the cache's artifacts were produced under `epsilon`, clearing
    /// them if the tolerance changed (cached bisection iterates would no
    /// longer match a fresh solve).
    pub fn ensure_epsilon(&self, epsilon: f64) {
        let bits = epsilon.to_bits();
        if self.read().epsilon_bits == bits {
            return;
        }
        let mut inner = self.write();
        if inner.epsilon_bits != bits {
            inner.levels.clear();
            inner.skeletons.clear();
            inner.bytes = 0;
            inner.epsilon_bits = bits;
        }
    }

    /// The current byte budget (`usize::MAX` means unbounded).
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Ensures the cache is bounded by `budget` bytes, evicting immediately
    /// if the budget shrank below the currently cached bytes. Cheap when the
    /// budget is unchanged (one relaxed load).
    pub fn ensure_budget(&self, budget: usize) {
        if self.budget.swap(budget, Ordering::Relaxed) == budget {
            return;
        }
        let mut inner = self.write();
        let evicted = inner.evict_to_budget(budget);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Approximate bytes currently cached.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.read().bytes
    }

    /// Total artifacts evicted over the cache's lifetime.
    #[must_use]
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    fn next_tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a level artifact, counting the hit or miss.
    #[must_use]
    pub fn level(&self, key: &LevelKey) -> Option<Arc<LevelArtifact>> {
        let found = {
            let inner = self.read();
            inner.levels.get(key).map(|slot| {
                slot.tick.store(self.next_tick(), Ordering::Relaxed);
                Arc::clone(&slot.artifact)
            })
        };
        match &found {
            Some(_) => self.level_hits.fetch_add(1, Ordering::Relaxed),
            None => self.level_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a freshly solved level artifact, evicting LRU entries if the
    /// insert pushed the cache over its byte budget.
    pub fn insert_level(&self, key: LevelKey, artifact: LevelArtifact) {
        let bytes = key.approx_bytes() + std::mem::size_of::<LevelSlot>() + artifact.approx_bytes();
        let slot = LevelSlot {
            artifact: Arc::new(artifact),
            bytes,
            tick: AtomicU64::new(self.next_tick()),
        };
        let budget = self.budget();
        let mut inner = self.write();
        if let Some(old) = inner.levels.insert(key, slot) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let evicted = inner.evict_to_budget(budget);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Looks up a placed skeleton, counting the hit or miss.
    #[must_use]
    pub fn skeleton(&self, key: &PlanKey) -> Option<Arc<PlacedSkeleton>> {
        let found = {
            let inner = self.read();
            inner.skeletons.get(key).map(|slot| {
                slot.tick.store(self.next_tick(), Ordering::Relaxed);
                Arc::clone(&slot.skeleton)
            })
        };
        match &found {
            Some(_) => self.skeleton_hits.fetch_add(1, Ordering::Relaxed),
            None => self.skeleton_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a freshly placed skeleton, evicting LRU entries if the insert
    /// pushed the cache over its byte budget.
    pub fn insert_skeleton(&self, key: PlanKey, skeleton: PlacedSkeleton) {
        let bytes =
            key.approx_bytes() + std::mem::size_of::<SkeletonSlot>() + skeleton.approx_bytes();
        let slot = SkeletonSlot {
            skeleton: Arc::new(skeleton),
            bytes,
            tick: AtomicU64::new(self.next_tick()),
        };
        let budget = self.budget();
        let mut inner = self.write();
        if let Some(old) = inner.skeletons.insert(key, slot) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let evicted = inner.evict_to_budget(budget);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.write();
        inner.levels.clear();
        inner.skeletons.clear();
        inner.bytes = 0;
    }

    /// A snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> StructuralCacheStats {
        let inner = self.read();
        StructuralCacheStats {
            level_entries: inner.levels.len(),
            skeleton_entries: inner.skeletons.len(),
            level_hits: self.level_hits.load(Ordering::Relaxed),
            level_misses: self.level_misses.load(Ordering::Relaxed),
            skeleton_hits: self.skeleton_hits.load(Ordering::Relaxed),
            skeleton_misses: self.skeleton_misses.load(Ordering::Relaxed),
            bytes: inner.bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, CacheInner> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, CacheInner> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ContractedGraph;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn contracted(batches: &[u32]) -> ContractedGraph {
        let mut b = GraphBuilder::new();
        for (i, &batch) in batches.iter().enumerate() {
            let t = b.add_task(format!("t{i}"), [Modality::Audio, Modality::Text], batch);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Audio),
                    TensorShape::new(batch, 229, 768),
                    4,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
        }
        ContractedGraph::new(&b.build().unwrap())
    }

    #[test]
    fn level_keys_are_task_independent_but_shape_sensitive() {
        let a = contracted(&[8, 16]);
        let b = contracted(&[8, 16]);
        let c = contracted(&[8, 32]);
        let key = |cg: &ContractedGraph, lvl: usize| {
            LevelKey::of(cg.metagraph(), &cg.metagraph().levels()[lvl], 8)
        };
        assert_eq!(key(&a, 0), key(&b, 0));
        assert_eq!(key(&a, 1), key(&b, 1));
        assert_ne!(key(&a, 0), key(&c, 0), "batch change must dirty the level");
        // Device budget is part of the key.
        let narrow = LevelKey::of(a.metagraph(), &a.metagraph().levels()[0], 4);
        assert_ne!(narrow, key(&a, 0));
    }

    #[test]
    fn plan_keys_track_wiring_and_strategy() {
        let a = contracted(&[8, 16]);
        let b = contracted(&[8, 16]);
        let c = contracted(&[8]);
        let key = |cg: &ContractedGraph, s: PlacementStrategy| PlanKey::of(cg.metagraph(), 8, s);
        assert_eq!(
            key(&a, PlacementStrategy::Locality),
            key(&b, PlacementStrategy::Locality)
        );
        assert_ne!(
            key(&a, PlacementStrategy::Locality),
            key(&c, PlacementStrategy::Locality)
        );
        assert_ne!(
            key(&a, PlacementStrategy::Locality),
            key(&a, PlacementStrategy::Sequential)
        );
    }

    #[test]
    fn capture_and_splice_roundtrip_bit_for_bit() {
        let cg = contracted(&[8, 16]);
        let mg = cg.metagraph();
        let level = &mg.levels()[0];
        // Two hand-built waves over the level's MetaOps.
        let entry = |slot: usize, layers, devices, t| {
            let mut e = WaveEntry::new(level.metaops[slot], layers, devices, t);
            e.memory_per_device = 1024 * (slot as u64 + 1);
            e
        };
        let waves = vec![
            Wave {
                index: 3,
                level: level.index,
                start: 1.25,
                duration: 0.5,
                entries: vec![entry(0, 2, 4, 0.25), entry(1, 1, 4, 0.5)],
            },
            Wave {
                index: 4,
                level: level.index,
                start: 1.75,
                duration: 0.75,
                entries: vec![entry(0, 2, 8, 0.375)],
            },
        ];
        let artifact = LevelArtifact::capture(level, 2.5, &waves);
        assert_eq!(artifact.num_waves(), 2);
        assert_eq!(artifact.optimal_time(), 2.5);
        let mut out = Vec::new();
        let end = artifact.splice(level, 1.25, 3, &mut out);
        assert_eq!(out, waves);
        assert_eq!(end, waves.last().unwrap().end());
        // Rebasing onto a different offset shifts starts, nothing else.
        let mut shifted = Vec::new();
        let end2 = artifact.splice(level, 0.0, 0, &mut shifted);
        assert_eq!(shifted[0].start, 0.0);
        assert_eq!(shifted[1].index, 1);
        assert_eq!(end2, 1.25);
        assert_eq!(shifted[0].entries, waves[0].entries);
    }

    #[test]
    fn cache_counts_hits_misses_and_clears_on_epsilon_change() {
        let cg = contracted(&[8]);
        let mg = cg.metagraph();
        let cache = StructuralPlanCache::new();
        cache.ensure_epsilon(1e-7);
        let key = LevelKey::of(mg, &mg.levels()[0], 8);
        assert!(cache.level(&key).is_none());
        cache.insert_level(
            key.clone(),
            LevelArtifact {
                optimal_time: 1.0,
                waves: Vec::new(),
            },
        );
        assert!(cache.level(&key).is_some());
        let plan_key = PlanKey::of(mg, 8, PlacementStrategy::Locality);
        assert!(cache.skeleton(&plan_key).is_none());
        cache.insert_skeleton(
            plan_key.clone(),
            PlacedSkeleton {
                waves: Vec::new(),
                theoretical_optimum: 1.0,
                checkpoints: Vec::new(),
            },
        );
        assert!(cache.skeleton(&plan_key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.level_entries, 1);
        assert_eq!(stats.skeleton_entries, 1);
        assert_eq!(stats.level_hits, 1);
        assert_eq!(stats.level_misses, 1);
        assert_eq!(stats.skeleton_hits, 1);
        assert_eq!(stats.skeleton_misses, 1);
        // Same epsilon: nothing dropped. New epsilon: artifacts invalidated.
        cache.ensure_epsilon(1e-7);
        assert_eq!(cache.stats().level_entries, 1);
        cache.ensure_epsilon(1e-9);
        let stats = cache.stats();
        assert_eq!(stats.level_entries, 0);
        assert_eq!(stats.skeleton_entries, 0);
        assert!(format!("{cache:?}").contains("StructuralPlanCache"));
    }

    #[test]
    fn byte_budget_is_a_hard_bound_and_evicts_lru_first() {
        let cg = contracted(&[8]);
        let mg = cg.metagraph();
        let level = &mg.levels()[0];
        let cache = StructuralPlanCache::new();
        assert_eq!(cache.budget(), usize::MAX, "unbounded by default");
        let key_for = |devices: u32| LevelKey::of(mg, level, devices);
        let artifact = || LevelArtifact {
            optimal_time: 1.0,
            waves: vec![CachedWave {
                duration: 1.0,
                entries: vec![
                    CachedEntry {
                        slot: 0,
                        layers: 1,
                        devices: 1,
                        time_per_op: 1.0,
                        exec_time: 1.0,
                        memory_per_device: 0,
                    };
                    4
                ],
            }],
        };
        let per_entry = key_for(1).approx_bytes()
            + std::mem::size_of::<LevelSlot>()
            + artifact().approx_bytes();
        // Room for exactly two level artifacts.
        cache.ensure_budget(2 * per_entry);
        cache.insert_level(key_for(1), artifact());
        cache.insert_level(key_for(2), artifact());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.bytes(), 2 * per_entry);
        // Touch key 1 so key 2 becomes the LRU victim of the next insert.
        assert!(cache.level(&key_for(1)).is_some());
        cache.insert_level(key_for(3), artifact());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.level_entries, 2);
        assert!(stats.bytes <= cache.budget(), "hard byte bound");
        assert!(cache.level(&key_for(1)).is_some(), "recently used survives");
        assert!(cache.level(&key_for(2)).is_none(), "LRU entry was evicted");
        assert!(cache.level(&key_for(3)).is_some());
        // Skeletons share the same budget pool; a large skeleton pushes out
        // the remaining levels, and shrinking the budget evicts immediately.
        let plan_key = PlanKey::of(mg, 8, PlacementStrategy::Locality);
        cache.insert_skeleton(
            plan_key.clone(),
            PlacedSkeleton {
                waves: Vec::new(),
                theoretical_optimum: 1.0,
                checkpoints: Vec::new(),
            },
        );
        assert!(cache.bytes() <= cache.budget());
        cache.ensure_budget(1);
        let stats = cache.stats();
        assert_eq!(stats.level_entries + stats.skeleton_entries, 0);
        assert_eq!(stats.bytes, 0);
        assert!(stats.evictions >= 3);
    }

    #[test]
    fn reuse_rate_handles_empty_plans() {
        assert!((StructuralReuse::default().level_reuse_rate() - 1.0).abs() < 1e-12);
        let partial = StructuralReuse {
            levels_total: 4,
            levels_reused: 3,
            placement_reused: false,
        };
        assert!((partial.level_reuse_rate() - 0.75).abs() < 1e-12);
    }
}
