//! The [`PlanningSystem`] trait: one entry point for Spindle and every
//! baseline system of the evaluation.

use spindle_graph::ComputationGraph;

use crate::{ExecutionPlan, PlanError, SpindleSession};

/// A system under evaluation: anything that can turn a workload graph into an
/// [`ExecutionPlan`] against a [`SpindleSession`].
///
/// The session supplies the cluster description, the planner configuration and
/// the shared scalability estimator — so every system (Spindle itself and each
/// baseline) profiles operators through the *same* persistent curve cache and
/// is measured on identical footing. Experiment harnesses iterate over
/// `Box<dyn PlanningSystem>` instead of matching on a system-kind enum at each
/// call site.
pub trait PlanningSystem: std::fmt::Debug {
    /// Human-readable name of the system (used by experiment output).
    fn name(&self) -> &str;

    /// Plans one training iteration of `graph` within `session`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the cluster is empty or profiling fails.
    fn plan(
        &mut self,
        graph: &ComputationGraph,
        session: &mut SpindleSession,
    ) -> Result<ExecutionPlan, PlanError>;
}

/// Spindle itself, as a [`PlanningSystem`]: the full staged pipeline of the
/// session (contraction → curves → MPSP + wavefront → placement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpindlePlanner;

impl SpindlePlanner {
    /// Creates the planner.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PlanningSystem for SpindlePlanner {
    fn name(&self) -> &str {
        "Spindle"
    }

    fn plan(
        &mut self,
        graph: &ComputationGraph,
        session: &mut SpindleSession,
    ) -> Result<ExecutionPlan, PlanError> {
        session.plan(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn workload() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Vision, Modality::Text], 8);
        let enc = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(8, 257, 768),
                4,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                4,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(*enc.last().unwrap(), loss).unwrap();
        b.add_flow(*text.last().unwrap(), loss).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn spindle_planner_plans_through_the_trait() {
        let graph = workload();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let mut system: Box<dyn PlanningSystem> = Box::new(SpindlePlanner::new());
        assert_eq!(system.name(), "Spindle");
        let plan = system.plan(&graph, &mut session).unwrap();
        plan.validate().unwrap();
        plan.require_placement().unwrap();
        assert_eq!(session.plans_produced(), 1);
    }
}
