//! Wavefront scheduling (§3.4, Alg. 1).
//!
//! Given the discretised allocation plan of one MetaLevel, the wavefront
//! scheduler crafts *waves*: maximal sets of sliced MetaOps that execute
//! concurrently on disjoint device groups. Each wave (1) occupies as many
//! devices as possible, (2) extends allocations when devices would otherwise
//! idle, and (3) aligns the time spans of its entries by slicing MetaOps, so
//! that no device waits for a straggler.
//!
//! The crafting loop is index-based and allocation-free: pending MetaOps keep
//! an incrementally maintained `remaining` execution time and a cached head
//! tuple, their ASL-tuples live in one flat reusable buffer, and the sort
//! orders reuse scratch vectors — nothing is recomputed inside comparators.

use std::collections::BTreeMap;
use std::sync::Arc;

use spindle_estimator::ScalingCurve;

use crate::allocator::AllocationPlan;
use crate::arena::MetaOpArena;
use crate::{MetaOpId, Wave, WaveEntry};

/// Per-MetaOp scaling curves, needed when the scheduler extends allocations.
pub type CurveMap = BTreeMap<MetaOpId, Arc<ScalingCurve>>;

#[derive(Debug, Clone, Copy)]
struct PendingTuple {
    devices: u32,
    layers_left: u32,
    time_per_op: f64,
}

#[derive(Debug, Clone)]
struct PendingMetaOp {
    metaop: MetaOpId,
    curve: Option<Arc<ScalingCurve>>,
    /// Index of the first unfinished tuple in [`WavefrontScratch::tuples`].
    head: u32,
    /// One past the last tuple of this MetaOp in the flat buffer.
    end: u32,
    /// Incrementally maintained total remaining execution time.
    remaining: f64,
}

impl PendingMetaOp {
    fn is_done(&self) -> bool {
        self.head >= self.end
    }
}

/// Reusable working buffers (and probes) of the wavefront scheduler.
///
/// A scratch can be reused across levels and plans; its buffers keep their
/// capacity so steady-state scheduling performs no heap allocation beyond the
/// produced [`Wave`] artifacts themselves.
#[derive(Debug, Default)]
pub struct WavefrontScratch {
    pending: Vec<PendingMetaOp>,
    tuples: Vec<PendingTuple>,
    order: Vec<u32>,
    selected: Vec<u32>,
    extension_order: Vec<u32>,
    waves_crafted: u64,
    high_water: usize,
}

impl WavefrontScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total waves crafted through this scratch.
    #[must_use]
    pub fn waves_crafted(&self) -> u64 {
        self.waves_crafted
    }

    /// Largest pending set seen — the capacity bound of the reused buffers.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

/// Schedules one MetaLevel into waves.
///
/// * `plan` — the level's discretised allocation plan;
/// * `curves` — scaling curves for resource extension;
/// * `num_devices` — cluster size `N`;
/// * `level` — the MetaLevel index (recorded on the produced waves);
/// * `start_time` — the end time of the previous level;
/// * `first_wave_index` — index to assign to the first produced wave.
///
/// Returns the produced waves and the end time of the level.
#[must_use]
pub fn schedule_level(
    plan: &AllocationPlan,
    curves: &CurveMap,
    num_devices: u32,
    level: usize,
    start_time: f64,
    first_wave_index: usize,
) -> (Vec<Wave>, f64) {
    let mut scratch = WavefrontScratch::new();
    schedule_level_with(
        plan,
        |id| curves.get(&id).cloned(),
        num_devices,
        level,
        start_time,
        first_wave_index,
        &mut scratch,
    )
}

/// [`schedule_level`] with curve lookup served by the dense [`MetaOpArena`]
/// and caller-owned scratch buffers — the planning pipeline's hot path.
#[must_use]
pub fn schedule_level_dense(
    plan: &AllocationPlan,
    arena: &MetaOpArena,
    num_devices: u32,
    level: usize,
    start_time: f64,
    first_wave_index: usize,
    scratch: &mut WavefrontScratch,
) -> (Vec<Wave>, f64) {
    schedule_level_with(
        plan,
        |id| Some(Arc::clone(arena.curve(id))),
        num_devices,
        level,
        start_time,
        first_wave_index,
        scratch,
    )
}

fn schedule_level_with<F>(
    plan: &AllocationPlan,
    lookup: F,
    num_devices: u32,
    level: usize,
    start_time: f64,
    first_wave_index: usize,
    scratch: &mut WavefrontScratch,
) -> (Vec<Wave>, f64)
where
    F: Fn(MetaOpId) -> Option<Arc<ScalingCurve>>,
{
    scratch.pending.clear();
    scratch.tuples.clear();
    for a in &plan.allocations {
        let start = scratch.tuples.len() as u32;
        let mut remaining = 0.0_f64;
        for t in &a.tuples {
            if t.layers > 0 {
                scratch.tuples.push(PendingTuple {
                    devices: t.devices.max(1),
                    layers_left: t.layers,
                    time_per_op: t.time_per_op,
                });
                remaining += f64::from(t.layers) * t.time_per_op;
            }
        }
        let end = scratch.tuples.len() as u32;
        if end > start {
            scratch.pending.push(PendingMetaOp {
                metaop: a.metaop,
                curve: lookup(a.metaop),
                head: start,
                end,
                remaining,
            });
        }
    }
    scratch.high_water = scratch.high_water.max(scratch.pending.len());

    let mut waves = Vec::new();
    let mut now = start_time;
    let mut wave_index = first_wave_index;

    while !scratch.pending.is_empty() {
        let wave = craft_wave(scratch, num_devices, level, now, wave_index);
        now = wave.end();
        wave_index += 1;
        waves.push(wave);
        scratch.pending.retain(|p| !p.is_done());
    }
    (waves, now)
}

/// Crafts a single wave, mutating the pending set (Alg. 1 lines 3–7).
fn craft_wave(
    scratch: &mut WavefrontScratch,
    num_devices: u32,
    level: usize,
    start: f64,
    index: usize,
) -> Wave {
    let WavefrontScratch {
        pending,
        tuples,
        order,
        selected,
        extension_order,
        waves_crafted,
        ..
    } = scratch;
    *waves_crafted += 1;

    // Step 1: propose a candidate set, greedily filling devices. Candidates
    // are the head tuple of each unfinished MetaOp, largest allocations first.
    // The comparator reads cached state only: head tuples are indexed
    // directly and `remaining` is maintained incrementally.
    order.clear();
    order.extend(0..pending.len() as u32);
    order.sort_by(|&a, &b| {
        let pa = &pending[a as usize];
        let pb = &pending[b as usize];
        tuples[pb.head as usize]
            .devices
            .cmp(&tuples[pa.head as usize].devices)
            .then(pb.remaining.total_cmp(&pa.remaining))
    });
    selected.clear();
    let mut used = 0u32;
    for &i in order.iter() {
        let n = tuples[pending[i as usize].head as usize]
            .devices
            .min(num_devices);
        if used + n <= num_devices {
            selected.push(i);
            used += n;
        }
    }
    if selected.is_empty() {
        // Guaranteed progress: schedule the smallest candidate alone.
        if let Some(&i) = order.last() {
            selected.push(i);
            used = tuples[pending[i as usize].head as usize]
                .devices
                .min(num_devices);
        }
    }

    // Step 2: extend allocations if devices would idle, prioritising MetaOps
    // with the largest remaining execution time. The priority is re-ranked at
    // every round: granting an extension shrinks a MetaOp's remaining time,
    // so the order of the previous round is stale.
    let mut spare = num_devices.saturating_sub(used);
    if spare > 0 {
        extension_order.clear();
        extension_order.extend_from_slice(selected);
        let mut progressed = true;
        while spare > 0 && progressed {
            progressed = false;
            extension_order.sort_by(|&a, &b| {
                pending[b as usize]
                    .remaining
                    .total_cmp(&pending[a as usize].remaining)
            });
            for &i in extension_order.iter() {
                let p = &pending[i as usize];
                let h = p.head as usize;
                let current = tuples[h].devices.min(num_devices);
                if let Some((next_n, next_t)) =
                    next_valid_allocation(p.curve.as_deref(), current, current + spare)
                {
                    let extra = next_n - current;
                    let tuple = &mut tuples[h];
                    pending[i as usize].remaining +=
                        f64::from(tuple.layers_left) * (next_t - tuple.time_per_op);
                    tuple.devices = next_n;
                    tuple.time_per_op = next_t;
                    spare -= extra;
                    progressed = true;
                    if spare == 0 {
                        break;
                    }
                }
            }
        }
    }

    // Step 3: align time spans to the shortest proposed tuple by dissecting
    // the longer ones (scheduling only part of their operators).
    let wave_span = selected
        .iter()
        .map(|&i| {
            let t = &tuples[pending[i as usize].head as usize];
            f64::from(t.layers_left) * t.time_per_op
        })
        .fold(f64::INFINITY, f64::min);

    let mut entries = Vec::with_capacity(selected.len());
    for &i in selected.iter() {
        let p = &mut pending[i as usize];
        let tuple = &mut tuples[p.head as usize];
        let fit = if tuple.time_per_op > 0.0 {
            ((wave_span / tuple.time_per_op) + 1e-9).floor() as u32
        } else {
            tuple.layers_left
        };
        let layers = fit.clamp(1, tuple.layers_left);
        tuple.layers_left -= layers;
        p.remaining -= f64::from(layers) * tuple.time_per_op;
        let entry = WaveEntry::new(
            p.metaop,
            layers,
            tuple.devices.min(num_devices),
            tuple.time_per_op,
        );
        if tuple.layers_left == 0 {
            // Advance the cached head; tuples are only staged with layers > 0,
            // so the next tuple (if any) is immediately schedulable.
            p.head += 1;
        }
        entries.push(entry);
    }

    // Step 4: conclude the wave.
    let duration = entries.iter().map(|e| e.exec_time).fold(0.0_f64, f64::max);
    Wave {
        index,
        level,
        start,
        duration,
        entries,
    }
}

/// The next valid allocation strictly larger than `current` but no larger than
/// `limit`, with its per-operator time.
fn next_valid_allocation(
    curve: Option<&ScalingCurve>,
    current: u32,
    limit: u32,
) -> Option<(u32, f64)> {
    let curve = curve?;
    curve
        .valid_allocations()
        .iter()
        .find(|&&(n, _)| n > current && n <= limit)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{AllocationPlan, DiscreteAllocation, MetaOpAllocation};
    use spindle_estimator::test_util::{curve_from_points, linear_curve};

    fn alloc(metaop: u32, tuples: &[(u32, u32, f64)]) -> MetaOpAllocation {
        MetaOpAllocation {
            metaop: MetaOpId(metaop),
            tuples: tuples
                .iter()
                .map(|&(devices, layers, time_per_op)| DiscreteAllocation {
                    devices,
                    layers,
                    time_per_op,
                })
                .collect(),
        }
    }

    #[test]
    fn single_metaop_single_wave() {
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(8, 4, 0.5)])],
            target_time: 2.0,
        };
        let curves: CurveMap = [(MetaOpId(0), linear_curve(4.0, 8))].into_iter().collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].entries.len(), 1);
        assert_eq!(waves[0].entries[0].layers, 4);
        assert!((end - 2.0).abs() < 1e-9);
        assert_eq!(waves[0].devices_used(), 8);
    }

    #[test]
    fn all_operators_scheduled_exactly_once() {
        let plan = AllocationPlan {
            allocations: vec![
                alloc(0, &[(4, 9, 0.5), (2, 2, 0.9)]),
                alloc(1, &[(2, 14, 0.3), (1, 2, 0.55)]),
                alloc(2, &[(2, 3, 0.4), (1, 13, 0.7)]),
            ],
            target_time: 6.0,
        };
        let curves: CurveMap = [
            (MetaOpId(0), linear_curve(2.0, 8)),
            (MetaOpId(1), linear_curve(0.6, 8)),
            (MetaOpId(2), linear_curve(0.8, 8)),
        ]
        .into_iter()
        .collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert!(end > 0.0);
        let mut layers: BTreeMap<MetaOpId, u32> = BTreeMap::new();
        for w in &waves {
            assert!(w.devices_used() <= 8, "wave {} overflows", w.index);
            for e in &w.entries {
                *layers.entry(e.metaop).or_insert(0) += e.layers;
            }
        }
        assert_eq!(layers[&MetaOpId(0)], 11);
        assert_eq!(layers[&MetaOpId(1)], 16);
        assert_eq!(layers[&MetaOpId(2)], 16);
    }

    #[test]
    fn waves_are_contiguous_in_time() {
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(4, 6, 0.5)]), alloc(1, &[(4, 3, 1.1)])],
            target_time: 3.3,
        };
        let curves: CurveMap = [
            (MetaOpId(0), linear_curve(2.0, 8)),
            (MetaOpId(1), linear_curve(4.4, 8)),
        ]
        .into_iter()
        .collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 2, 1.5, 7);
        assert!(!waves.is_empty());
        assert_eq!(waves[0].start, 1.5);
        assert_eq!(waves[0].index, 7);
        assert_eq!(waves[0].level, 2);
        for pair in waves.windows(2) {
            assert!((pair[1].start - pair[0].end()).abs() < 1e-9);
            assert_eq!(pair[1].index, pair[0].index + 1);
        }
        assert!((end - waves.last().unwrap().end()).abs() < 1e-12);
    }

    #[test]
    fn number_of_waves_bounded_by_twice_metaops() {
        // Complexity analysis (§5.5): each wave consumes all layers of at least
        // one ASL-tuple and each MetaOp produces at most two tuples.
        let plan = AllocationPlan {
            allocations: vec![
                alloc(0, &[(8, 2, 0.2), (4, 9, 0.4)]),
                alloc(1, &[(2, 14, 0.25), (1, 2, 0.45)]),
                alloc(2, &[(2, 3, 0.3), (1, 13, 0.5)]),
                alloc(3, &[(1, 6, 0.6)]),
                alloc(4, &[(1, 6, 0.55)]),
            ],
            target_time: 6.0,
        };
        let curves: CurveMap = (0..5)
            .map(|i| (MetaOpId(i), linear_curve(1.0, 8)))
            .collect();
        let (waves, _) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert!(waves.len() <= 2 * 5);
    }

    #[test]
    fn resource_extension_fills_idle_devices() {
        // One MetaOp with a small allocation and plenty of spare devices: the
        // scheduler should extend it to use the whole cluster.
        let c = linear_curve(4.0, 8);
        let t1 = c.time_at(1).unwrap();
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(1, 8, t1)])],
            target_time: 8.0 * t1,
        };
        let curves: CurveMap = [(MetaOpId(0), Arc::clone(&c))].into_iter().collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].entries[0].devices, 8);
        // Extension uses the faster per-op time from the curve.
        assert!(end < 8.0 * t1);
    }

    #[test]
    fn alignment_slices_long_metaops() {
        // A long MetaOp next to a short one: the first wave must cut the long
        // one so both entries span (roughly) the same time.
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(4, 20, 0.5)]), alloc(1, &[(4, 2, 0.5)])],
            target_time: 10.0,
        };
        let curves: CurveMap = [
            (MetaOpId(0), linear_curve(2.0, 4)),
            (MetaOpId(1), linear_curve(2.0, 4)),
        ]
        .into_iter()
        .collect();
        let (waves, _) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        let first = &waves[0];
        let e0 = first.entry_for(MetaOpId(0)).unwrap();
        let e1 = first.entry_for(MetaOpId(1)).unwrap();
        assert_eq!(e1.layers, 2);
        assert_eq!(e0.layers, 2, "long MetaOp must be dissected to align spans");
        assert!((e0.exec_time - e1.exec_time).abs() < 1e-9);
        // The remaining 18 layers appear in later waves.
        let total: u32 = waves
            .iter()
            .filter_map(|w| w.entry_for(MetaOpId(0)))
            .map(|e| e.layers)
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn empty_plan_produces_no_waves() {
        let plan = AllocationPlan {
            allocations: vec![],
            target_time: 0.0,
        };
        let (waves, end) = schedule_level(&plan, &CurveMap::new(), 8, 0, 3.0, 0);
        assert!(waves.is_empty());
        assert_eq!(end, 3.0);
    }

    #[test]
    fn extension_rounds_rerank_by_current_remaining_time() {
        // Regression test for the stale-priority bug: the extension order used
        // to be sorted once, so round 2 extended by the *initial* remaining
        // times even though round 1's grants had changed them.
        //
        // A starts with remaining 10.0, B with 9.9, both on 1 device; 5
        // devices leave 3 spare. Round 1 extends A (1→2, remaining drops to
        // 5.0) then B (1→2, remaining 9.0). The last spare device must go to
        // B — the MetaOp with the larger remaining time *now* — not to A.
        let a_curve = curve_from_points(&[(1, 1.0), (2, 0.5), (3, 0.34)]);
        let b_curve = curve_from_points(&[(1, 1.1), (2, 1.0), (3, 0.9)]);
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(1, 10, 1.0)]), alloc(1, &[(1, 9, 1.1)])],
            target_time: 10.0,
        };
        let curves: CurveMap = [(MetaOpId(0), a_curve), (MetaOpId(1), b_curve)]
            .into_iter()
            .collect();
        let (waves, _) = schedule_level(&plan, &curves, 5, 0, 0.0, 0);
        let first = &waves[0];
        let a = first.entry_for(MetaOpId(0)).unwrap();
        let b = first.entry_for(MetaOpId(1)).unwrap();
        assert_eq!(a.devices, 2, "A must keep its round-1 extension only");
        assert_eq!(
            b.devices, 3,
            "round 2 must re-rank and give the spare device to B"
        );
    }

    #[test]
    fn reused_scratch_matches_fresh_scheduling() {
        let plan_a = AllocationPlan {
            allocations: vec![
                alloc(0, &[(4, 9, 0.5), (2, 2, 0.9)]),
                alloc(1, &[(2, 14, 0.3), (1, 2, 0.55)]),
            ],
            target_time: 6.0,
        };
        let plan_b = AllocationPlan {
            allocations: vec![alloc(2, &[(2, 3, 0.4), (1, 13, 0.7)])],
            target_time: 9.5,
        };
        let curves: CurveMap = (0..3)
            .map(|i| (MetaOpId(i), linear_curve(1.0, 8)))
            .collect();
        let mut scratch = WavefrontScratch::new();
        let lookup = |id: MetaOpId| curves.get(&id).cloned();
        let (wa, ea) = schedule_level_with(&plan_a, lookup, 8, 0, 0.0, 0, &mut scratch);
        let (wb, eb) = schedule_level_with(&plan_b, lookup, 8, 1, ea, wa.len(), &mut scratch);
        let (wa_fresh, ea_fresh) = schedule_level(&plan_a, &curves, 8, 0, 0.0, 0);
        let (wb_fresh, eb_fresh) = schedule_level(&plan_b, &curves, 8, 1, ea_fresh, wa_fresh.len());
        assert_eq!(wa, wa_fresh);
        assert_eq!(wb, wb_fresh);
        assert_eq!(ea, ea_fresh);
        assert_eq!(eb, eb_fresh);
        assert_eq!(scratch.waves_crafted(), (wa.len() + wb.len()) as u64);
        assert_eq!(scratch.high_water(), 2);
    }
}
