//! Wavefront scheduling (§3.4, Alg. 1).
//!
//! Given the discretised allocation plan of one MetaLevel, the wavefront
//! scheduler crafts *waves*: maximal sets of sliced MetaOps that execute
//! concurrently on disjoint device groups. Each wave (1) occupies as many
//! devices as possible, (2) extends allocations when devices would otherwise
//! idle, and (3) aligns the time spans of its entries by slicing MetaOps, so
//! that no device waits for a straggler.

use std::collections::BTreeMap;
use std::sync::Arc;

use spindle_estimator::ScalingCurve;

use crate::allocator::AllocationPlan;
use crate::{MetaOpId, Wave, WaveEntry};

/// Per-MetaOp scaling curves, needed when the scheduler extends allocations.
pub type CurveMap = BTreeMap<MetaOpId, Arc<ScalingCurve>>;

#[derive(Debug, Clone)]
struct PendingTuple {
    devices: u32,
    layers_left: u32,
    time_per_op: f64,
}

#[derive(Debug, Clone)]
struct PendingMetaOp {
    metaop: MetaOpId,
    tuples: Vec<PendingTuple>,
}

impl PendingMetaOp {
    fn remaining_time(&self) -> f64 {
        self.tuples
            .iter()
            .map(|t| f64::from(t.layers_left) * t.time_per_op)
            .sum()
    }

    fn is_done(&self) -> bool {
        self.tuples.iter().all(|t| t.layers_left == 0)
    }
}

/// Schedules one MetaLevel into waves.
///
/// * `plan` — the level's discretised allocation plan;
/// * `curves` — scaling curves for resource extension;
/// * `num_devices` — cluster size `N`;
/// * `level` — the MetaLevel index (recorded on the produced waves);
/// * `start_time` — the end time of the previous level;
/// * `first_wave_index` — index to assign to the first produced wave.
///
/// Returns the produced waves and the end time of the level.
#[must_use]
pub fn schedule_level(
    plan: &AllocationPlan,
    curves: &CurveMap,
    num_devices: u32,
    level: usize,
    start_time: f64,
    first_wave_index: usize,
) -> (Vec<Wave>, f64) {
    let mut pending: Vec<PendingMetaOp> = plan
        .allocations
        .iter()
        .map(|a| PendingMetaOp {
            metaop: a.metaop,
            tuples: a
                .tuples
                .iter()
                .filter(|t| t.layers > 0)
                .map(|t| PendingTuple {
                    devices: t.devices.max(1),
                    layers_left: t.layers,
                    time_per_op: t.time_per_op,
                })
                .collect(),
        })
        .filter(|p| !p.is_done())
        .collect();

    let mut waves = Vec::new();
    let mut now = start_time;
    let mut wave_index = first_wave_index;

    while !pending.is_empty() {
        let wave = craft_wave(&mut pending, curves, num_devices, level, now, wave_index);
        now = wave.end();
        wave_index += 1;
        waves.push(wave);
        pending.retain(|p| !p.is_done());
    }
    (waves, now)
}

/// Crafts a single wave, mutating the pending set (Alg. 1 lines 3–7).
fn craft_wave(
    pending: &mut [PendingMetaOp],
    curves: &CurveMap,
    num_devices: u32,
    level: usize,
    start: f64,
    index: usize,
) -> Wave {
    // Step 1: propose a candidate set, greedily filling devices. Candidates
    // are the head tuple of each unfinished MetaOp, largest allocations first.
    let mut order: Vec<usize> = (0..pending.len())
        .filter(|&i| !pending[i].is_done())
        .collect();
    order.sort_by(|&a, &b| {
        let ta = &pending[a].tuples[head(&pending[a])];
        let tb = &pending[b].tuples[head(&pending[b])];
        tb.devices.cmp(&ta.devices).then(
            pending[b]
                .remaining_time()
                .total_cmp(&pending[a].remaining_time()),
        )
    });
    let mut selected: Vec<usize> = Vec::new();
    let mut used = 0u32;
    for &i in &order {
        let n = pending[i].tuples[head(&pending[i])]
            .devices
            .min(num_devices);
        if used + n <= num_devices {
            selected.push(i);
            used += n;
        }
    }
    if selected.is_empty() {
        // Guaranteed progress: schedule the smallest candidate alone.
        if let Some(&i) = order.last() {
            selected.push(i);
            used = pending[i].tuples[head(&pending[i])]
                .devices
                .min(num_devices);
        }
    }

    // Step 2: extend allocations if devices would idle, prioritising MetaOps
    // with the largest remaining execution time.
    let mut spare = num_devices.saturating_sub(used);
    if spare > 0 {
        let mut by_remaining: Vec<usize> = selected.clone();
        by_remaining.sort_by(|&a, &b| {
            pending[b]
                .remaining_time()
                .total_cmp(&pending[a].remaining_time())
        });
        let mut progressed = true;
        while spare > 0 && progressed {
            progressed = false;
            for &i in &by_remaining {
                let h = head(&pending[i]);
                let tuple = &pending[i].tuples[h];
                let current = tuple.devices.min(num_devices);
                if let Some((next_n, next_t)) =
                    next_valid_allocation(curves.get(&pending[i].metaop), current, current + spare)
                {
                    let extra = next_n - current;
                    let tuple = &mut pending[i].tuples[h];
                    tuple.devices = next_n;
                    tuple.time_per_op = next_t;
                    spare -= extra;
                    progressed = true;
                    if spare == 0 {
                        break;
                    }
                }
            }
        }
    }

    // Step 3: align time spans to the shortest proposed tuple by dissecting
    // the longer ones (scheduling only part of their operators).
    let wave_span = selected
        .iter()
        .map(|&i| {
            let t = &pending[i].tuples[head(&pending[i])];
            f64::from(t.layers_left) * t.time_per_op
        })
        .fold(f64::INFINITY, f64::min);

    let mut entries = Vec::with_capacity(selected.len());
    for &i in &selected {
        let h = head(&pending[i]);
        let metaop = pending[i].metaop;
        let tuple = &mut pending[i].tuples[h];
        let fit = if tuple.time_per_op > 0.0 {
            ((wave_span / tuple.time_per_op) + 1e-9).floor() as u32
        } else {
            tuple.layers_left
        };
        let layers = fit.clamp(1, tuple.layers_left);
        tuple.layers_left -= layers;
        entries.push(WaveEntry::new(
            metaop,
            layers,
            tuple.devices.min(num_devices),
            tuple.time_per_op,
        ));
    }

    // Step 4: conclude the wave.
    let duration = entries.iter().map(|e| e.exec_time).fold(0.0_f64, f64::max);
    Wave {
        index,
        level,
        start,
        duration,
        entries,
    }
}

/// Index of the first unfinished tuple of a pending MetaOp.
fn head(p: &PendingMetaOp) -> usize {
    p.tuples
        .iter()
        .position(|t| t.layers_left > 0)
        .expect("head() is only called on unfinished MetaOps")
}

/// The next valid allocation strictly larger than `current` but no larger than
/// `limit`, with its per-operator time.
fn next_valid_allocation(
    curve: Option<&Arc<ScalingCurve>>,
    current: u32,
    limit: u32,
) -> Option<(u32, f64)> {
    let curve = curve?;
    curve
        .valid_allocations()
        .iter()
        .find(|&&(n, _)| n > current && n <= limit)
        .map(|&(n, t)| (n, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{AllocationPlan, DiscreteAllocation, MetaOpAllocation};
    use spindle_estimator::ProfileSample;

    fn curve(points: &[(u32, f64)]) -> Arc<ScalingCurve> {
        let samples: Vec<ProfileSample> = points
            .iter()
            .map(|&(n, t)| ProfileSample {
                devices: n,
                time_s: t,
            })
            .collect();
        Arc::new(ScalingCurve::from_samples(&samples).unwrap())
    }

    fn linear(base: f64, max_n: u32) -> Arc<ScalingCurve> {
        let pts: Vec<(u32, f64)> = (0..)
            .map(|k| 1u32 << k)
            .take_while(|&n| n <= max_n)
            .map(|n| (n, base / f64::from(n)))
            .collect();
        curve(&pts)
    }

    fn alloc(metaop: u32, tuples: &[(u32, u32, f64)]) -> MetaOpAllocation {
        MetaOpAllocation {
            metaop: MetaOpId(metaop),
            tuples: tuples
                .iter()
                .map(|&(devices, layers, time_per_op)| DiscreteAllocation {
                    devices,
                    layers,
                    time_per_op,
                })
                .collect(),
        }
    }

    #[test]
    fn single_metaop_single_wave() {
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(8, 4, 0.5)])],
            target_time: 2.0,
        };
        let curves: CurveMap = [(MetaOpId(0), linear(4.0, 8))].into_iter().collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].entries.len(), 1);
        assert_eq!(waves[0].entries[0].layers, 4);
        assert!((end - 2.0).abs() < 1e-9);
        assert_eq!(waves[0].devices_used(), 8);
    }

    #[test]
    fn all_operators_scheduled_exactly_once() {
        let plan = AllocationPlan {
            allocations: vec![
                alloc(0, &[(4, 9, 0.5), (2, 2, 0.9)]),
                alloc(1, &[(2, 14, 0.3), (1, 2, 0.55)]),
                alloc(2, &[(2, 3, 0.4), (1, 13, 0.7)]),
            ],
            target_time: 6.0,
        };
        let curves: CurveMap = [
            (MetaOpId(0), linear(2.0, 8)),
            (MetaOpId(1), linear(0.6, 8)),
            (MetaOpId(2), linear(0.8, 8)),
        ]
        .into_iter()
        .collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert!(end > 0.0);
        let mut layers: BTreeMap<MetaOpId, u32> = BTreeMap::new();
        for w in &waves {
            assert!(w.devices_used() <= 8, "wave {} overflows", w.index);
            for e in &w.entries {
                *layers.entry(e.metaop).or_insert(0) += e.layers;
            }
        }
        assert_eq!(layers[&MetaOpId(0)], 11);
        assert_eq!(layers[&MetaOpId(1)], 16);
        assert_eq!(layers[&MetaOpId(2)], 16);
    }

    #[test]
    fn waves_are_contiguous_in_time() {
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(4, 6, 0.5)]), alloc(1, &[(4, 3, 1.1)])],
            target_time: 3.3,
        };
        let curves: CurveMap = [(MetaOpId(0), linear(2.0, 8)), (MetaOpId(1), linear(4.4, 8))]
            .into_iter()
            .collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 2, 1.5, 7);
        assert!(!waves.is_empty());
        assert_eq!(waves[0].start, 1.5);
        assert_eq!(waves[0].index, 7);
        assert_eq!(waves[0].level, 2);
        for pair in waves.windows(2) {
            assert!((pair[1].start - pair[0].end()).abs() < 1e-9);
            assert_eq!(pair[1].index, pair[0].index + 1);
        }
        assert!((end - waves.last().unwrap().end()).abs() < 1e-12);
    }

    #[test]
    fn number_of_waves_bounded_by_twice_metaops() {
        // Complexity analysis (§5.5): each wave consumes all layers of at least
        // one ASL-tuple and each MetaOp produces at most two tuples.
        let plan = AllocationPlan {
            allocations: vec![
                alloc(0, &[(8, 2, 0.2), (4, 9, 0.4)]),
                alloc(1, &[(2, 14, 0.25), (1, 2, 0.45)]),
                alloc(2, &[(2, 3, 0.3), (1, 13, 0.5)]),
                alloc(3, &[(1, 6, 0.6)]),
                alloc(4, &[(1, 6, 0.55)]),
            ],
            target_time: 6.0,
        };
        let curves: CurveMap = (0..5).map(|i| (MetaOpId(i), linear(1.0, 8))).collect();
        let (waves, _) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert!(waves.len() <= 2 * 5);
    }

    #[test]
    fn resource_extension_fills_idle_devices() {
        // One MetaOp with a small allocation and plenty of spare devices: the
        // scheduler should extend it to use the whole cluster.
        let c = linear(4.0, 8);
        let t1 = c.time_at(1).unwrap();
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(1, 8, t1)])],
            target_time: 8.0 * t1,
        };
        let curves: CurveMap = [(MetaOpId(0), Arc::clone(&c))].into_iter().collect();
        let (waves, end) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].entries[0].devices, 8);
        // Extension uses the faster per-op time from the curve.
        assert!(end < 8.0 * t1);
    }

    #[test]
    fn alignment_slices_long_metaops() {
        // A long MetaOp next to a short one: the first wave must cut the long
        // one so both entries span (roughly) the same time.
        let plan = AllocationPlan {
            allocations: vec![alloc(0, &[(4, 20, 0.5)]), alloc(1, &[(4, 2, 0.5)])],
            target_time: 10.0,
        };
        let curves: CurveMap = [(MetaOpId(0), linear(2.0, 4)), (MetaOpId(1), linear(2.0, 4))]
            .into_iter()
            .collect();
        let (waves, _) = schedule_level(&plan, &curves, 8, 0, 0.0, 0);
        let first = &waves[0];
        let e0 = first.entry_for(MetaOpId(0)).unwrap();
        let e1 = first.entry_for(MetaOpId(1)).unwrap();
        assert_eq!(e1.layers, 2);
        assert_eq!(e0.layers, 2, "long MetaOp must be dissected to align spans");
        assert!((e0.exec_time - e1.exec_time).abs() < 1e-9);
        // The remaining 18 layers appear in later waves.
        let total: u32 = waves
            .iter()
            .filter_map(|w| w.entry_for(MetaOpId(0)))
            .map(|e| e.layers)
            .sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn empty_plan_produces_no_waves() {
        let plan = AllocationPlan {
            allocations: vec![],
            target_time: 0.0,
        };
        let (waves, end) = schedule_level(&plan, &CurveMap::new(), 8, 0, 3.0, 0);
        assert!(waves.is_empty());
        assert_eq!(end, 3.0);
    }
}
