//! Property-style tests of the wavefront scheduler's invariants over randomly
//! generated allocation plans, driven by the deterministic xorshift generator
//! (the offline stand-in for proptest).
//!
//! For *any* well-formed allocation plan the scheduler must (a) schedule every
//! layer of every MetaOp exactly once, (b) never oversubscribe the cluster in
//! any wave, and (c) produce at most `2·|MetaOps|` waves — the §5.5 complexity
//! bound: each wave finishes at least one ASL-tuple and each MetaOp has at
//! most two.

use std::collections::BTreeMap;

use spindle_core::allocator::{AllocationPlan, DiscreteAllocation, MetaOpAllocation};
use spindle_core::wavefront::{schedule_level, CurveMap};
use spindle_core::MetaOpId;
use spindle_estimator::test_util::linear_curve;

/// Deterministic xorshift64* PRNG — a stand-in for proptest's generators.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.range(0, options.len() as u64) as usize]
    }
}

/// A random allocation plan shaped like the bi-point discretiser's output: at
/// most two tuples per MetaOp (larger allocation first), power-of-two device
/// counts no larger than the cluster, positive per-operator times consistent
/// with a `base / n` curve.
fn random_plan(rng: &mut Rng, num_devices: u32) -> (AllocationPlan, CurveMap) {
    let num_metaops = rng.range(1, 12) as u32;
    let mut allocations = Vec::new();
    let mut curves = CurveMap::new();
    for id in 0..num_metaops {
        let base = rng.range(1, 40) as f64 / 10.0;
        let curve = linear_curve(base, num_devices);
        let powers: Vec<u32> = (0..)
            .map(|k| 1u32 << k)
            .take_while(|&n| n <= num_devices)
            .collect();
        let hi = rng.pick(&powers);
        let mut tuples = vec![DiscreteAllocation {
            devices: hi,
            layers: rng.range(1, 20) as u32,
            time_per_op: base / f64::from(hi),
        }];
        // Half the MetaOps get a second, smaller tuple (the bi-point case).
        if hi > 1 && rng.range(0, 2) == 0 {
            let lo = hi / 2;
            tuples.push(DiscreteAllocation {
                devices: lo,
                layers: rng.range(1, 20) as u32,
                time_per_op: base / f64::from(lo),
            });
        }
        curves.insert(MetaOpId(id), curve);
        allocations.push(MetaOpAllocation {
            metaop: MetaOpId(id),
            tuples,
        });
    }
    (
        AllocationPlan {
            allocations,
            target_time: rng.range(1, 100) as f64 / 10.0,
        },
        curves,
    )
}

#[test]
fn random_plans_satisfy_all_wavefront_invariants() {
    let mut rng = Rng::new(0x5eed_0a0e);
    for case in 0..64 {
        let num_devices = rng.pick(&[4u32, 8, 16, 32]);
        let (plan, curves) = random_plan(&mut rng, num_devices);
        let expected_layers: BTreeMap<MetaOpId, u32> = plan
            .allocations
            .iter()
            .map(|a| (a.metaop, a.total_layers()))
            .collect();
        let num_metaops = plan.allocations.len();

        let (waves, end) = schedule_level(&plan, &curves, num_devices, 0, 0.0, 0);

        // (a) every layer scheduled exactly once.
        let mut scheduled: BTreeMap<MetaOpId, u32> = BTreeMap::new();
        for w in &waves {
            for e in &w.entries {
                *scheduled.entry(e.metaop).or_insert(0) += e.layers;
            }
        }
        assert_eq!(scheduled, expected_layers, "case {case}: layer coverage");

        // (b) no wave oversubscribes the cluster.
        for w in &waves {
            assert!(
                w.devices_used() <= num_devices,
                "case {case}: wave {} uses {} of {num_devices} devices",
                w.index,
                w.devices_used()
            );
        }

        // (c) at most 2·|MetaOps| waves.
        assert!(
            waves.len() <= 2 * num_metaops,
            "case {case}: {} waves for {num_metaops} MetaOps",
            waves.len()
        );

        // Waves are contiguous and the reported end matches the last wave.
        for pair in waves.windows(2) {
            assert!(
                (pair[1].start - pair[0].end()).abs() < 1e-9,
                "case {case}: waves not contiguous"
            );
        }
        assert!((end - waves.last().map_or(0.0, |w| w.end())).abs() < 1e-12);
    }
}

#[test]
fn random_plans_without_curves_still_satisfy_invariants() {
    // No curves means no resource extension — the invariants must hold anyway.
    let mut rng = Rng::new(0x5eed_0b57);
    for case in 0..32 {
        let num_devices = rng.pick(&[4u32, 8, 16]);
        let (plan, _) = random_plan(&mut rng, num_devices);
        let total: u32 = plan.allocations.iter().map(|a| a.total_layers()).sum();
        let num_metaops = plan.allocations.len();
        let (waves, _) = schedule_level(&plan, &CurveMap::new(), num_devices, 0, 0.0, 0);
        let scheduled: u32 = waves
            .iter()
            .flat_map(|w| w.entries.iter())
            .map(|e| e.layers)
            .sum();
        assert_eq!(scheduled, total, "case {case}");
        assert!(waves.len() <= 2 * num_metaops, "case {case}");
        assert!(waves.iter().all(|w| w.devices_used() <= num_devices));
    }
}
