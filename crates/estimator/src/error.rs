//! Error type for the scalability estimator.

use std::error::Error;
use std::fmt;

/// Errors produced while profiling or fitting scaling curves.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EstimatorError {
    /// No valid device allocation exists for an operator under the given
    /// cluster size (should not happen: 1 device is always valid).
    NoValidAllocation,
    /// Fewer than two profile samples were available, so no curve can be fit.
    InsufficientSamples(usize),
    /// A profile sample carried a non-positive execution time.
    NonPositiveTime(f64),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::NoValidAllocation => {
                write!(f, "operator has no valid device allocation")
            }
            EstimatorError::InsufficientSamples(n) => {
                write!(f, "need at least 2 profile samples, got {n}")
            }
            EstimatorError::NonPositiveTime(t) => {
                write!(f, "profile sample has non-positive time {t}")
            }
        }
    }
}

impl Error for EstimatorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EstimatorError>();
        assert!(EstimatorError::InsufficientSamples(1)
            .to_string()
            .contains("2"));
        assert!(EstimatorError::NonPositiveTime(-1.0)
            .to_string()
            .contains("-1"));
        assert!(!EstimatorError::NoValidAllocation.to_string().is_empty());
    }
}
