//! The scalability estimator facade with cache-aware curve fitting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use spindle_cluster::ClusterSpec;
use spindle_graph::{Operator, WorkloadSignature};

use crate::{AnalyticGpuModel, EstimatorError, PerfModel, Profiler, ScalingCurve};

/// Default byte budget of the curve cache: generous enough that paper-scale
/// and hyperscale workloads never evict, small enough that a long-running
/// multi-tenant service cannot grow without bound.
pub const DEFAULT_CURVE_CACHE_BUDGET: usize = 16 * 1024 * 1024;

/// Counters describing the curve cache of a [`ScalabilityEstimator`].
///
/// `fits` counts the expensive operations (profile sweep + piecewise α–β fit);
/// `hits` counts lookups served from the cache. Long-lived planning sessions
/// use these to verify that re-planning a workload with unchanged operator
/// signatures performs **zero** new fits. `bytes` and `evictions` track the
/// LRU byte bound: the cache never holds more than its configured budget of
/// approximate curve bytes, evicting least-recently-used fits when it would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CurveCacheStats {
    /// Distinct operator signatures currently cached.
    pub entries: usize,
    /// Profile-and-fit operations performed since the estimator was created.
    pub fits: usize,
    /// Curve lookups served from the cache without fitting.
    pub hits: usize,
    /// Approximate bytes currently held by the cached curves.
    pub bytes: usize,
    /// Curves evicted to keep the cache within its byte budget.
    pub evictions: usize,
}

impl CurveCacheStats {
    /// Fraction of lookups served from the cache (0.0 when nothing was looked
    /// up yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.fits + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The scalability estimator of §3.2: profiles each distinct operator workload
/// and fits its piecewise α–β scaling curve, with results cached by
/// [`WorkloadSignature`] — the task-independent workload identity — so that
/// the thousands of identical layers of a workload pay the cost once, equal
/// towers of *different* tasks share one fit, and, when the estimator is
/// shared by a long-lived planning session, *re-planning* a changed task mix
/// only fits curves for workloads it has never seen (regardless of how task
/// ids shifted in the new graph).
pub struct ScalabilityEstimator {
    model: Arc<dyn PerfModel>,
    profiler: Profiler,
    max_devices: u32,
    /// Curves by signature. An `RwLock` (not a `Mutex`) so that concurrent
    /// planners sharing one warm estimator — e.g. the phase workers of
    /// `SpindleSession::plan_phases_parallel` — serve cache hits without
    /// serialising on the lock; the write path is taken only on a fit.
    cache: RwLock<HashMap<WorkloadSignature, CurveSlot>>,
    /// Byte budget of the cache; [`usize::MAX`] disables eviction.
    budget: AtomicUsize,
    /// Approximate bytes currently cached. Mutated only under the cache's
    /// write lock; atomic so the read-path stats snapshot stays lock-free.
    bytes: AtomicUsize,
    /// Logical LRU clock: every lookup stamps the hit slot with the next
    /// tick, so eviction can order slots by recency without a linked list.
    clock: AtomicU64,
    fits: AtomicUsize,
    hits: AtomicUsize,
    evictions: AtomicUsize,
}

/// One cached curve with its LRU stamp and accounted size.
struct CurveSlot {
    curve: Arc<ScalingCurve>,
    bytes: usize,
    /// Tick of the most recent lookup; updated through the read path with a
    /// relaxed store (an approximate LRU is all eviction needs).
    tick: AtomicU64,
}

impl CurveSlot {
    fn new(curve: Arc<ScalingCurve>, tick: u64) -> Self {
        let bytes = std::mem::size_of::<WorkloadSignature>()
            + std::mem::size_of::<Self>()
            + curve.approx_bytes();
        Self {
            curve,
            bytes,
            tick: AtomicU64::new(tick),
        }
    }
}

impl std::fmt::Debug for ScalabilityEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalabilityEstimator")
            .field("max_devices", &self.max_devices)
            .field("cached_curves", &self.cached_curves())
            .field("curve_fits", &self.curve_fits())
            .finish()
    }
}

impl ScalabilityEstimator {
    /// Creates an estimator backed by the default analytic GPU model for
    /// `cluster`.
    #[must_use]
    pub fn new(cluster: &ClusterSpec) -> Self {
        Self::with_model(
            Arc::new(AnalyticGpuModel::new(cluster)),
            cluster.num_devices() as u32,
        )
    }

    /// Creates an estimator backed by an arbitrary performance model
    /// (e.g. a replayer of real profiling traces).
    #[must_use]
    pub fn with_model(model: Arc<dyn PerfModel>, max_devices: u32) -> Self {
        Self {
            model,
            profiler: Profiler::new(),
            max_devices: max_devices.max(1),
            cache: RwLock::new(HashMap::new()),
            budget: AtomicUsize::new(usize::MAX),
            bytes: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            fits: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// The largest allocation the estimator profiles up to (the cluster size).
    #[must_use]
    pub fn max_devices(&self) -> u32 {
        self.max_devices
    }

    /// The cache's byte budget ([`usize::MAX`] when unbounded).
    #[must_use]
    pub fn cache_budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Sets the cache's byte budget, evicting least-recently-used curves if
    /// the cache currently exceeds it. A no-op when the budget is unchanged,
    /// so callers (e.g. a planning session applying its config before every
    /// pass) can invoke it unconditionally.
    pub fn ensure_cache_budget(&self, budget: usize) {
        if self.budget.swap(budget, Ordering::Relaxed) == budget {
            return;
        }
        if self.bytes.load(Ordering::Relaxed) > budget {
            let mut cache = self.write_cache();
            self.evict_to_budget(&mut cache, budget);
        }
    }

    /// The scaling curve `T_m(n)` of the given operator (cached by signature).
    ///
    /// # Panics
    ///
    /// Panics if the operator cannot be profiled at any allocation, which
    /// cannot happen for operators built through `spindle-graph` (allocation 1
    /// is always valid). Use [`try_curve_for`](Self::try_curve_for) to handle
    /// the error explicitly.
    #[must_use]
    pub fn curve_for(&self, op: &Operator) -> Arc<ScalingCurve> {
        self.try_curve_for(op)
            .expect("operator must admit at least the single-device allocation")
    }

    /// The scaling curve of the given operator, or an error if profiling fails.
    ///
    /// Cache hits are free and counted in [`cache_stats`](Self::cache_stats);
    /// misses run the profiler and fit a fresh curve.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::NoValidAllocation`] if no allocation of the
    /// operator is executable under the performance model.
    pub fn try_curve_for(&self, op: &Operator) -> Result<Arc<ScalingCurve>, EstimatorError> {
        let signature = op.workload_signature();
        if let Some(slot) = self.read_cache().get(&signature) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            slot.tick.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            return Ok(Arc::clone(&slot.curve));
        }
        let samples = self
            .profiler
            .profile(self.model.as_ref(), op, self.max_devices)?;
        let curve = Arc::new(ScalingCurve::from_samples(&samples)?);
        // Re-check under the write lock: a concurrent caller sharing this
        // estimator may have fitted the same signature meanwhile. Keeping the
        // counters inside the critical section preserves the invariant that
        // `curve_fits()` equals the number of distinct fitted signatures,
        // which the zero-new-fits probes rely on (evictions may later shrink
        // the cache below the fit count).
        let mut cache = self.write_cache();
        if let Some(existing) = cache.get(&signature) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&existing.curve));
        }
        self.fits.fetch_add(1, Ordering::Relaxed);
        let slot = CurveSlot::new(
            Arc::clone(&curve),
            self.clock.fetch_add(1, Ordering::Relaxed),
        );
        self.bytes.fetch_add(slot.bytes, Ordering::Relaxed);
        cache.insert(signature, slot);
        self.evict_to_budget(&mut cache, self.budget.load(Ordering::Relaxed));
        Ok(curve)
    }

    /// Evicts least-recently-used slots until the accounted bytes fit the
    /// budget. Must be called with the write lock held. The just-inserted
    /// slot carries the freshest tick, so it goes last — but even it is
    /// dropped if it alone exceeds the budget, keeping the bound a hard
    /// invariant (the curve was still returned to the caller; a later lookup
    /// simply re-fits).
    fn evict_to_budget(&self, cache: &mut HashMap<WorkloadSignature, CurveSlot>, budget: usize) {
        while self.bytes.load(Ordering::Relaxed) > budget && !cache.is_empty() {
            let oldest = cache
                .iter()
                .min_by_key(|(_, slot)| slot.tick.load(Ordering::Relaxed))
                .map(|(sig, _)| *sig)
                .expect("cache is non-empty");
            if let Some(slot) = cache.remove(&oldest) {
                self.bytes.fetch_sub(slot.bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Per-device memory in bytes of one operator at allocation `n`.
    #[must_use]
    pub fn memory_bytes(&self, op: &Operator, n: u32) -> u64 {
        self.model.memory_bytes(op, n.max(1))
    }

    /// Number of distinct operator signatures profiled so far.
    #[must_use]
    pub fn cached_curves(&self) -> usize {
        self.read_cache().len()
    }

    /// Number of profile-and-fit operations performed so far. A lookup served
    /// from the cache does **not** increment this, which is what lets session
    /// tests assert "re-planning performed zero new fits".
    #[must_use]
    pub fn curve_fits(&self) -> usize {
        self.fits.load(Ordering::Relaxed)
    }

    /// Number of curve lookups served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently held by the cached curves.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Curves evicted so far to keep the cache within its byte budget.
    #[must_use]
    pub fn cache_evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A snapshot of the curve-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CurveCacheStats {
        CurveCacheStats {
            entries: self.cached_curves(),
            fits: self.curve_fits(),
            hits: self.cache_hits(),
            bytes: self.cache_bytes(),
            evictions: self.cache_evictions(),
        }
    }

    fn read_cache(&self) -> std::sync::RwLockReadGuard<'_, HashMap<WorkloadSignature, CurveSlot>> {
        self.cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_cache(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<WorkloadSignature, CurveSlot>> {
        self.cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{Modality, OpId, OpKind, TaskId, TensorShape};

    fn estimator() -> ScalabilityEstimator {
        ScalabilityEstimator::new(&ClusterSpec::homogeneous(4, 8))
    }

    fn op(id: u32, kind: OpKind, shape: TensorShape) -> Operator {
        Operator::new(OpId(id), kind, TaskId(0), shape)
    }

    #[test]
    fn curves_are_cached_by_signature() {
        let est = estimator();
        let a = op(
            0,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let b = op(
            7,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let c = op(
            9,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(8, 77, 768),
        );
        let ca = est.curve_for(&a);
        let cb = est.curve_for(&b);
        let cc = est.curve_for(&c);
        assert!(Arc::ptr_eq(&ca, &cb));
        assert!(!Arc::ptr_eq(&ca, &cc));
        assert_eq!(est.cached_curves(), 2);
    }

    #[test]
    fn fit_and_hit_counters_track_cache_traffic() {
        let est = estimator();
        let a = op(
            0,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let b = op(
            7,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        assert_eq!(est.cache_stats(), CurveCacheStats::default());
        let _ = est.curve_for(&a);
        assert_eq!(est.curve_fits(), 1);
        assert_eq!(est.cache_hits(), 0);
        let _ = est.curve_for(&b); // same signature: a hit, no new fit
        let _ = est.curve_for(&a);
        let stats = est.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.fits, 1);
        assert_eq!(stats.hits, 2);
        assert!(stats.bytes > 0, "cached curves must be accounted");
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_curves() {
        let est = estimator();
        let op_for = |id: u32, seq: u32| {
            op(
                id,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, seq, 768),
            )
        };
        let first = est.curve_for(&op_for(0, 100));
        let per_curve = est.cache_bytes();
        assert!(per_curve > first.approx_bytes(), "slot overhead is counted");
        // Budget for roughly two curves: the third insert evicts the LRU one.
        est.ensure_cache_budget(2 * per_curve + per_curve / 2);
        let _ = est.curve_for(&op_for(1, 101));
        assert_eq!(est.cache_evictions(), 0);
        // Touch the first signature so the *second* becomes LRU.
        let _ = est.curve_for(&op_for(0, 100));
        let _ = est.curve_for(&op_for(2, 102));
        assert_eq!(est.cache_evictions(), 1);
        assert!(est.cache_bytes() <= est.cache_budget());
        assert_eq!(est.cached_curves(), 2);
        // The touched signature survived; the untouched one was evicted and
        // now re-fits (correctness is unaffected, only cost).
        let fits = est.curve_fits();
        let refit = est.curve_for(&op_for(0, 100));
        assert_eq!(est.curve_fits(), fits, "recently used curve stays cached");
        assert_eq!(refit.valid_allocations(), first.valid_allocations());
        let _ = est.curve_for(&op_for(1, 101));
        assert_eq!(est.curve_fits(), fits + 1, "evicted curve must re-fit");
    }

    #[test]
    fn shrinking_the_budget_evicts_immediately_and_bound_is_hard() {
        let est = estimator();
        for seq in 0..8u32 {
            let _ = est.curve_for(&op(
                seq,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(8, 100 + seq, 768),
            ));
        }
        assert_eq!(est.cached_curves(), 8);
        let bytes = est.cache_bytes();
        est.ensure_cache_budget(bytes / 2);
        assert!(est.cache_bytes() <= bytes / 2);
        assert!(est.cache_evictions() >= 4);
        // A budget below a single curve keeps the cache empty but functional.
        est.ensure_cache_budget(8);
        assert_eq!(est.cache_bytes(), 0);
        let curve = est.curve_for(&op(
            99,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(8, 77, 768),
        ));
        assert!(curve.max_allocation() >= 1);
        assert_eq!(est.cache_bytes(), 0, "oversized entries are not retained");
    }

    #[test]
    fn heavy_ops_have_better_scalability() {
        let est = estimator();
        let llm = op(0, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 4096));
        let text = op(
            1,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(4, 77, 768),
        );
        assert!(est.curve_for(&llm).scalability(16.0) > est.curve_for(&text).scalability(16.0));
    }

    #[test]
    fn memory_positive_and_shrinks() {
        let est = estimator();
        let llm = op(0, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 4096));
        assert!(est.memory_bytes(&llm, 1) > est.memory_bytes(&llm, 8));
        assert!(est.memory_bytes(&llm, 8) > 0);
    }

    #[test]
    fn max_devices_bounds_curve() {
        let est = estimator();
        assert_eq!(est.max_devices(), 32);
        let a = op(
            0,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(8, 257, 768),
        );
        assert!(est.curve_for(&a).max_allocation() <= 32);
    }

    #[test]
    fn debug_does_not_leak_internals() {
        let est = estimator();
        let s = format!("{est:?}");
        assert!(s.contains("ScalabilityEstimator"));
    }
}
