//! The scalability estimator facade with cache-aware curve fitting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use spindle_cluster::ClusterSpec;
use spindle_graph::{Operator, WorkloadSignature};

use crate::{AnalyticGpuModel, EstimatorError, PerfModel, Profiler, ScalingCurve};

/// Counters describing the curve cache of a [`ScalabilityEstimator`].
///
/// `fits` counts the expensive operations (profile sweep + piecewise α–β fit);
/// `hits` counts lookups served from the cache. Long-lived planning sessions
/// use these to verify that re-planning a workload with unchanged operator
/// signatures performs **zero** new fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CurveCacheStats {
    /// Distinct operator signatures currently cached.
    pub entries: usize,
    /// Profile-and-fit operations performed since the estimator was created.
    pub fits: usize,
    /// Curve lookups served from the cache without fitting.
    pub hits: usize,
}

impl CurveCacheStats {
    /// Fraction of lookups served from the cache (0.0 when nothing was looked
    /// up yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.fits + self.hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The scalability estimator of §3.2: profiles each distinct operator workload
/// and fits its piecewise α–β scaling curve, with results cached by
/// [`WorkloadSignature`] — the task-independent workload identity — so that
/// the thousands of identical layers of a workload pay the cost once, equal
/// towers of *different* tasks share one fit, and, when the estimator is
/// shared by a long-lived planning session, *re-planning* a changed task mix
/// only fits curves for workloads it has never seen (regardless of how task
/// ids shifted in the new graph).
pub struct ScalabilityEstimator {
    model: Arc<dyn PerfModel>,
    profiler: Profiler,
    max_devices: u32,
    /// Curves by signature. An `RwLock` (not a `Mutex`) so that concurrent
    /// planners sharing one warm estimator — e.g. the phase workers of
    /// `SpindleSession::plan_phases_parallel` — serve cache hits without
    /// serialising on the lock; the write path is taken only on a fit.
    cache: RwLock<HashMap<WorkloadSignature, Arc<ScalingCurve>>>,
    fits: AtomicUsize,
    hits: AtomicUsize,
}

impl std::fmt::Debug for ScalabilityEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScalabilityEstimator")
            .field("max_devices", &self.max_devices)
            .field("cached_curves", &self.cached_curves())
            .field("curve_fits", &self.curve_fits())
            .finish()
    }
}

impl ScalabilityEstimator {
    /// Creates an estimator backed by the default analytic GPU model for
    /// `cluster`.
    #[must_use]
    pub fn new(cluster: &ClusterSpec) -> Self {
        Self::with_model(
            Arc::new(AnalyticGpuModel::new(cluster)),
            cluster.num_devices() as u32,
        )
    }

    /// Creates an estimator backed by an arbitrary performance model
    /// (e.g. a replayer of real profiling traces).
    #[must_use]
    pub fn with_model(model: Arc<dyn PerfModel>, max_devices: u32) -> Self {
        Self {
            model,
            profiler: Profiler::new(),
            max_devices: max_devices.max(1),
            cache: RwLock::new(HashMap::new()),
            fits: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// The largest allocation the estimator profiles up to (the cluster size).
    #[must_use]
    pub fn max_devices(&self) -> u32 {
        self.max_devices
    }

    /// The scaling curve `T_m(n)` of the given operator (cached by signature).
    ///
    /// # Panics
    ///
    /// Panics if the operator cannot be profiled at any allocation, which
    /// cannot happen for operators built through `spindle-graph` (allocation 1
    /// is always valid). Use [`try_curve_for`](Self::try_curve_for) to handle
    /// the error explicitly.
    #[must_use]
    pub fn curve_for(&self, op: &Operator) -> Arc<ScalingCurve> {
        self.try_curve_for(op)
            .expect("operator must admit at least the single-device allocation")
    }

    /// The scaling curve of the given operator, or an error if profiling fails.
    ///
    /// Cache hits are free and counted in [`cache_stats`](Self::cache_stats);
    /// misses run the profiler and fit a fresh curve.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::NoValidAllocation`] if no allocation of the
    /// operator is executable under the performance model.
    pub fn try_curve_for(&self, op: &Operator) -> Result<Arc<ScalingCurve>, EstimatorError> {
        let signature = op.workload_signature();
        if let Some(curve) = self.read_cache().get(&signature) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(curve));
        }
        let samples = self
            .profiler
            .profile(self.model.as_ref(), op, self.max_devices)?;
        let curve = Arc::new(ScalingCurve::from_samples(&samples)?);
        // Re-check under the write lock: a concurrent caller sharing this
        // estimator may have fitted the same signature meanwhile. Keeping the
        // counters inside the critical section preserves the invariant that
        // `curve_fits()` equals the number of distinct cached signatures,
        // which the zero-new-fits probes rely on.
        let mut cache = self.write_cache();
        if let Some(existing) = cache.get(&signature) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(existing));
        }
        self.fits.fetch_add(1, Ordering::Relaxed);
        cache.insert(signature, Arc::clone(&curve));
        Ok(curve)
    }

    /// Per-device memory in bytes of one operator at allocation `n`.
    #[must_use]
    pub fn memory_bytes(&self, op: &Operator, n: u32) -> u64 {
        self.model.memory_bytes(op, n.max(1))
    }

    /// Number of distinct operator signatures profiled so far.
    #[must_use]
    pub fn cached_curves(&self) -> usize {
        self.read_cache().len()
    }

    /// Number of profile-and-fit operations performed so far. A lookup served
    /// from the cache does **not** increment this, which is what lets session
    /// tests assert "re-planning performed zero new fits".
    #[must_use]
    pub fn curve_fits(&self) -> usize {
        self.fits.load(Ordering::Relaxed)
    }

    /// Number of curve lookups served from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// A snapshot of the curve-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CurveCacheStats {
        CurveCacheStats {
            entries: self.cached_curves(),
            fits: self.curve_fits(),
            hits: self.cache_hits(),
        }
    }

    fn read_cache(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<WorkloadSignature, Arc<ScalingCurve>>> {
        self.cache
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_cache(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<WorkloadSignature, Arc<ScalingCurve>>> {
        self.cache
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{Modality, OpId, OpKind, TaskId, TensorShape};

    fn estimator() -> ScalabilityEstimator {
        ScalabilityEstimator::new(&ClusterSpec::homogeneous(4, 8))
    }

    fn op(id: u32, kind: OpKind, shape: TensorShape) -> Operator {
        Operator::new(OpId(id), kind, TaskId(0), shape)
    }

    #[test]
    fn curves_are_cached_by_signature() {
        let est = estimator();
        let a = op(
            0,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let b = op(
            7,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let c = op(
            9,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(8, 77, 768),
        );
        let ca = est.curve_for(&a);
        let cb = est.curve_for(&b);
        let cc = est.curve_for(&c);
        assert!(Arc::ptr_eq(&ca, &cb));
        assert!(!Arc::ptr_eq(&ca, &cc));
        assert_eq!(est.cached_curves(), 2);
    }

    #[test]
    fn fit_and_hit_counters_track_cache_traffic() {
        let est = estimator();
        let a = op(
            0,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let b = op(
            7,
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        assert_eq!(est.cache_stats(), CurveCacheStats::default());
        let _ = est.curve_for(&a);
        assert_eq!(est.curve_fits(), 1);
        assert_eq!(est.cache_hits(), 0);
        let _ = est.curve_for(&b); // same signature: a hit, no new fit
        let _ = est.curve_for(&a);
        let stats = est.cache_stats();
        assert_eq!(
            stats,
            CurveCacheStats {
                entries: 1,
                fits: 1,
                hits: 2
            }
        );
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_ops_have_better_scalability() {
        let est = estimator();
        let llm = op(0, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 4096));
        let text = op(
            1,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(4, 77, 768),
        );
        assert!(est.curve_for(&llm).scalability(16.0) > est.curve_for(&text).scalability(16.0));
    }

    #[test]
    fn memory_positive_and_shrinks() {
        let est = estimator();
        let llm = op(0, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 4096));
        assert!(est.memory_bytes(&llm, 1) > est.memory_bytes(&llm, 8));
        assert!(est.memory_bytes(&llm, 8) > 0);
    }

    #[test]
    fn max_devices_bounds_curve() {
        let est = estimator();
        assert_eq!(est.max_devices(), 32);
        let a = op(
            0,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(8, 257, 768),
        );
        assert!(est.curve_for(&a).max_allocation() <= 32);
    }

    #[test]
    fn debug_does_not_leak_internals() {
        let est = estimator();
        let s = format!("{est:?}");
        assert!(s.contains("ScalabilityEstimator"));
    }
}
