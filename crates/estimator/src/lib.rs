//! # spindle-estimator
//!
//! Scalability estimator for MT MM workloads (§3.2 and Appendix A of the
//! paper).
//!
//! The estimator answers one question for the planner: *how long does one
//! operator of MetaOp `m` take when allocated `n` devices*, i.e. the execution
//! time function `T_m(n)` — including how it degrades when operators are small
//! and devices are plentiful (poor resource scalability).
//!
//! In the paper, `T_m(n)` is obtained by profiling the real model on real GPUs
//! at a few discrete allocations and fitting a *piecewise α–β* model. Real
//! hardware is not available to this reproduction, so profiling is replaced by
//! an [`AnalyticGpuModel`]: a deterministic, calibrated analytic model of an
//! A800-class GPU (compute-efficiency roll-off for small per-device workloads,
//! kernel-launch overheads, tensor-parallel communication). The estimator then
//! fits the same piecewise α–β curves on top of those synthetic profiles — so
//! the code path downstream of profiling is exactly the paper's.
//!
//! ## Example
//!
//! ```
//! use spindle_cluster::ClusterSpec;
//! use spindle_estimator::ScalabilityEstimator;
//! use spindle_graph::{Modality, OpId, OpKind, Operator, TaskId, TensorShape};
//!
//! let cluster = ClusterSpec::homogeneous(2, 8);
//! let estimator = ScalabilityEstimator::new(&cluster);
//!
//! // A heavyweight LM layer scales much further than a tiny text layer.
//! let lm = Operator::new(OpId(0), OpKind::LmDecoderOnly, TaskId(0), TensorShape::new(8, 512, 4096));
//! let text = Operator::new(OpId(1), OpKind::Encoder(Modality::Text), TaskId(0), TensorShape::new(4, 77, 768));
//! let lm_curve = estimator.curve_for(&lm);
//! let text_curve = estimator.curve_for(&text);
//! assert!(lm_curve.scalability(8.0) > text_curve.scalability(8.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod estimator;
mod memory_model;
mod parallel;
mod perf_model;
mod piecewise;
mod profiler;
mod scaling_curve;
#[cfg(any(test, feature = "test-util"))]
pub mod test_util;

pub use error::EstimatorError;
pub use estimator::{CurveCacheStats, ScalabilityEstimator, DEFAULT_CURVE_CACHE_BUDGET};
pub use memory_model::MemoryModel;
pub use parallel::ParallelConfig;
pub use perf_model::{AnalyticGpuModel, PerfModel};
pub use piecewise::PiecewiseAlphaBeta;
pub use profiler::{ProfileSample, Profiler};
pub use scaling_curve::ScalingCurve;
