//! Per-operator device-memory estimation.

use spindle_graph::Operator;

use crate::PerfModel;

/// Estimates per-device memory consumption of operators.
///
/// Used by the device-placement step (§3.5: "Spindle estimates each MetaOp's
/// memory consumption, tracks available memory on devices, and prioritizes
/// placement on the device with the most available memory") and by the runtime
/// engine's memory accounting (Appendix G).
#[derive(Debug)]
pub struct MemoryModel<'a> {
    model: &'a dyn PerfModel,
}

impl<'a> MemoryModel<'a> {
    /// Creates a memory model backed by a performance model.
    #[must_use]
    pub fn new(model: &'a dyn PerfModel) -> Self {
        Self { model }
    }

    /// Peak per-device bytes needed by one operator of a MetaOp when the
    /// MetaOp is allocated `n` devices.
    #[must_use]
    pub fn per_device_bytes(&self, op: &Operator, n: u32) -> u64 {
        self.model.memory_bytes(op, n.max(1))
    }

    /// Peak per-device bytes for `layers` stacked operators sharing the same
    /// allocation (e.g. the slice of a MetaOp placed on one device group).
    #[must_use]
    pub fn per_device_bytes_for_slice(&self, op: &Operator, n: u32, layers: u32) -> u64 {
        self.per_device_bytes(op, n)
            .saturating_mul(u64::from(layers.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyticGpuModel;
    use spindle_cluster::ClusterSpec;
    use spindle_graph::{OpId, OpKind, TaskId, TensorShape};

    #[test]
    fn slices_scale_linearly_with_layers() {
        let cluster = ClusterSpec::homogeneous(1, 8);
        let gpu_model = AnalyticGpuModel::new(&cluster);
        let mem = MemoryModel::new(&gpu_model);
        let op = Operator::new(
            OpId(0),
            OpKind::LmDecoderOnly,
            TaskId(0),
            TensorShape::new(8, 512, 2048),
        );
        let one = mem.per_device_bytes_for_slice(&op, 4, 1);
        let four = mem.per_device_bytes_for_slice(&op, 4, 4);
        assert_eq!(four, 4 * one);
        assert_eq!(one, mem.per_device_bytes(&op, 4));
        // Zero layers are clamped to one to avoid vanishing footprints.
        assert_eq!(mem.per_device_bytes_for_slice(&op, 4, 0), one);
    }
}
