//! Intra-operator parallel configurations (data parallelism × tensor
//! parallelism).

use std::fmt;

use spindle_graph::Operator;

/// A hybrid parallel configuration for executing one operator on
/// `dp × tp` devices: the batch is split `dp` ways (data parallelism) and the
/// operator's weights are split `tp` ways (tensor parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelConfig {
    /// Data-parallel degree.
    pub dp: u32,
    /// Tensor-parallel degree.
    pub tp: u32,
}

impl ParallelConfig {
    /// The single-device configuration.
    pub const SERIAL: ParallelConfig = ParallelConfig { dp: 1, tp: 1 };

    /// Total number of devices used.
    #[must_use]
    pub fn num_devices(&self) -> u32 {
        self.dp * self.tp
    }

    /// All valid configurations of `op` on exactly `n` devices: the
    /// data-parallel degree must divide the operator's batch, and the
    /// tensor-parallel degree must be 1, 2, 4 or 8 (bounded by NVLink island
    /// size) and not exceed the number of attention heads implied by the
    /// hidden dimension.
    #[must_use]
    pub fn valid_for(op: &Operator, n: u32) -> Vec<ParallelConfig> {
        let batch = op.input_shape().batch;
        let heads = (op.input_shape().hidden / 64).max(1);
        let mut configs = Vec::new();
        for tp in [1u32, 2, 4, 8] {
            if n % tp != 0 || tp > heads {
                continue;
            }
            let dp = n / tp;
            if dp == 0 || batch % dp != 0 {
                continue;
            }
            configs.push(ParallelConfig { dp, tp });
        }
        configs
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dp{}xtp{}", self.dp, self.tp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{Modality, OpId, OpKind, TaskId, TensorShape};

    fn op(batch: u32, hidden: u32) -> Operator {
        Operator::new(
            OpId(0),
            OpKind::Encoder(Modality::Text),
            TaskId(0),
            TensorShape::new(batch, 77, hidden),
        )
    }

    #[test]
    fn serial_config_always_valid() {
        let configs = ParallelConfig::valid_for(&op(8, 768), 1);
        assert_eq!(configs, vec![ParallelConfig::SERIAL]);
        assert_eq!(ParallelConfig::SERIAL.num_devices(), 1);
    }

    #[test]
    fn dp_must_divide_batch() {
        // batch 4 on 8 devices: dp=8 invalid, dp4xtp2 / dp2xtp4 / dp1xtp8 valid.
        let configs = ParallelConfig::valid_for(&op(4, 768), 8);
        assert!(!configs.iter().any(|c| c.dp == 8));
        assert!(configs.contains(&ParallelConfig { dp: 4, tp: 2 }));
        assert!(configs.contains(&ParallelConfig { dp: 1, tp: 8 }));
        for c in &configs {
            assert_eq!(c.num_devices(), 8);
        }
    }

    #[test]
    fn odd_device_counts_are_usually_invalid() {
        assert!(ParallelConfig::valid_for(&op(8, 768), 3).is_empty());
        assert!(ParallelConfig::valid_for(&op(8, 768), 5).is_empty());
        // ... but batch-divisible odd counts are fine (dp only).
        assert_eq!(
            ParallelConfig::valid_for(&op(6, 768), 3),
            vec![ParallelConfig { dp: 3, tp: 1 }]
        );
    }

    #[test]
    fn tp_bounded_by_heads() {
        // hidden 128 -> 2 heads, so tp 4/8 are invalid.
        let configs = ParallelConfig::valid_for(&op(8, 128), 8);
        assert!(configs.iter().all(|c| c.tp <= 2));
    }

    #[test]
    fn display_format() {
        assert_eq!(ParallelConfig { dp: 4, tp: 2 }.to_string(), "dp4xtp2");
    }
}
