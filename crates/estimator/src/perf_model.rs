//! Analytic hardware performance model — the simulated stand-in for profiling
//! real GPUs.

use spindle_cluster::{ClusterSpec, CommModel, DeviceGroup, DeviceId};
use spindle_graph::Operator;

use crate::ParallelConfig;

/// Source of per-operator execution-time and memory measurements.
///
/// In the paper these numbers come from profiling the model on the target
/// cluster; in this reproduction they come from [`AnalyticGpuModel`]. The trait
/// exists so a real profiler (or a trace replayer) can be substituted without
/// touching the planner.
pub trait PerfModel: std::fmt::Debug + Send + Sync {
    /// Execution time in seconds of one training step (forward + backward) of
    /// `op` on `n` devices, using the best valid parallel configuration.
    /// Returns `None` if no valid configuration exists for `n`.
    fn execution_time(&self, op: &Operator, n: u32) -> Option<f64>;

    /// Peak per-device memory in bytes needed to hold `op` (parameters,
    /// gradients, optimizer states and activations) when executed on `n`
    /// devices with its best configuration.
    fn memory_bytes(&self, op: &Operator, n: u32) -> u64;
}

/// Deterministic analytic model of an A800-class GPU and its interconnect.
///
/// The model captures the three effects that drive heterogeneous resource
/// scalability in MT MM training (Fig. 4 of the paper):
///
/// 1. **Kernel-launch / fixed overheads** (`α`): a per-operator constant that
///    dominates tiny operators and caps their useful parallelism.
/// 2. **Compute-efficiency roll-off**: small per-device workloads cannot
///    saturate the GPU, so effective throughput falls below peak; the
///    saturation is modelled as `eff = peak · w / (w + w_half)` where `w` is
///    per-device FLOPs.
/// 3. **Parallelisation communication** (`β`): tensor parallelism pays
///    activation all-reduces on every layer, priced by the cluster's
///    [`CommModel`].
#[derive(Debug, Clone)]
pub struct AnalyticGpuModel {
    cluster: ClusterSpec,
    comm: CommModel,
    /// Per-device FLOPs at which the GPU reaches half of its peak efficiency.
    half_saturation_flops: f64,
    /// Maximum fraction of peak FLOP/s achievable by dense transformer kernels.
    max_efficiency: f64,
    /// Fixed per-operator overhead in seconds (kernel launches, Python/driver
    /// dispatch, stream sync).
    fixed_overhead_s: f64,
    /// Bytes of optimizer + gradient state per parameter byte (Adam, mixed
    /// precision: fp32 master + two moments + fp16 gradient ≈ 7×).
    optimizer_state_ratio: f64,
    /// Multiplier on the operator output size accounting for intermediate
    /// activations kept for the backward pass.
    activation_multiplier: f64,
}

impl AnalyticGpuModel {
    /// Builds the default A800-calibrated model for `cluster`.
    #[must_use]
    pub fn new(cluster: &ClusterSpec) -> Self {
        Self {
            cluster: cluster.clone(),
            comm: CommModel::new(cluster),
            // Half-saturation point of dense transformer kernels: per-device
            // workloads well below ~20 GFLOPs leave the GPU mostly idle, which
            // is what makes lightweight MT MM operators scale poorly (Fig. 4).
            half_saturation_flops: 2.0e10,
            max_efficiency: 0.62,
            // Per-operator fixed cost of one training step (kernel launches,
            // Python dispatch, optimizer hooks): the latency floor that caps
            // the useful parallelism of small operators.
            fixed_overhead_s: 600.0e-6,
            optimizer_state_ratio: 7.0,
            activation_multiplier: 6.0,
        }
    }

    /// The cluster this model is calibrated against.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Execution time of one training step of `op` under an explicit parallel
    /// configuration. Exposed for tests and for the estimator's
    /// configuration sweep.
    #[must_use]
    pub fn execution_time_with_config(&self, op: &Operator, config: ParallelConfig) -> f64 {
        let n = f64::from(config.num_devices());
        let total_flops = op.flops_total();
        let per_device_flops = total_flops / n;
        let peak = self.cluster.gpu().peak_flops();
        let efficiency = self.max_efficiency * per_device_flops
            / (per_device_flops + self.half_saturation_flops);
        let compute = per_device_flops / (peak * efficiency.max(1e-6));
        let comm = self.tp_comm_time(op, config);
        self.fixed_overhead_s + compute + comm
    }

    /// Per-device memory footprint of `op` under an explicit configuration.
    #[must_use]
    pub fn memory_with_config(&self, op: &Operator, config: ParallelConfig) -> u64 {
        let params = op.param_bytes() as f64 / f64::from(config.tp);
        let states = params * self.optimizer_state_ratio;
        let activations =
            op.output_bytes() as f64 * self.activation_multiplier / f64::from(config.dp);
        (params + states + activations).ceil() as u64
    }

    /// Tensor-parallel communication time per training step: forward and
    /// backward each pay two all-reduces of the per-replica activation.
    fn tp_comm_time(&self, op: &Operator, config: ParallelConfig) -> f64 {
        if config.tp <= 1 {
            return 0.0;
        }
        // Tensor-parallel groups are placed on adjacent devices, i.e. within a
        // device island whenever tp <= island size.
        let island = self.cluster.nodes().first().map_or(1, |n| n.num_devices()) as u32;
        let first = DeviceId(0);
        let group = if config.tp <= island {
            DeviceGroup::contiguous(first, config.tp as usize)
        } else {
            // Spill across islands (rare; only when tp exceeds a node).
            DeviceGroup::contiguous(first, config.tp as usize)
        };
        let per_replica_activation = op.output_bytes() / u64::from(config.dp).max(1);
        4.0 * self.comm.all_reduce_time(&group, per_replica_activation)
    }
}

impl PerfModel for AnalyticGpuModel {
    fn execution_time(&self, op: &Operator, n: u32) -> Option<f64> {
        ParallelConfig::valid_for(op, n)
            .into_iter()
            .map(|c| self.execution_time_with_config(op, c))
            .min_by(|a, b| a.total_cmp(b))
    }

    fn memory_bytes(&self, op: &Operator, n: u32) -> u64 {
        let best = ParallelConfig::valid_for(op, n)
            .into_iter()
            .min_by(|a, b| {
                self.execution_time_with_config(op, *a)
                    .total_cmp(&self.execution_time_with_config(op, *b))
            })
            .unwrap_or(ParallelConfig::SERIAL);
        self.memory_with_config(op, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{Modality, OpId, OpKind, TaskId, TensorShape};

    fn model() -> AnalyticGpuModel {
        AnalyticGpuModel::new(&ClusterSpec::homogeneous(2, 8))
    }

    fn heavy_op() -> Operator {
        Operator::new(
            OpId(0),
            OpKind::LmDecoderOnly,
            TaskId(0),
            TensorShape::new(8, 512, 4096),
        )
    }

    fn light_op() -> Operator {
        Operator::new(
            OpId(1),
            OpKind::Encoder(Modality::Text),
            TaskId(0),
            TensorShape::new(4, 77, 768),
        )
    }

    #[test]
    fn time_decreases_with_more_devices() {
        let m = model();
        let op = heavy_op();
        let t1 = m.execution_time(&op, 1).unwrap();
        let t4 = m.execution_time(&op, 4).unwrap();
        let t16 = m.execution_time(&op, 16).unwrap();
        assert!(t1 > t4);
        assert!(t4 > t16);
    }

    #[test]
    fn heavy_ops_scale_better_than_light_ops() {
        let m = model();
        let heavy = heavy_op();
        let light = light_op();
        let heavy_speedup =
            m.execution_time(&heavy, 1).unwrap() / m.execution_time(&heavy, 8).unwrap();
        let light_speedup =
            m.execution_time(&light, 1).unwrap() / m.execution_time(&light, 8).unwrap();
        assert!(
            heavy_speedup > 2.0 * light_speedup,
            "heavy {heavy_speedup:.2} vs light {light_speedup:.2}"
        );
    }

    #[test]
    fn invalid_allocation_returns_none() {
        let m = model();
        // batch 4, n = 3 has no valid (dp, tp) factorisation.
        assert!(m.execution_time(&light_op(), 3).is_none());
    }

    #[test]
    fn fixed_overhead_bounds_scaling() {
        let m = model();
        let light = light_op();
        // Even with the whole cluster, a tiny op cannot beat the fixed overhead.
        let t = m.execution_time(&light, 16).unwrap();
        assert!(t >= m.fixed_overhead_s);
    }

    #[test]
    fn memory_shrinks_with_parallelism() {
        let m = model();
        let op = heavy_op();
        let m1 = m.memory_bytes(&op, 1);
        let m8 = m.memory_bytes(&op, 8);
        assert!(m8 < m1);
        assert!(m8 > 0);
    }

    #[test]
    fn tp_config_pays_communication() {
        let m = model();
        let op = heavy_op();
        let dp_only = m.execution_time_with_config(&op, ParallelConfig { dp: 8, tp: 1 });
        let tp_heavy = m.execution_time_with_config(&op, ParallelConfig { dp: 1, tp: 8 });
        // Same compute split, but TP adds all-reduce time.
        assert!(tp_heavy > dp_only);
    }

    #[test]
    fn cluster_accessor() {
        let m = model();
        assert_eq!(m.cluster().num_devices(), 16);
    }
}
