//! Piecewise α–β execution-time model (Appendix A of the paper).

use crate::EstimatorError;

/// One piece of the piecewise model, valid on the allocation interval
/// `[n_lo, n_hi]`:  `T(n) = alpha + beta_w / n`.
///
/// The paper's general form is `T(n) = α + β·c + β'·w/n`; the constant
/// `β·c` term (communication volume that does not scale with `n`) is folded
/// into `alpha` because the fit only observes their sum.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Piece {
    n_lo: f64,
    n_hi: f64,
    alpha: f64,
    beta_w: f64,
}

impl Piece {
    fn eval(&self, n: f64) -> f64 {
        self.alpha + self.beta_w / n
    }
}

/// A fitted piecewise α–β execution-time function `T(n)` over a continuous
/// device count `n ∈ [n_min, n_max]`.
///
/// Between every pair of adjacent profile samples the model interpolates with
/// an `α + β'·w/n` piece that passes exactly through both samples — under
/// varying resource scales the coefficients differ because the invoked kernels
/// (and their efficiency) differ, which is precisely why the paper uses a
/// *piecewise* fit for heterogeneous MT MM workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseAlphaBeta {
    pieces: Vec<Piece>,
    samples: Vec<(f64, f64)>,
}

impl PiecewiseAlphaBeta {
    /// Fits the piecewise model to profile samples `(n, time_seconds)`.
    ///
    /// Samples are sorted by `n`; times are clamped to be non-increasing in `n`
    /// (execution time functions must be positive and non-increasing for the
    /// MPSP optimality result, Theorem 1, to apply).
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::InsufficientSamples`] for fewer than two
    /// samples and [`EstimatorError::NonPositiveTime`] if any time is ≤ 0.
    pub fn fit(samples: &[(u32, f64)]) -> Result<Self, EstimatorError> {
        if samples.len() < 2 {
            return Err(EstimatorError::InsufficientSamples(samples.len()));
        }
        let mut pts: Vec<(f64, f64)> = samples.iter().map(|&(n, t)| (f64::from(n), t)).collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts.dedup_by(|a, b| a.0 == b.0);
        for &(_, t) in &pts {
            if t <= 0.0 {
                return Err(EstimatorError::NonPositiveTime(t));
            }
        }
        // Enforce monotone non-increasing times.
        for i in 1..pts.len() {
            if pts[i].1 > pts[i - 1].1 {
                pts[i].1 = pts[i - 1].1;
            }
        }
        if pts.len() < 2 {
            return Err(EstimatorError::InsufficientSamples(pts.len()));
        }
        let mut pieces = Vec::with_capacity(pts.len() - 1);
        for w in pts.windows(2) {
            let (n0, t0) = w[0];
            let (n1, t1) = w[1];
            let inv_diff = 1.0 / n0 - 1.0 / n1;
            let beta_w = if inv_diff.abs() < f64::EPSILON {
                0.0
            } else {
                (t0 - t1) / inv_diff
            };
            let alpha = t1 - beta_w / n1;
            pieces.push(Piece {
                n_lo: n0,
                n_hi: n1,
                alpha,
                beta_w,
            });
        }
        Ok(Self {
            pieces,
            samples: pts,
        })
    }

    /// Smallest device count covered by the fit.
    #[must_use]
    pub fn min_devices(&self) -> f64 {
        self.samples.first().map_or(1.0, |s| s.0)
    }

    /// Largest device count covered by the fit.
    #[must_use]
    pub fn max_devices(&self) -> f64 {
        self.samples.last().map_or(1.0, |s| s.0)
    }

    /// The (sorted, monotone) samples the model was fitted to.
    #[must_use]
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Approximate number of *heap* bytes held by this fit (the pieces and
    /// retained samples) — the estimator's bounded curve cache uses this for
    /// byte accounting.
    #[must_use]
    pub fn approx_heap_bytes(&self) -> usize {
        self.pieces.len() * std::mem::size_of::<Piece>()
            + self.samples.len() * std::mem::size_of::<(f64, f64)>()
    }

    /// Estimated execution time at a (continuous) device count `n`.
    /// Values outside the fitted range are clamped to the range boundary.
    #[must_use]
    pub fn estimate(&self, n: f64) -> f64 {
        let n = n.clamp(self.min_devices(), self.max_devices());
        let piece = self
            .pieces
            .iter()
            .find(|p| n >= p.n_lo && n <= p.n_hi)
            .unwrap_or_else(|| self.pieces.last().expect("fit produces at least one piece"));
        piece.eval(n)
    }

    /// Inverse of the fitted function: the *smallest* (continuous) device
    /// count at which the estimated time is no larger than `time`. Times
    /// slower than the single-device time clamp to the minimum device count;
    /// times faster than the best achievable clamp to the maximum. This is
    /// `Find_Inverse_Value` of Appendix B; returning the smallest sufficient
    /// allocation keeps flat (non-scaling) regions from hoarding devices.
    #[must_use]
    pub fn inverse(&self, time: f64) -> f64 {
        let t_max = self.estimate(self.min_devices());
        if time >= t_max {
            return self.min_devices();
        }
        // Pieces are ordered by increasing n (decreasing time); the first piece
        // whose fast end already meets the target contains the smallest
        // sufficient allocation. Invert the α + β'·w/n form exactly so that
        // estimate(inverse(t)) == t.
        for p in &self.pieces {
            let t_fast = p.eval(p.n_hi);
            if time >= t_fast {
                if p.beta_w.abs() < f64::EPSILON || time < p.alpha + f64::EPSILON {
                    return p.n_lo;
                }
                let n = p.beta_w / (time - p.alpha);
                return n.clamp(p.n_lo, p.n_hi);
            }
        }
        self.max_devices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<(u32, f64)> {
        vec![(1, 8.0), (2, 4.5), (4, 2.8), (8, 2.0), (16, 1.7)]
    }

    #[test]
    fn fit_interpolates_samples_exactly() {
        let f = PiecewiseAlphaBeta::fit(&samples()).unwrap();
        for (n, t) in samples() {
            assert!((f.estimate(f64::from(n)) - t).abs() < 1e-9, "n={n}");
        }
        assert_eq!(f.min_devices(), 1.0);
        assert_eq!(f.max_devices(), 16.0);
        assert_eq!(f.samples().len(), 5);
    }

    #[test]
    fn estimate_is_monotone_non_increasing() {
        let f = PiecewiseAlphaBeta::fit(&samples()).unwrap();
        let mut prev = f.estimate(1.0);
        let mut n = 1.0;
        while n <= 16.0 {
            let t = f.estimate(n);
            assert!(t <= prev + 1e-9, "time increased at n={n}");
            prev = t;
            n += 0.25;
        }
    }

    #[test]
    fn estimate_clamps_out_of_range() {
        let f = PiecewiseAlphaBeta::fit(&samples()).unwrap();
        assert_eq!(f.estimate(0.5), f.estimate(1.0));
        assert_eq!(f.estimate(64.0), f.estimate(16.0));
    }

    #[test]
    fn inverse_roundtrips_within_range() {
        let f = PiecewiseAlphaBeta::fit(&samples()).unwrap();
        for target in [7.0, 5.0, 3.0, 2.2, 1.8] {
            let n = f.inverse(target);
            assert!((f.estimate(n) - target).abs() < 1e-6, "target {target}");
        }
    }

    #[test]
    fn inverse_clamps_extremes() {
        let f = PiecewiseAlphaBeta::fit(&samples()).unwrap();
        assert_eq!(f.inverse(100.0), 1.0);
        assert_eq!(f.inverse(0.001), 16.0);
    }

    #[test]
    fn non_monotone_samples_are_clamped() {
        let f = PiecewiseAlphaBeta::fit(&[(1, 5.0), (2, 6.0), (4, 3.0)]).unwrap();
        assert!(f.estimate(2.0) <= f.estimate(1.0));
    }

    #[test]
    fn fit_errors() {
        assert_eq!(
            PiecewiseAlphaBeta::fit(&[(1, 1.0)]).unwrap_err(),
            EstimatorError::InsufficientSamples(1)
        );
        assert_eq!(
            PiecewiseAlphaBeta::fit(&[(1, 1.0), (2, 0.0)]).unwrap_err(),
            EstimatorError::NonPositiveTime(0.0)
        );
    }
}
