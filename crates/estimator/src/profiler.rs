//! Operator profiling against a [`PerfModel`].

use spindle_graph::Operator;

use crate::{EstimatorError, PerfModel};

/// One measured point of an operator's execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileSample {
    /// Device allocation.
    pub devices: u32,
    /// Measured execution time of one training step of one operator, seconds.
    pub time_s: f64,
}

/// Profiles operators at a set of discrete allocations.
///
/// The paper profiles "several discrete data points `(n_i, T_m(n_i))` for each
/// MetaOp under different parallel configurations" — in practice the powers of
/// two up to the cluster size plus every other valid allocation, which is what
/// this profiler samples. With the analytic model this takes microseconds; on
/// real hardware the paper reports under five minutes per model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profiler;

impl Profiler {
    /// Creates a profiler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// The allocations at which an operator should be profiled: all valid
    /// allocations up to `max_devices` (valid allocations are already sparse —
    /// products of a batch divisor and a small power of two).
    #[must_use]
    pub fn sample_points(&self, op: &Operator, max_devices: u32) -> Vec<u32> {
        op.valid_allocations(max_devices)
    }

    /// Profiles `op` on `model` at every sample point.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorError::NoValidAllocation`] if the model cannot
    /// execute the operator at any sampled allocation (never happens for
    /// allocation 1).
    pub fn profile(
        &self,
        model: &dyn PerfModel,
        op: &Operator,
        max_devices: u32,
    ) -> Result<Vec<ProfileSample>, EstimatorError> {
        let mut samples = Vec::new();
        for n in self.sample_points(op, max_devices) {
            if let Some(time_s) = model.execution_time(op, n) {
                samples.push(ProfileSample { devices: n, time_s });
            }
        }
        if samples.is_empty() {
            return Err(EstimatorError::NoValidAllocation);
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyticGpuModel;
    use spindle_cluster::ClusterSpec;
    use spindle_graph::{Modality, OpId, OpKind, TaskId, TensorShape};

    fn setup() -> (AnalyticGpuModel, Operator) {
        let cluster = ClusterSpec::homogeneous(2, 8);
        let model = AnalyticGpuModel::new(&cluster);
        let op = Operator::new(
            OpId(0),
            OpKind::Encoder(Modality::Audio),
            TaskId(0),
            TensorShape::new(8, 229, 768),
        );
        (model, op)
    }

    #[test]
    fn profile_covers_valid_allocations() {
        let (model, op) = setup();
        let profiler = Profiler::new();
        let samples = profiler.profile(&model, &op, 16).unwrap();
        assert!(samples.len() >= 4);
        assert_eq!(samples[0].devices, 1);
        assert!(samples.iter().all(|s| s.time_s > 0.0));
        // Sample points exclude invalid allocations such as 3.
        assert!(!profiler.sample_points(&op, 16).contains(&3));
    }

    #[test]
    fn profile_times_trend_downwards() {
        // Raw samples may have local bumps when the best parallel configuration
        // changes (e.g. forced tensor parallelism at large n); the scaling
        // curve clamps them later. Overall, more devices must not be slower
        // than one device, and the early part of the sweep must improve.
        let (model, op) = setup();
        let samples = Profiler::new().profile(&model, &op, 16).unwrap();
        assert!(samples.last().unwrap().time_s <= samples[0].time_s);
        assert!(samples[1].time_s < samples[0].time_s);
    }

    #[test]
    fn single_device_always_profiled() {
        let (model, op) = setup();
        let samples = Profiler::new().profile(&model, &op, 1).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].devices, 1);
    }
}
