//! Scaling curves: the per-MetaOp execution-time functions `T_m(n)`.

use std::fmt;

use crate::{EstimatorError, PiecewiseAlphaBeta, ProfileSample};

/// The fitted execution-time function `T_m(n)` of one operator signature,
/// together with the discrete valid allocations it was profiled at.
///
/// This is the "scaling curve" of Fig. 4: it exposes both the continuous
/// estimate (used by the MPSP relaxation) and the discrete valid allocations
/// (used by the bi-point discretisation and the wavefront scheduler).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingCurve {
    fit: PiecewiseAlphaBeta,
    valid: Vec<(u32, f64)>,
}

impl ScalingCurve {
    /// Builds a curve from profile samples.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than one sample is available. A single sample
    /// (operators that only admit one device) is extended with a flat
    /// extrapolation so the curve is still usable.
    pub fn from_samples(samples: &[ProfileSample]) -> Result<Self, EstimatorError> {
        if samples.is_empty() {
            return Err(EstimatorError::InsufficientSamples(0));
        }
        let mut pts: Vec<(u32, f64)> = samples.iter().map(|s| (s.devices, s.time_s)).collect();
        pts.sort_by_key(|&(n, _)| n);
        pts.dedup_by_key(|&mut (n, _)| n);
        // Make times monotone non-increasing (Theorem 1 requires it).
        for i in 1..pts.len() {
            if pts[i].1 > pts[i - 1].1 {
                pts[i].1 = pts[i - 1].1;
            }
        }
        let fit_pts = if pts.len() == 1 {
            // Flat curve: more devices don't help a 1-device-only operator.
            vec![pts[0], (pts[0].0 + 1, pts[0].1)]
        } else {
            pts.clone()
        };
        let fit = PiecewiseAlphaBeta::fit(&fit_pts)?;
        Ok(Self { fit, valid: pts })
    }

    /// Estimated per-operator execution time at a continuous device count.
    #[must_use]
    pub fn time(&self, n: f64) -> f64 {
        self.fit.estimate(n)
    }

    /// Exact profiled time at a valid discrete allocation, if it was sampled.
    #[must_use]
    pub fn time_at(&self, n: u32) -> Option<f64> {
        self.valid.iter().find(|&&(v, _)| v == n).map(|&(_, t)| t)
    }

    /// Resource scalability `ς(n) = T(1)/T(n)` (Fig. 4, right side); values
    /// close to `n` mean near-linear scaling.
    #[must_use]
    pub fn scalability(&self, n: f64) -> f64 {
        self.fit.estimate(self.fit.min_devices()) / self.time(n)
    }

    /// The valid discrete allocations this operator admits, with their times.
    #[must_use]
    pub fn valid_allocations(&self) -> &[(u32, f64)] {
        &self.valid
    }

    /// Largest valid allocation profiled.
    #[must_use]
    pub fn max_allocation(&self) -> u32 {
        self.valid.last().map_or(1, |&(n, _)| n)
    }

    /// Continuous inverse `T⁻¹(time)` (Find_Inverse_Value of Appendix B).
    #[must_use]
    pub fn inverse(&self, time: f64) -> f64 {
        self.fit.inverse(time)
    }

    /// Approximate memory footprint of this curve in bytes (inline struct
    /// plus heap) — the unit of the bounded curve cache's byte accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.fit.approx_heap_bytes()
            + self.valid.len() * std::mem::size_of::<(u32, f64)>()
    }

    /// The closest valid allocations `⌊n⌋, ⌈n⌉` bracketing a continuous
    /// allocation `n*` (used by the bi-point discretisation of §3.3). If `n*`
    /// lies outside the valid range the nearest valid allocation is returned
    /// for both.
    #[must_use]
    pub fn bracketing_allocations(&self, n_star: f64) -> (u32, u32) {
        let mut lower = self.valid.first().map_or(1, |&(n, _)| n);
        let mut upper = self.valid.last().map_or(1, |&(n, _)| n);
        for &(n, _) in &self.valid {
            if f64::from(n) <= n_star {
                lower = n;
            }
        }
        for &(n, _) in self.valid.iter().rev() {
            if f64::from(n) >= n_star {
                upper = n;
            }
        }
        if f64::from(lower) > n_star {
            upper = lower;
        }
        if f64::from(upper) < n_star {
            lower = upper;
        }
        (lower, upper)
    }
}

impl fmt::Display for ScalingCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scaling curve over {} allocations: ", self.valid.len())?;
        for (i, (n, t)) in self.valid.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "T({n})={:.3}ms", t * 1e3)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::curve_from_points;
    use std::sync::Arc;

    fn curve() -> Arc<ScalingCurve> {
        curve_from_points(&[(1, 10.0), (2, 5.6), (4, 3.2), (8, 2.1), (16, 1.6)])
    }

    #[test]
    fn time_and_scalability() {
        let c = curve();
        assert!((c.time(1.0) - 10.0).abs() < 1e-9);
        assert!((c.time_at(4).unwrap() - 3.2).abs() < 1e-9);
        assert!(c.time_at(3).is_none());
        assert!((c.scalability(1.0) - 1.0).abs() < 1e-9);
        assert!(c.scalability(16.0) > 5.0);
        assert_eq!(c.max_allocation(), 16);
    }

    #[test]
    fn bracketing_allocations_clamp_correctly() {
        let c = curve();
        assert_eq!(c.bracketing_allocations(3.0), (2, 4));
        assert_eq!(c.bracketing_allocations(4.0), (4, 4));
        assert_eq!(c.bracketing_allocations(0.3), (1, 1));
        assert_eq!(c.bracketing_allocations(40.0), (16, 16));
    }

    #[test]
    fn inverse_consistent_with_time() {
        let c = curve();
        let n = c.inverse(4.0);
        assert!((c.time(n) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn single_sample_curve_is_flat() {
        let c = ScalingCurve::from_samples(&[ProfileSample {
            devices: 1,
            time_s: 2.0,
        }])
        .unwrap();
        assert!((c.time(1.0) - 2.0).abs() < 1e-9);
        assert!((c.time(8.0) - 2.0).abs() < 1e-9);
        assert_eq!(c.valid_allocations().len(), 1);
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(ScalingCurve::from_samples(&[]).is_err());
    }

    #[test]
    fn display_mentions_times() {
        assert!(curve().to_string().contains("T(1)"));
    }
}
