//! Shared test-only curve constructors.
//!
//! Four crates' test suites used to carry their own copies of these synthetic
//! curve builders; they live here once, compiled only for tests (or for
//! downstream crates' tests via the `test-util` feature).

use std::sync::Arc;

use crate::{ProfileSample, ScalingCurve};

/// Builds a curve through explicit `(devices, time)` sample points.
///
/// # Panics
///
/// Panics if `points` is empty (a curve needs at least one sample).
#[must_use]
pub fn curve_from_points(points: &[(u32, f64)]) -> Arc<ScalingCurve> {
    let samples: Vec<ProfileSample> = points
        .iter()
        .map(|&(n, t)| ProfileSample {
            devices: n,
            time_s: t,
        })
        .collect();
    Arc::new(ScalingCurve::from_samples(&samples).expect("test curve must have samples"))
}

/// A synthetic curve with near-perfect scaling: `T(n) = base / n`, sampled at
/// powers of two up to `max_n`.
#[must_use]
pub fn linear_curve(base: f64, max_n: u32) -> Arc<ScalingCurve> {
    let pts: Vec<(u32, f64)> = (0..)
        .map(|k| 1u32 << k)
        .take_while(|&n| n <= max_n)
        .map(|n| (n, base / f64::from(n)))
        .collect();
    curve_from_points(&pts)
}

/// A curve that stops scaling beyond 2 devices: `T(n) = base / min(n, 2)`.
#[must_use]
pub fn saturating_curve(base: f64, max_n: u32) -> Arc<ScalingCurve> {
    let pts: Vec<(u32, f64)> = (0..)
        .map(|k| 1u32 << k)
        .take_while(|&n| n <= max_n)
        .map(|n| (n, base / f64::from(n.min(2))))
        .collect();
    curve_from_points(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_curve_scales_linearly() {
        let c = linear_curve(8.0, 16);
        assert!((c.time(1.0) - 8.0).abs() < 1e-9);
        assert!((c.time(8.0) - 1.0).abs() < 1e-9);
        assert_eq!(c.max_allocation(), 16);
    }

    #[test]
    fn saturating_curve_flattens_after_two() {
        let c = saturating_curve(4.0, 16);
        assert!((c.time(2.0) - 2.0).abs() < 1e-9);
        assert!((c.time(16.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn curve_from_points_keeps_valid_allocations() {
        let c = curve_from_points(&[(1, 3.0), (2, 2.0), (5, 1.0)]);
        assert_eq!(c.valid_allocations().len(), 3);
        assert_eq!(c.time_at(5), Some(1.0));
    }
}
