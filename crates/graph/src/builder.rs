//! Incremental construction of computation graphs.

use crate::{
    ComputationGraph, GraphError, Modality, OpId, OpKind, Operator, ParamId, TaskId, TaskSpec,
    TensorShape,
};

/// Builder for [`ComputationGraph`]s.
///
/// Mirrors the paper's user-facing API: tasks are declared first, operators are
/// added per task (individually or as chains of identical layers, the typical
/// structure of transformer towers), and `add_flow` wires data flows between
/// them. Parameter sharing across tasks is expressed by attaching the same
/// [`ParamId`]s to operators of different tasks.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    ops: Vec<Operator>,
    edges: Vec<(OpId, OpId)>,
    tasks: Vec<TaskSpec>,
    next_param: u32,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new task and returns its id.
    pub fn add_task(
        &mut self,
        name: impl Into<String>,
        modalities: impl IntoIterator<Item = Modality>,
        batch_size: u32,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks
            .push(TaskSpec::new(id, name, modalities, batch_size));
        id
    }

    /// Allocates a fresh shared-parameter id.
    pub fn new_param(&mut self) -> ParamId {
        let id = ParamId(self.next_param);
        self.next_param += 1;
        id
    }

    /// Adds a single operator for `task` with a fresh parameter group.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] if the task was not declared and
    /// [`GraphError::InvalidShape`] for degenerate shapes.
    pub fn add_op(
        &mut self,
        task: TaskId,
        kind: OpKind,
        shape: TensorShape,
    ) -> Result<OpId, GraphError> {
        let param = self.new_param();
        self.add_op_with_params(task, kind, shape, &[param])
    }

    /// Adds a single operator for `task` attached to the given (shared)
    /// parameter groups.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] if the task was not declared and
    /// [`GraphError::InvalidShape`] for degenerate shapes.
    pub fn add_op_with_params(
        &mut self,
        task: TaskId,
        kind: OpKind,
        shape: TensorShape,
        params: &[ParamId],
    ) -> Result<OpId, GraphError> {
        if task.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(task));
        }
        shape.validate()?;
        let id = OpId(self.ops.len() as u32);
        let mut op = Operator::new(id, kind, task, shape);
        for &p in params {
            op = op.with_param(p);
        }
        self.ops.push(op);
        Ok(id)
    }

    /// Adds a chain of `count` identical operators connected head-to-tail,
    /// each with its own fresh parameter group. Returns the operator ids in
    /// execution order. This is the natural way to express a stack of
    /// transformer layers.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] / [`GraphError::InvalidShape`] as
    /// for [`add_op`](Self::add_op); `count` of zero yields an empty chain.
    pub fn add_op_chain(
        &mut self,
        task: TaskId,
        kind: OpKind,
        shape: TensorShape,
        count: usize,
    ) -> Result<Vec<OpId>, GraphError> {
        let params: Vec<ParamId> = (0..count).map(|_| self.new_param()).collect();
        self.add_op_chain_with_params(task, kind, shape, &params)
    }

    /// Adds a chain of identical operators whose i-th layer uses the i-th
    /// given parameter group. Passing the same parameter slice for two tasks
    /// expresses sub-model sharing (e.g. a text encoder activated by several
    /// tasks).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] / [`GraphError::InvalidShape`] as
    /// for [`add_op`](Self::add_op).
    pub fn add_op_chain_with_params(
        &mut self,
        task: TaskId,
        kind: OpKind,
        shape: TensorShape,
        params: &[ParamId],
    ) -> Result<Vec<OpId>, GraphError> {
        let mut ids = Vec::with_capacity(params.len());
        for &p in params {
            let id = self.add_op_with_params(task, kind, shape, &[p])?;
            if let Some(&prev) = ids.last() {
                self.add_flow(prev, id)?;
            }
            ids.push(id);
        }
        Ok(ids)
    }

    /// Adds a data flow (edge) from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownOp`] for out-of-range operators,
    /// [`GraphError::SelfLoop`] when `from == to`, and
    /// [`GraphError::DuplicateEdge`] if the flow already exists.
    pub fn add_flow(&mut self, from: OpId, to: OpId) -> Result<(), GraphError> {
        if from.index() >= self.ops.len() {
            return Err(GraphError::UnknownOp(from));
        }
        if to.index() >= self.ops.len() {
            return Err(GraphError::UnknownOp(to));
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.edges.contains(&(from, to)) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Number of operators added so far.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of tasks declared so far.
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Finalises the graph, validating structure and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`ComputationGraph::new`].
    pub fn build(self) -> Result<ComputationGraph, GraphError> {
        ComputationGraph::new(self.ops, self.edges, self.tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_unknown_task_and_bad_shape() {
        let mut b = GraphBuilder::new();
        assert_eq!(
            b.add_op(TaskId(0), OpKind::Embedding, TensorShape::new(4, 8, 16)),
            Err(GraphError::UnknownTask(TaskId(0)))
        );
        let t = b.add_task("t", [Modality::Text], 4);
        assert!(matches!(
            b.add_op(t, OpKind::Embedding, TensorShape::new(0, 8, 16)),
            Err(GraphError::InvalidShape(_))
        ));
    }

    #[test]
    fn chains_are_wired_sequentially() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text], 4);
        let chain = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
                4,
            )
            .unwrap();
        assert_eq!(chain.len(), 4);
        assert_eq!(b.num_ops(), 4);
        let g = b.build().unwrap();
        for w in chain.windows(2) {
            assert!(g.edges().contains(&(w[0], w[1])));
        }
        // Every layer has a distinct parameter group.
        let mut params: Vec<ParamId> = g.ops().iter().flat_map(|o| o.params().to_vec()).collect();
        params.dedup();
        assert_eq!(params.len(), 4);
    }

    #[test]
    fn shared_params_across_tasks() {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task("t0", [Modality::Text], 8);
        let t1 = b.add_task("t1", [Modality::Text], 4);
        let shared: Vec<ParamId> = (0..3).map(|_| b.new_param()).collect();
        let c0 = b
            .add_op_chain_with_params(
                t0,
                OpKind::LmEncoder,
                TensorShape::new(8, 512, 1024),
                &shared,
            )
            .unwrap();
        let c1 = b
            .add_op_chain_with_params(
                t1,
                OpKind::LmEncoder,
                TensorShape::new(4, 512, 1024),
                &shared,
            )
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.op(c0[0]).params(), g.op(c1[0]).params());
        // Shared parameters are not double counted.
        let single_chain_params = 3 * g.op(c0[0]).param_bytes();
        assert_eq!(g.total_param_bytes(), single_chain_params);
    }

    #[test]
    fn empty_builder_fails_to_build() {
        assert_eq!(
            GraphBuilder::new().build().unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn counts_track_additions() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.num_tasks(), 0);
        let t = b.add_task("t", [Modality::Vision], 2);
        assert_eq!(b.num_tasks(), 1);
        b.add_op(
            t,
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(2, 197, 768),
        )
        .unwrap();
        assert_eq!(b.num_ops(), 1);
    }
}
