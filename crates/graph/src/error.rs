//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

use crate::{OpId, TaskId};

/// Errors produced while building or validating a computation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An operator id referenced an operator that does not exist.
    UnknownOp(OpId),
    /// A task id referenced a task that does not exist.
    UnknownTask(TaskId),
    /// The graph contains a cycle and therefore is not a valid computation DAG.
    CycleDetected,
    /// The same edge was added twice.
    DuplicateEdge(OpId, OpId),
    /// An edge would connect an operator to itself.
    SelfLoop(OpId),
    /// The graph has no operators.
    EmptyGraph,
    /// A parameter/shape was invalid (zero batch, zero hidden size, ...).
    InvalidShape(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownOp(id) => write!(f, "unknown operator {id}"),
            GraphError::UnknownTask(id) => write!(f, "unknown task {id}"),
            GraphError::CycleDetected => write!(f, "computation graph contains a cycle"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::SelfLoop(id) => write!(f, "operator {id} cannot depend on itself"),
            GraphError::EmptyGraph => write!(f, "computation graph has no operators"),
            GraphError::InvalidShape(msg) => write!(f, "invalid tensor shape: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
        assert!(GraphError::CycleDetected.to_string().contains("cycle"));
        assert!(GraphError::UnknownOp(OpId(3)).to_string().contains("op3"));
        assert!(GraphError::SelfLoop(OpId(1)).to_string().contains("itself"));
        assert!(GraphError::InvalidShape("batch is zero".into())
            .to_string()
            .contains("batch is zero"));
    }
}
