//! The unified computation graph `G = (V, E)` over all tasks.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{GraphError, OpId, Operator, ParamId, TaskId, TaskSpec};

/// The unified directed acyclic computation graph over all tasks of an MT MM
/// workload.
///
/// Nodes are [`Operator`]s, edges are data flows. The graph is immutable once
/// built (see [`GraphBuilder`](crate::GraphBuilder)); the planner derives
/// MetaOps, MetaLevels and the execution plan from it without mutating it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputationGraph {
    ops: Vec<Operator>,
    edges: Vec<(OpId, OpId)>,
    out_edges: Vec<Vec<OpId>>,
    in_edges: Vec<Vec<OpId>>,
    tasks: Vec<TaskSpec>,
}

impl ComputationGraph {
    /// Assembles a graph from parts, validating identity, edges and
    /// acyclicity.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty, references unknown operators or
    /// tasks, contains duplicate edges, self-loops, or a cycle.
    pub fn new(
        ops: Vec<Operator>,
        edges: Vec<(OpId, OpId)>,
        tasks: Vec<TaskSpec>,
    ) -> Result<Self, GraphError> {
        if ops.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        for (idx, op) in ops.iter().enumerate() {
            debug_assert_eq!(op.id().index(), idx, "operators must be densely indexed");
            op.input_shape().validate()?;
            if op.task().index() >= tasks.len() {
                return Err(GraphError::UnknownTask(op.task()));
            }
        }
        let n = ops.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        let mut seen = BTreeSet::new();
        for &(a, b) in &edges {
            if a.index() >= n {
                return Err(GraphError::UnknownOp(a));
            }
            if b.index() >= n {
                return Err(GraphError::UnknownOp(b));
            }
            if a == b {
                return Err(GraphError::SelfLoop(a));
            }
            if !seen.insert((a, b)) {
                return Err(GraphError::DuplicateEdge(a, b));
            }
            out_edges[a.index()].push(b);
            in_edges[b.index()].push(a);
        }
        let graph = Self {
            ops,
            edges,
            out_edges,
            in_edges,
            tasks,
        };
        // Detect cycles by checking that a full topological order exists.
        if graph.topological_order().len() != graph.num_ops() {
            return Err(GraphError::CycleDetected);
        }
        Ok(graph)
    }

    /// Number of operators.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of data-flow edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All operators, indexed by [`OpId`].
    #[must_use]
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// The operator with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (graphs only hand out valid ids).
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.index()]
    }

    /// All data-flow edges.
    #[must_use]
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// The tasks of this workload.
    #[must_use]
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The task with the given id, if it exists.
    #[must_use]
    pub fn task(&self, id: TaskId) -> Option<&TaskSpec> {
        self.tasks.get(id.index())
    }

    /// Direct successors (consumers) of `id`.
    #[must_use]
    pub fn successors(&self, id: OpId) -> &[OpId] {
        &self.out_edges[id.index()]
    }

    /// Direct predecessors (producers) of `id`.
    #[must_use]
    pub fn predecessors(&self, id: OpId) -> &[OpId] {
        &self.in_edges[id.index()]
    }

    /// Out-degree of `id`.
    #[must_use]
    pub fn out_degree(&self, id: OpId) -> usize {
        self.out_edges[id.index()].len()
    }

    /// In-degree of `id`.
    #[must_use]
    pub fn in_degree(&self, id: OpId) -> usize {
        self.in_edges[id.index()].len()
    }

    /// Operators with no predecessors (the graph's inputs).
    #[must_use]
    pub fn roots(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .map(Operator::id)
            .filter(|&id| self.in_degree(id) == 0)
            .collect()
    }

    /// Operators with no successors (the graph's outputs, typically losses).
    #[must_use]
    pub fn leaves(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .map(Operator::id)
            .filter(|&id| self.out_degree(id) == 0)
            .collect()
    }

    /// A topological order of the operators (Kahn's algorithm). If the graph
    /// contained a cycle the returned order is shorter than
    /// [`num_ops`](Self::num_ops); [`new`](Self::new) uses this to reject
    /// cyclic graphs, so orders obtained from a constructed graph are always
    /// complete.
    #[must_use]
    pub fn topological_order(&self) -> Vec<OpId> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.num_ops();
        let mut in_deg: Vec<usize> = (0..n).map(|i| self.in_edges[i].len()).collect();
        // Smallest-id-first processing keeps the order deterministic and makes
        // derived ids (e.g. MetaOp ids) follow operator declaration order.
        let mut ready: BinaryHeap<Reverse<OpId>> = (0..n)
            .filter(|&i| in_deg[i] == 0)
            .map(|i| Reverse(OpId(i as u32)))
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(id)) = ready.pop() {
            order.push(id);
            for &succ in &self.out_edges[id.index()] {
                in_deg[succ.index()] -= 1;
                if in_deg[succ.index()] == 0 {
                    ready.push(Reverse(succ));
                }
            }
        }
        order
    }

    /// Dependency depth of every operator: the length of the longest path from
    /// any root to the operator. Used by the BFS MetaLevel assignment.
    #[must_use]
    pub fn depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.num_ops()];
        for id in self.topological_order() {
            for &pred in self.predecessors(id) {
                depth[id.index()] = depth[id.index()].max(depth[pred.index()] + 1);
            }
        }
        depth
    }

    /// The operators activated by `task`, in id order.
    #[must_use]
    pub fn ops_of_task(&self, task: TaskId) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.task() == task)
            .map(Operator::id)
            .collect()
    }

    /// Total forward+backward FLOPs of one iteration over all operators.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.ops.iter().map(Operator::flops_total).sum()
    }

    /// Total bytes of *unique* parameters (operators sharing a [`ParamId`]
    /// count once; operators without an explicit `ParamId` count individually).
    #[must_use]
    pub fn total_param_bytes(&self) -> u64 {
        let mut by_param: BTreeMap<ParamId, u64> = BTreeMap::new();
        let mut unshared = 0u64;
        for op in &self.ops {
            if op.params().is_empty() {
                unshared += op.param_bytes();
            } else {
                let share = op.param_bytes() / op.params().len() as u64;
                for &p in op.params() {
                    let entry = by_param.entry(p).or_insert(0);
                    *entry = (*entry).max(share);
                }
            }
        }
        unshared + by_param.values().sum::<u64>()
    }

    /// Volume in bytes of the data flow along edge `(from, to)`: the output
    /// activation of `from`.
    #[must_use]
    pub fn edge_volume(&self, from: OpId, _to: OpId) -> u64 {
        self.op(from).output_bytes()
    }

    /// Extracts the sub-graph containing only the operators of `tasks`
    /// (re-indexed densely). Used by decoupled baselines and by dynamic
    /// workloads when the active task set changes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownTask`] if any task id is unknown, or
    /// [`GraphError::EmptyGraph`] if no operator belongs to the given tasks.
    pub fn subgraph_for_tasks(&self, tasks: &[TaskId]) -> Result<ComputationGraph, GraphError> {
        for &t in tasks {
            if t.index() >= self.tasks.len() {
                return Err(GraphError::UnknownTask(t));
            }
        }
        let keep: BTreeSet<TaskId> = tasks.iter().copied().collect();
        let kept_ops: Vec<&Operator> = self
            .ops
            .iter()
            .filter(|o| keep.contains(&o.task()))
            .collect();
        if kept_ops.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        // Old task id -> new dense task id.
        let task_remap: BTreeMap<TaskId, TaskId> = keep
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, TaskId(new as u32)))
            .collect();
        // Old op id -> new dense op id.
        let op_remap: BTreeMap<OpId, OpId> = kept_ops
            .iter()
            .enumerate()
            .map(|(new, o)| (o.id(), OpId(new as u32)))
            .collect();
        let new_tasks: Vec<TaskSpec> = keep
            .iter()
            .map(|&old| {
                let t = &self.tasks[old.index()];
                TaskSpec::new(
                    task_remap[&old],
                    t.name(),
                    t.modalities().iter().copied(),
                    t.batch_size(),
                )
            })
            .collect();
        let new_ops: Vec<Operator> = kept_ops
            .iter()
            .map(|o| {
                let mut new_op = Operator::new(
                    op_remap[&o.id()],
                    o.kind(),
                    task_remap[&o.task()],
                    o.input_shape(),
                )
                .with_costs(o.flops_forward(), o.param_bytes(), o.output_bytes());
                for &p in o.params() {
                    new_op = new_op.with_param(p);
                }
                new_op
            })
            .collect();
        let new_edges: Vec<(OpId, OpId)> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| match (op_remap.get(&a), op_remap.get(&b)) {
                (Some(&na), Some(&nb)) => Some((na, nb)),
                _ => None,
            })
            .collect();
        ComputationGraph::new(new_ops, new_edges, new_tasks)
    }
}

impl fmt::Display for ComputationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "computation graph: {} tasks, {} ops, {} edges, {:.2} GFLOPs/iter",
            self.tasks.len(),
            self.num_ops(),
            self.num_edges(),
            self.total_flops() / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Modality, OpKind, TensorShape};

    fn two_task_graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
        let t1 = b.add_task("vision-text", [Modality::Vision, Modality::Text], 4);
        let audio = b
            .add_op_chain(
                t0,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                3,
            )
            .unwrap();
        let text0 = b
            .add_op_chain(
                t0,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                2,
            )
            .unwrap();
        let loss0 = b
            .add_op(t0, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(*audio.last().unwrap(), loss0).unwrap();
        b.add_flow(*text0.last().unwrap(), loss0).unwrap();
        let vis = b
            .add_op_chain(
                t1,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(4, 257, 768),
                2,
            )
            .unwrap();
        let text1 = b
            .add_op_chain(
                t1,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
                2,
            )
            .unwrap();
        let loss1 = b
            .add_op(t1, OpKind::ContrastiveLoss, TensorShape::new(4, 1, 768))
            .unwrap();
        b.add_flow(*vis.last().unwrap(), loss1).unwrap();
        b.add_flow(*text1.last().unwrap(), loss1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = two_task_graph();
        assert_eq!(g.num_ops(), 3 + 2 + 1 + 2 + 2 + 1);
        assert_eq!(g.tasks().len(), 2);
        assert_eq!(g.roots().len(), 4);
        assert_eq!(g.leaves().len(), 2);
        assert!(g.total_flops() > 0.0);
        assert!(g.total_param_bytes() > 0);
        assert!(g.to_string().contains("2 tasks"));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = two_task_graph();
        let order = g.topological_order();
        assert_eq!(order.len(), g.num_ops());
        let pos: BTreeMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for &(a, b) in g.edges() {
            assert!(pos[&a] < pos[&b], "{a} must precede {b}");
        }
    }

    #[test]
    fn depths_increase_along_chains() {
        let g = two_task_graph();
        let depths = g.depths();
        // The loss of task 0 sits after a chain of 3 audio layers.
        let loss = g
            .ops_of_task(TaskId(0))
            .into_iter()
            .find(|&o| g.op(o).kind().is_loss())
            .unwrap();
        assert_eq!(depths[loss.index()], 3);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text], 4);
        let a = b
            .add_op(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
            )
            .unwrap();
        let c = b
            .add_op(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
            )
            .unwrap();
        b.add_flow(a, c).unwrap();
        b.add_flow(c, a).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::CycleDetected);
    }

    #[test]
    fn duplicate_edge_and_self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text], 4);
        let a = b
            .add_op(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
            )
            .unwrap();
        let c = b
            .add_op(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(4, 77, 768),
            )
            .unwrap();
        assert_eq!(b.add_flow(a, a).unwrap_err(), GraphError::SelfLoop(a));
        b.add_flow(a, c).unwrap();
        assert_eq!(
            b.add_flow(a, c).unwrap_err(),
            GraphError::DuplicateEdge(a, c)
        );
    }

    #[test]
    fn subgraph_extraction_keeps_only_requested_tasks() {
        let g = two_task_graph();
        let sub = g.subgraph_for_tasks(&[TaskId(1)]).unwrap();
        assert_eq!(sub.tasks().len(), 1);
        assert_eq!(sub.num_ops(), 5);
        assert!(sub.ops().iter().all(|o| o.task() == TaskId(0)));
        // Flows inside the kept task survive.
        assert_eq!(sub.leaves().len(), 1);
        assert!(g.subgraph_for_tasks(&[TaskId(9)]).is_err());
    }

    #[test]
    fn edge_volume_is_producer_output() {
        let g = two_task_graph();
        let (a, b) = g.edges()[0];
        assert_eq!(g.edge_volume(a, b), g.op(a).output_bytes());
    }

    #[test]
    fn task_lookup() {
        let g = two_task_graph();
        assert_eq!(g.task(TaskId(0)).unwrap().name(), "audio-text");
        assert!(g.task(TaskId(7)).is_none());
        assert_eq!(g.ops_of_task(TaskId(0)).len(), 6);
    }
}
