//! # spindle-graph
//!
//! Operator-level computation-graph IR for multi-task multi-modal (MT MM)
//! training workloads.
//!
//! The Spindle planner (see `spindle-core`) consumes a unified directed acyclic
//! computation graph `G = (V, E)` in which each node is a computational
//! operator (e.g. one transformer layer of a modality encoder) and each edge is
//! a data flow. Different tasks activate different operators and may *share*
//! parameters (the sub-model sharing approach of OFASys/Qwen-VL-style models);
//! parameter sharing is expressed through [`ParamId`]s attached to operators.
//!
//! In the paper the graph is traced out of PyTorch modules via FX. Here the
//! graph is first-class: workload crates build it directly through
//! [`GraphBuilder`], whose `add_flow` method mirrors the paper's user-facing
//! API.
//!
//! ## Example
//!
//! ```
//! use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let task = b.add_task("image-text", [Modality::Vision, Modality::Text], 8);
//! let vision = b.add_op_chain(
//!     task,
//!     OpKind::Encoder(Modality::Vision),
//!     TensorShape::new(8, 257, 768),
//!     12,
//! )?;
//! let text = b.add_op_chain(
//!     task,
//!     OpKind::Encoder(Modality::Text),
//!     TensorShape::new(8, 77, 768),
//!     12,
//! )?;
//! let loss = b.add_op(task, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
//! b.add_flow(*vision.last().unwrap(), loss)?;
//! b.add_flow(*text.last().unwrap(), loss)?;
//! let graph = b.build()?;
//! assert_eq!(graph.num_ops(), 25);
//! assert!(graph.topological_order().len() == 25);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod graph;
mod modality;
mod op;
mod rng;
mod shape;
mod task;
mod transformer;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::ComputationGraph;
pub use modality::Modality;
pub use op::{OpId, OpKind, OpSignature, Operator, ParamId, WorkloadSignature};
pub use rng::XorShift64Star;
pub use shape::TensorShape;
pub use task::{TaskId, TaskSpec};
pub use transformer::TransformerLayerSpec;
