//! Data modalities handled by multi-task multi-modal models.

use std::fmt;

/// A data modality processed by an MT MM model.
///
/// The set mirrors the modalities used by the paper's evaluation workloads:
/// ImageBind-style Multitask-CLIP covers the first six, OFASys additionally
/// uses bounding boxes and structured data, and QWen-VAL uses text, vision and
/// audio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Modality {
    /// Natural-language text.
    Text,
    /// Images.
    Vision,
    /// Audio waveforms / spectrograms.
    Audio,
    /// Depth maps.
    Depth,
    /// Thermal images.
    Thermal,
    /// IMU / motion capture streams.
    Motion,
    /// Video clips.
    Video,
    /// Bounding boxes (visual grounding targets).
    BoundingBox,
    /// Structured data such as tables or SQL.
    Structured,
}

impl Modality {
    /// All modalities known to the model zoo, in a stable order.
    pub const ALL: [Modality; 9] = [
        Modality::Text,
        Modality::Vision,
        Modality::Audio,
        Modality::Depth,
        Modality::Thermal,
        Modality::Motion,
        Modality::Video,
        Modality::BoundingBox,
        Modality::Structured,
    ];

    /// Short lowercase name of the modality (stable, used in labels and CSV).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Modality::Text => "text",
            Modality::Vision => "vision",
            Modality::Audio => "audio",
            Modality::Depth => "depth",
            Modality::Thermal => "thermal",
            Modality::Motion => "motion",
            Modality::Video => "video",
            Modality::BoundingBox => "box",
            Modality::Structured => "struct",
        }
    }

    /// Typical token-sequence length produced by this modality's encoder input
    /// in the paper's workloads (Fig. 3 lists e.g. audio = 229 tokens, vision =
    /// 257 or 197 tokens, text = 77 tokens).
    #[must_use]
    pub fn typical_sequence_length(self) -> u32 {
        match self {
            Modality::Text => 77,
            Modality::Vision => 257,
            Modality::Audio => 229,
            Modality::Depth => 197,
            Modality::Thermal => 197,
            Modality::Motion => 128,
            Modality::Video => 512,
            Modality::BoundingBox => 16,
            Modality::Structured => 96,
        }
    }
}

impl fmt::Display for Modality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Modality::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Modality::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        for m in Modality::ALL {
            assert_eq!(m.to_string(), m.name());
        }
    }

    #[test]
    fn sequence_lengths_positive_and_text_is_short() {
        for m in Modality::ALL {
            assert!(m.typical_sequence_length() > 0);
        }
        assert!(
            Modality::Text.typical_sequence_length() < Modality::Vision.typical_sequence_length()
        );
    }
}
