//! Operators: the nodes of the computation graph.

use std::fmt;

use crate::transformer::{default_costs, OpCosts};
use crate::{Modality, TaskId, TensorShape};

/// Identifier of an operator within a [`ComputationGraph`](crate::ComputationGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpId(pub u32);

impl OpId {
    /// Raw index of the operator.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Identifier of a (possibly shared) parameter group.
///
/// Two operators carrying the same `ParamId` share parameters: their gradients
/// must be accumulated and the parameter synchronised across every device that
/// hosts either operator (the parameter device groups of §3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub u32);

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// The computational kind of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// One transformer layer of a modality-specific encoder.
    Encoder(Modality),
    /// A lightweight modality adaptor (single projection), as used by OFASys.
    Adaptor(Modality),
    /// One encoder layer of a unified cross-modal LM (encoder-decoder style).
    LmEncoder,
    /// One decoder layer of a unified cross-modal LM (encoder-decoder style).
    LmDecoder,
    /// One layer of a decoder-only LLM (QWen-style cross-modal module).
    LmDecoderOnly,
    /// Token/patch embedding lookup.
    Embedding,
    /// A projection head (e.g. into the contrastive embedding space).
    Projection,
    /// Contrastive (CLIP-style) loss head.
    ContrastiveLoss,
    /// Generative (language-modelling) loss head.
    GenerativeLoss,
}

impl OpKind {
    /// Short stable label for the kind (used in traces and experiment output).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            OpKind::Encoder(m) => format!("{m}-enc"),
            OpKind::Adaptor(m) => format!("{m}-adaptor"),
            OpKind::LmEncoder => "lm-enc".to_string(),
            OpKind::LmDecoder => "lm-dec".to_string(),
            OpKind::LmDecoderOnly => "llm".to_string(),
            OpKind::Embedding => "embed".to_string(),
            OpKind::Projection => "proj".to_string(),
            OpKind::ContrastiveLoss => "contrastive-loss".to_string(),
            OpKind::GenerativeLoss => "generative-loss".to_string(),
        }
    }

    /// Returns `true` if this kind is a loss head.
    #[must_use]
    pub fn is_loss(&self) -> bool {
        matches!(self, OpKind::ContrastiveLoss | OpKind::GenerativeLoss)
    }

    /// Returns `true` if this kind is a full transformer layer (the heavy,
    /// stackable operators the graph contraction fuses into MetaOps).
    #[must_use]
    pub fn is_layer(&self) -> bool {
        matches!(
            self,
            OpKind::Encoder(_) | OpKind::LmEncoder | OpKind::LmDecoder | OpKind::LmDecoderOnly
        )
    }

    /// The modality this kind is specific to, if any.
    #[must_use]
    pub fn modality(&self) -> Option<Modality> {
        match self {
            OpKind::Encoder(m) | OpKind::Adaptor(m) => Some(*m),
            _ => None,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A node of the computation graph: one computational operator activated by a
/// specific task, together with the cost figures the planner needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    id: OpId,
    kind: OpKind,
    task: TaskId,
    input_shape: TensorShape,
    flops_forward: f64,
    param_bytes: u64,
    output_bytes: u64,
    params: Vec<ParamId>,
}

impl Operator {
    /// Creates an operator with costs derived from its kind and input shape.
    #[must_use]
    pub fn new(id: OpId, kind: OpKind, task: TaskId, input_shape: TensorShape) -> Self {
        let OpCosts {
            flops_forward,
            param_bytes,
            output_bytes,
        } = default_costs(kind, input_shape);
        Self {
            id,
            kind,
            task,
            input_shape,
            flops_forward,
            param_bytes,
            output_bytes,
            params: Vec::new(),
        }
    }

    /// Overrides the derived costs (for calibration or custom operators).
    #[must_use]
    pub fn with_costs(mut self, flops_forward: f64, param_bytes: u64, output_bytes: u64) -> Self {
        self.flops_forward = flops_forward;
        self.param_bytes = param_bytes;
        self.output_bytes = output_bytes;
        self
    }

    /// Attaches a (possibly shared) parameter group to the operator.
    #[must_use]
    pub fn with_param(mut self, param: ParamId) -> Self {
        if !self.params.contains(&param) {
            self.params.push(param);
        }
        self
    }

    /// Operator identity.
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// Operator kind.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The task that activates this operator.
    #[must_use]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Input activation shape.
    #[must_use]
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// Forward-pass FLOPs on the full per-task batch.
    #[must_use]
    pub fn flops_forward(&self) -> f64 {
        self.flops_forward
    }

    /// Backward-pass FLOPs (the conventional 2× forward).
    #[must_use]
    pub fn flops_backward(&self) -> f64 {
        2.0 * self.flops_forward
    }

    /// Total FLOPs of one training step of this operator (forward + backward).
    #[must_use]
    pub fn flops_total(&self) -> f64 {
        self.flops_forward + self.flops_backward()
    }

    /// Bytes of parameters owned by this operator.
    #[must_use]
    pub fn param_bytes(&self) -> u64 {
        self.param_bytes
    }

    /// Bytes of the operator's output activation (= the volume of every data
    /// flow leaving this operator).
    #[must_use]
    pub fn output_bytes(&self) -> u64 {
        self.output_bytes
    }

    /// Parameter groups attached to this operator.
    #[must_use]
    pub fn params(&self) -> &[ParamId] {
        &self.params
    }

    /// Workload signature used by the graph-contraction criteria of §3.1: two
    /// operators with the same signature have identical workloads.
    #[must_use]
    pub fn signature(&self) -> OpSignature {
        OpSignature {
            kind: self.kind,
            input_shape: self.input_shape,
            task: self.task,
        }
    }

    /// Task-independent workload identity: everything that determines the
    /// operator's cost model — kind, input shape and the (possibly overridden)
    /// cost figures. Two operators with equal workload signatures have
    /// bit-identical scaling curves, memory footprints and flow volumes, no
    /// matter which task activates them, so this is the key under which
    /// estimator and planner caches may share results across tasks and across
    /// graphs (e.g. the phases of a dynamic workload).
    #[must_use]
    pub fn workload_signature(&self) -> WorkloadSignature {
        WorkloadSignature {
            kind: self.kind,
            input_shape: self.input_shape,
            flops_forward_bits: self.flops_forward.to_bits(),
            param_bytes: self.param_bytes,
            output_bytes: self.output_bytes,
        }
    }

    /// The device-allocation sizes that are *valid* for this operator under
    /// the practical constraints of §3.3: the data-parallel degree must divide
    /// the per-task batch and the tensor-parallel degree must be a power of two
    /// no larger than 8, so valid sizes are exactly the products of such a pair.
    /// Always includes 1 and never exceeds `max_devices`.
    #[must_use]
    pub fn valid_allocations(&self, max_devices: u32) -> Vec<u32> {
        let batch = self.input_shape.batch;
        let mut valid = Vec::new();
        for n in 1..=max_devices {
            if Self::is_valid_allocation(batch, n) {
                valid.push(n);
            }
        }
        if valid.is_empty() {
            valid.push(1);
        }
        valid
    }

    fn is_valid_allocation(batch: u32, n: u32) -> bool {
        for tp in [1u32, 2, 4, 8] {
            if n % tp != 0 {
                continue;
            }
            let dp = n / tp;
            if dp == 0 {
                continue;
            }
            if batch % dp == 0 {
                return true;
            }
        }
        false
    }
}

/// Signature that identifies identical workloads for graph contraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpSignature {
    /// Operator kind.
    pub kind: OpKind,
    /// Input data size.
    pub input_shape: TensorShape,
    /// Activating task (operators of different tasks are never fused).
    pub task: TaskId,
}

/// Task-independent workload identity (see
/// [`Operator::workload_signature`]): the exact inputs of the cost model,
/// including overridden costs, so equal signatures guarantee equal profiling
/// results. Unlike [`OpSignature`] it carries no [`TaskId`], which is what
/// lets caches keyed by it serve hits across tasks and across graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSignature {
    /// Operator kind.
    pub kind: OpKind,
    /// Input data size.
    pub input_shape: TensorShape,
    /// Bit pattern of the forward-pass FLOPs (bitwise so the key is hashable;
    /// costs produced by the same derivation are bit-identical).
    pub flops_forward_bits: u64,
    /// Parameter bytes.
    pub param_bytes: u64,
    /// Output activation bytes.
    pub output_bytes: u64,
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({} {})", self.id, self.kind, self.input_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: OpKind, shape: TensorShape) -> Operator {
        Operator::new(OpId(0), kind, TaskId(0), shape)
    }

    #[test]
    fn costs_derived_from_kind_and_shape() {
        let enc = op(
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(4, 257, 768),
        );
        assert!(enc.flops_forward() > 0.0);
        assert!(enc.param_bytes() > 0);
        assert_eq!(enc.flops_backward(), 2.0 * enc.flops_forward());
        assert_eq!(enc.flops_total(), 3.0 * enc.flops_forward());
    }

    #[test]
    fn with_costs_overrides() {
        let o = op(OpKind::Projection, TensorShape::new(4, 77, 768)).with_costs(1.0, 2, 3);
        assert_eq!(o.flops_forward(), 1.0);
        assert_eq!(o.param_bytes(), 2);
        assert_eq!(o.output_bytes(), 3);
    }

    #[test]
    fn params_dedup() {
        let o = op(OpKind::LmEncoder, TensorShape::new(4, 512, 1024))
            .with_param(ParamId(5))
            .with_param(ParamId(5))
            .with_param(ParamId(6));
        assert_eq!(o.params(), &[ParamId(5), ParamId(6)]);
    }

    #[test]
    fn signatures_distinguish_shape_and_kind() {
        let a = op(
            OpKind::Encoder(Modality::Text),
            TensorShape::new(8, 77, 768),
        );
        let b = op(
            OpKind::Encoder(Modality::Text),
            TensorShape::new(4, 77, 768),
        );
        let c = op(
            OpKind::Encoder(Modality::Vision),
            TensorShape::new(8, 77, 768),
        );
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert_eq!(a.signature(), a.clone().signature());
    }

    #[test]
    fn workload_signatures_ignore_task_but_track_costs() {
        let a = Operator::new(
            OpId(0),
            OpKind::Encoder(Modality::Text),
            TaskId(0),
            TensorShape::new(8, 77, 768),
        );
        let b = Operator::new(
            OpId(9),
            OpKind::Encoder(Modality::Text),
            TaskId(3),
            TensorShape::new(8, 77, 768),
        );
        // Same kind+shape+derived costs: equal across tasks (OpSignature is
        // not — it keeps tasks apart for contraction).
        assert_eq!(a.workload_signature(), b.workload_signature());
        assert_ne!(a.signature(), b.signature());
        // Overridden costs change the workload identity.
        let c = b.clone().with_costs(1.0, 2, 3);
        assert_ne!(a.workload_signature(), c.workload_signature());
        // Copying the same costs (as subgraph extraction does) keeps it.
        let d = b
            .clone()
            .with_costs(b.flops_forward(), b.param_bytes(), b.output_bytes());
        assert_eq!(a.workload_signature(), d.workload_signature());
    }

    #[test]
    fn valid_allocations_follow_batch_divisibility() {
        let o = op(
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let valid = o.valid_allocations(16);
        assert!(valid.contains(&1));
        assert!(valid.contains(&2));
        assert!(valid.contains(&8));
        assert!(valid.contains(&16));
        // 3, 5, 7 are invalid for a batch of 8 (per the paper's example).
        assert!(!valid.contains(&3));
        assert!(!valid.contains(&5));
        assert!(!valid.contains(&7));
    }

    #[test]
    fn valid_allocations_never_empty_and_bounded() {
        let o = op(OpKind::ContrastiveLoss, TensorShape::new(7, 1, 768));
        let valid = o.valid_allocations(4);
        assert!(!valid.is_empty());
        assert!(valid.iter().all(|&n| n <= 4));
    }

    #[test]
    fn kind_helpers() {
        assert!(OpKind::ContrastiveLoss.is_loss());
        assert!(!OpKind::LmDecoderOnly.is_loss());
        assert!(OpKind::Encoder(Modality::Audio).is_layer());
        assert!(!OpKind::Adaptor(Modality::Audio).is_layer());
        assert_eq!(
            OpKind::Encoder(Modality::Audio).modality(),
            Some(Modality::Audio)
        );
        assert_eq!(OpKind::LmDecoder.modality(), None);
        assert_eq!(OpKind::Encoder(Modality::Vision).label(), "vision-enc");
    }

    #[test]
    fn display_is_informative() {
        let o = op(
            OpKind::Encoder(Modality::Audio),
            TensorShape::new(8, 229, 768),
        );
        let s = o.to_string();
        assert!(s.contains("op0"));
        assert!(s.contains("audio-enc"));
        assert!(s.contains("[8, 229, 768]"));
    }
}
