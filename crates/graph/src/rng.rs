//! A deterministic xorshift64* PRNG shared across the workspace.
//!
//! No external RNG crates are available in the offline build environment, so
//! seeded scenario generation (workload arrival processes) and simulation
//! perturbations (the runtime's compute jitter) share this one tiny
//! generator: splitmix64 seed scrambling so nearby seeds produce unrelated
//! streams, then the classic xorshift64* step. The same seed always produces
//! the same sequence — the determinism every replay test in the workspace
//! relies on.

/// Deterministic xorshift64* pseudo-random generator.
#[derive(Debug, Clone)]
pub struct XorShift64Star(u64);

impl XorShift64Star {
    /// Creates a generator from `seed`. Any seed is valid (including zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // splitmix64 scrambling; the xorshift state must be non-zero.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)).max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64Star::new(7);
        let mut b = XorShift64Star::new(7);
        let mut c = XorShift64Star::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn zero_seed_is_valid_and_uniformish() {
        let mut r = XorShift64Star::new(0);
        let mean: f64 = (0..4096).map(|_| r.next_f64()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!((0..64).all(|_| (0.0..1.0).contains(&r.next_f64())));
    }
}
