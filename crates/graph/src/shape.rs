//! Tensor shapes describing per-operator input data sizes.

use std::fmt;

use crate::GraphError;

/// Shape of an operator's input activation tensor, `[batch, sequence, hidden]`.
///
/// This matches the "input data size" column of Fig. 3 in the paper — e.g. the
/// audio MetaOp of the audio-language task has input `[8, 229, 768]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Number of samples in the (per-task) global batch.
    pub batch: u32,
    /// Sequence length in tokens/patches.
    pub seq: u32,
    /// Hidden (model) dimension.
    pub hidden: u32,
}

impl TensorShape {
    /// Creates a shape `[batch, seq, hidden]`.
    #[must_use]
    pub fn new(batch: u32, seq: u32, hidden: u32) -> Self {
        Self { batch, seq, hidden }
    }

    /// Validates that all dimensions are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidShape`] if any dimension is zero.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.batch == 0 || self.seq == 0 || self.hidden == 0 {
            return Err(GraphError::InvalidShape(format!(
                "all dimensions must be positive, got {self}"
            )));
        }
        Ok(())
    }

    /// Number of elements in a tensor of this shape.
    #[must_use]
    pub fn num_elements(&self) -> u64 {
        u64::from(self.batch) * u64::from(self.seq) * u64::from(self.hidden)
    }

    /// Size in bytes assuming 2-byte (bf16/fp16) elements, the precision used
    /// for activations in mixed-precision training.
    #[must_use]
    pub fn activation_bytes(&self) -> u64 {
        self.num_elements() * 2
    }

    /// Number of tokens (batch × sequence).
    #[must_use]
    pub fn tokens(&self) -> u64 {
        u64::from(self.batch) * u64::from(self.seq)
    }

    /// Returns a copy with a different batch size (used when a task's batch is
    /// re-partitioned).
    #[must_use]
    pub fn with_batch(&self, batch: u32) -> Self {
        Self { batch, ..*self }
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.batch, self.seq, self.hidden)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::new(8, 229, 768);
        assert_eq!(s.num_elements(), 8 * 229 * 768);
        assert_eq!(s.activation_bytes(), 8 * 229 * 768 * 2);
        assert_eq!(s.tokens(), 8 * 229);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TensorShape::new(8, 229, 768).to_string(), "[8, 229, 768]");
    }

    #[test]
    fn validation_rejects_zero_dims() {
        assert!(TensorShape::new(0, 1, 1).validate().is_err());
        assert!(TensorShape::new(1, 0, 1).validate().is_err());
        assert!(TensorShape::new(1, 1, 0).validate().is_err());
        assert!(TensorShape::new(4, 77, 768).validate().is_ok());
    }

    #[test]
    fn with_batch_only_changes_batch() {
        let s = TensorShape::new(8, 77, 768).with_batch(4);
        assert_eq!(s, TensorShape::new(4, 77, 768));
    }
}
