//! Training tasks of a multi-task multi-modal workload.

use std::fmt;

use crate::Modality;

/// Identifier of a training task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Raw index of the task.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Description of one training task: the modalities it consumes and its
/// per-iteration batch size.
///
/// A task corresponds to the paper's `SpindleTask`: a multi-modal training
/// objective (e.g. "image captioning" or "audio-text contrastive") that
/// activates a specific subset of the model's components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    id: TaskId,
    name: String,
    modalities: Vec<Modality>,
    batch_size: u32,
}

impl TaskSpec {
    /// Creates a task description.
    #[must_use]
    pub fn new(
        id: TaskId,
        name: impl Into<String>,
        modalities: impl IntoIterator<Item = Modality>,
        batch_size: u32,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            modalities: modalities.into_iter().collect(),
            batch_size,
        }
    }

    /// Task identity.
    #[must_use]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modalities this task consumes.
    #[must_use]
    pub fn modalities(&self) -> &[Modality] {
        &self.modalities
    }

    /// Per-iteration (per-task global) batch size.
    #[must_use]
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Returns `true` if the task consumes `modality`.
    #[must_use]
    pub fn uses_modality(&self, modality: Modality) -> bool {
        self.modalities.contains(&modality)
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}", self.id, self.name)?;
        for m in &self.modalities {
            write!(f, " {m}")?;
        }
        write!(f, ", batch {})", self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_accessors() {
        let t = TaskSpec::new(
            TaskId(2),
            "audio-text",
            [Modality::Audio, Modality::Text],
            8,
        );
        assert_eq!(t.id(), TaskId(2));
        assert_eq!(t.name(), "audio-text");
        assert_eq!(t.batch_size(), 8);
        assert!(t.uses_modality(Modality::Audio));
        assert!(!t.uses_modality(Modality::Vision));
        assert_eq!(t.modalities().len(), 2);
    }

    #[test]
    fn display_mentions_name_and_modalities() {
        let t = TaskSpec::new(TaskId(0), "vl", [Modality::Vision, Modality::Text], 4);
        let s = t.to_string();
        assert!(s.contains("task0"));
        assert!(s.contains("vl"));
        assert!(s.contains("vision"));
        assert!(s.contains("batch 4"));
    }

    #[test]
    fn task_id_index_and_display() {
        assert_eq!(TaskId(5).index(), 5);
        assert_eq!(TaskId(5).to_string(), "task5");
    }
}
