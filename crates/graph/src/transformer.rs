//! Analytic cost formulas for transformer-style operators.
//!
//! The workload builders need per-operator forward FLOPs, parameter sizes and
//! activation volumes. These are standard closed-form counts for transformer
//! layers (attention + MLP) and lightweight components (adaptors, losses); they
//! are the same formulas used by Megatron-LM's performance accounting.

use crate::{OpKind, TensorShape};

/// Configuration of a transformer layer used to derive FLOP and parameter
/// counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransformerLayerSpec {
    /// Hidden (model) dimension.
    pub hidden: u32,
    /// Feed-forward expansion factor (4 for classic transformers).
    pub ffn_multiplier: u32,
    /// Number of attention heads.
    pub num_heads: u32,
}

impl TransformerLayerSpec {
    /// A layer spec for the given hidden size with conventional defaults
    /// (4× FFN, head dimension 64).
    #[must_use]
    pub fn for_hidden(hidden: u32) -> Self {
        Self {
            hidden,
            ffn_multiplier: 4,
            num_heads: (hidden / 64).max(1),
        }
    }

    /// Forward FLOPs of one layer for a `[b, s, h]` input.
    ///
    /// Attention projections + score/context matmuls + MLP:
    /// `8·b·s·h² + 4·b·s²·h + 4·m·b·s·h²` where `m` is the FFN multiplier.
    #[must_use]
    pub fn forward_flops(&self, shape: TensorShape) -> f64 {
        let b = f64::from(shape.batch);
        let s = f64::from(shape.seq);
        let h = f64::from(self.hidden);
        let m = f64::from(self.ffn_multiplier);
        8.0 * b * s * h * h + 4.0 * b * s * s * h + 4.0 * m * b * s * h * h
    }

    /// Number of parameters in one layer: `4·h²` (attention) + `2·m·h²` (MLP)
    /// plus layer norms (negligible, included as `4·h`).
    #[must_use]
    pub fn num_params(&self) -> u64 {
        let h = u64::from(self.hidden);
        let m = u64::from(self.ffn_multiplier);
        4 * h * h + 2 * m * h * h + 4 * h
    }

    /// Parameter bytes in half precision (2 bytes per parameter).
    #[must_use]
    pub fn param_bytes(&self) -> u64 {
        self.num_params() * 2
    }
}

/// Per-operator cost figures derived from its kind and input shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCosts {
    /// Forward-pass FLOPs of the operator on the full (per-task) batch.
    pub flops_forward: f64,
    /// Bytes of parameters owned by the operator (half precision).
    pub param_bytes: u64,
    /// Bytes of the operator's output activation (half precision).
    pub output_bytes: u64,
}

/// Default costs for an operator of `kind` whose input is `shape`.
///
/// Heavy operators (encoder/LM layers) follow the transformer formulas above;
/// lightweight operators (adaptors, embeddings, projections, losses) cost a
/// single matmul or less. The hidden dimension is taken from the input shape.
#[must_use]
pub fn default_costs(kind: OpKind, shape: TensorShape) -> OpCosts {
    let layer = TransformerLayerSpec::for_hidden(shape.hidden);
    let b = f64::from(shape.batch);
    let s = f64::from(shape.seq);
    let h = f64::from(shape.hidden);
    let output_bytes = shape.activation_bytes();
    match kind {
        OpKind::Encoder(_) | OpKind::LmEncoder | OpKind::LmDecoder | OpKind::LmDecoderOnly => {
            OpCosts {
                flops_forward: layer.forward_flops(shape),
                param_bytes: layer.param_bytes(),
                output_bytes,
            }
        }
        OpKind::Adaptor(_) | OpKind::Projection => OpCosts {
            // One dense projection h -> h.
            flops_forward: 2.0 * b * s * h * h,
            param_bytes: u64::from(shape.hidden) * u64::from(shape.hidden) * 2,
            output_bytes,
        },
        OpKind::Embedding => OpCosts {
            // Lookup + scale; compute-negligible but owns an embedding table.
            flops_forward: 2.0 * b * s * h,
            param_bytes: 32_000u64 * u64::from(shape.hidden) * 2,
            output_bytes,
        },
        OpKind::ContrastiveLoss => OpCosts {
            // Pairwise similarity over the batch on pooled features.
            flops_forward: 2.0 * b * b * h,
            param_bytes: 0,
            output_bytes: u64::from(shape.batch) * 4,
        },
        OpKind::GenerativeLoss => OpCosts {
            // Logit projection to a 32k vocabulary + softmax.
            flops_forward: 2.0 * b * s * h * 32_000.0,
            param_bytes: 32_000u64 * u64::from(shape.hidden) * 2,
            output_bytes: u64::from(shape.batch) * 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Modality;

    #[test]
    fn layer_flops_scale_with_tokens_and_hidden() {
        let spec = TransformerLayerSpec::for_hidden(768);
        let small = spec.forward_flops(TensorShape::new(4, 77, 768));
        let more_tokens = spec.forward_flops(TensorShape::new(8, 77, 768));
        assert!((more_tokens / small - 2.0).abs() < 1e-9);
        let wide = TransformerLayerSpec::for_hidden(1536);
        assert!(wide.forward_flops(TensorShape::new(4, 77, 1536)) > 3.0 * small);
    }

    #[test]
    fn layer_params_match_closed_form() {
        let spec = TransformerLayerSpec::for_hidden(1024);
        // 4h^2 + 8h^2 + 4h = 12h^2 + 4h
        assert_eq!(spec.num_params(), 12 * 1024 * 1024 + 4 * 1024);
        assert_eq!(spec.param_bytes(), spec.num_params() * 2);
        assert_eq!(spec.num_heads, 16);
    }

    #[test]
    fn encoder_layers_dominate_lightweight_ops() {
        let shape = TensorShape::new(8, 229, 768);
        let enc = default_costs(OpKind::Encoder(Modality::Audio), shape);
        let adaptor = default_costs(OpKind::Adaptor(Modality::Audio), shape);
        let loss = default_costs(OpKind::ContrastiveLoss, shape);
        assert!(enc.flops_forward > adaptor.flops_forward);
        assert!(adaptor.flops_forward > loss.flops_forward);
        assert!(enc.param_bytes > adaptor.param_bytes);
        assert_eq!(loss.param_bytes, 0);
    }

    #[test]
    fn generative_loss_owns_vocab_projection() {
        let shape = TensorShape::new(4, 512, 1024);
        let gen = default_costs(OpKind::GenerativeLoss, shape);
        assert!(gen.param_bytes > 0);
        assert!(gen.flops_forward > default_costs(OpKind::ContrastiveLoss, shape).flops_forward);
    }

    #[test]
    fn output_bytes_follow_shape_for_layer_ops() {
        let shape = TensorShape::new(8, 197, 768);
        let enc = default_costs(OpKind::Encoder(Modality::Depth), shape);
        assert_eq!(enc.output_bytes, shape.activation_bytes());
    }
}
