//! The dynamic run loop: online re-planning under task arrivals and
//! departures.
//!
//! The paper's Appendix D scenario — tasks join and finish mid-run, the
//! system re-plans at every change — is driven here end to end: an
//! [`ArrivalSchedule`] positions task-mix changes on a simulated timeline,
//! and at each arrival the loop calls back into the long-lived
//! [`SpindleSession`] to re-plan online (served from the warm curve cache for
//! operator signatures seen before), then executes the new plan on the
//! event-driven [`Simulator`]. The report captures, per phase, the re-plan
//! cost and cache warmth, the simulated versus analytically-priced iteration
//! time (the plan-vs-simulated gap), and the utilization trace.

use std::fmt;
use std::sync::Arc;

use spindle_core::SpindleSession;
use spindle_workloads::ArrivalSchedule;

use crate::metrics::UtilizationSample;
use crate::sim::{SimConfig, Simulator};
use crate::{RuntimeEngine, RuntimeError};

/// What happened in one phase of a dynamic run.
#[derive(Debug, Clone)]
pub struct PhaseRunReport {
    /// The phase's task-set label.
    pub label: String,
    /// When the phase's task mix arrived, simulated seconds since run start.
    pub arrival_s: f64,
    /// Wall-clock cost of the online re-plan, milliseconds.
    pub replan_ms: f64,
    /// Operator signatures that had to be profiled and fitted anew.
    pub new_curve_fits: usize,
    /// Curve-cache hits served during the re-plan.
    pub cache_hits: usize,
    /// `true` if the re-plan was served entirely from the warm cache.
    pub warm: bool,
    /// MetaLevels of the phase's graph.
    pub levels_total: usize,
    /// MetaLevels spliced from the session's structural plan cache instead
    /// of being re-solved (incremental re-planning).
    pub levels_reused: usize,
    /// `true` if the placed wave list was reused wholesale (the plan
    /// structure recurred), skipping placement entirely.
    pub placement_reused: bool,
    /// Simulated iteration time of the phase's plan, seconds.
    pub sim_iteration_s: f64,
    /// Closed-form iteration time of the same plan, seconds.
    pub analytical_iteration_s: f64,
    /// Relative plan-vs-simulated gap:
    /// `(simulated - analytical) / analytical`.
    pub gap: f64,
    /// Training iterations executed before the next task-mix change.
    pub iterations: u64,
    /// Utilization trace of one simulated iteration of this phase.
    pub utilization_trace: Vec<UtilizationSample>,
}

/// The full report of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicRunReport {
    /// Per-phase reports in arrival order.
    pub phases: Vec<PhaseRunReport>,
    /// Total simulated training time across all phases, seconds.
    pub total_simulated_s: f64,
    /// Total online re-planning time, milliseconds.
    pub total_replan_ms: f64,
}

impl DynamicRunReport {
    /// Number of online re-plans performed (every phase after the first).
    #[must_use]
    pub fn replans(&self) -> usize {
        self.phases.len().saturating_sub(1)
    }

    /// Curve-cache hit rate over the online re-plans (phases after the
    /// first, whose plans are produced mid-run). 1.0 means every operator
    /// signature was served from the warm cache.
    #[must_use]
    pub fn warm_hit_rate(&self) -> f64 {
        let (hits, fits) = self
            .phases
            .iter()
            .skip(1)
            .fold((0usize, 0usize), |(h, f), p| {
                (h + p.cache_hits, f + p.new_curve_fits)
            });
        if hits + fits == 0 {
            return 1.0;
        }
        hits as f64 / (hits + fits) as f64
    }

    /// Largest absolute plan-vs-simulated gap over all phases.
    #[must_use]
    pub fn worst_gap(&self) -> f64 {
        self.phases.iter().map(|p| p.gap.abs()).fold(0.0, f64::max)
    }

    /// Fraction of MetaLevels spliced from the structural plan cache over
    /// the online re-plans (phases after the first). 1.0 means every re-plan
    /// was fully incremental.
    #[must_use]
    pub fn structural_reuse_rate(&self) -> f64 {
        let (reused, total) = self
            .phases
            .iter()
            .skip(1)
            .fold((0usize, 0usize), |(r, t), p| {
                (r + p.levels_reused, t + p.levels_total)
            });
        if total == 0 {
            return 1.0;
        }
        reused as f64 / total as f64
    }
}

impl fmt::Display for DynamicRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} phases, {} online re-plans ({:.1} ms total, {:.0}% warm-cache hit rate, \
             {:.0}% structural level reuse), {:.1} x10^3 s simulated, \
             worst plan-vs-sim gap {:+.1}%",
            self.phases.len(),
            self.replans(),
            self.total_replan_ms,
            self.warm_hit_rate() * 100.0,
            self.structural_reuse_rate() * 100.0,
            self.total_simulated_s / 1e3,
            self.worst_gap() * 100.0
        )
    }
}

/// Drives a dynamic workload through online re-planning and event-driven
/// simulation.
///
/// The loop borrows a long-lived [`SpindleSession`] so its curve cache
/// persists across the run (and across runs, if the caller keeps the session).
#[derive(Debug)]
pub struct DynamicRunLoop<'s> {
    session: &'s mut SpindleSession,
    sim_config: SimConfig,
}

impl<'s> DynamicRunLoop<'s> {
    /// Creates a run loop over `session` with the default simulator
    /// configuration (serialized, contention-free — the oracle-matching
    /// setup).
    pub fn new(session: &'s mut SpindleSession) -> Self {
        Self {
            session,
            sim_config: SimConfig::default(),
        }
    }

    /// Overrides the simulator configuration used for every phase.
    #[must_use]
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Executes the schedule: at every arrival the session re-plans the new
    /// task mix, the new plan is simulated, and the phase trains until the
    /// next arrival (at least one iteration per phase).
    ///
    /// # Errors
    ///
    /// Propagates planning failures as [`RuntimeError::InvalidPlan`] and
    /// simulation failures unchanged.
    pub fn run(&mut self, schedule: &ArrivalSchedule) -> Result<DynamicRunReport, RuntimeError> {
        let cluster = self.session.cluster_handle();
        let mut phases = Vec::with_capacity(schedule.arrivals().len());
        let mut total_simulated_s = 0.0;
        let mut total_replan_ms = 0.0;
        for (i, arrival) in schedule.arrivals().iter().enumerate() {
            // Online re-plan at the arrival, against the warm session cache.
            let outcome = self.session.replan(&arrival.graph)?;
            let replan_ms = outcome.plan.planning_time().as_secs_f64() * 1e3;
            total_replan_ms += replan_ms;
            let plan = Arc::new(outcome.plan);

            // Price the plan both ways: closed form and event-driven.
            let analytical = RuntimeEngine::new(Arc::clone(&plan), &cluster)
                .with_graph(&arrival.graph)
                .with_config(self.sim_config.engine)
                .run_iteration()?;
            let sim = Simulator::new(Arc::clone(&plan), &cluster)
                .with_graph(&arrival.graph)
                .with_config(self.sim_config.clone())
                .run_iteration()?;

            let window_s = schedule.phase_window_s(i);
            let iterations = if sim.total_s() > 0.0 {
                ((window_s / sim.total_s()).floor() as u64).max(1)
            } else {
                1
            };
            total_simulated_s += iterations as f64 * sim.total_s();

            phases.push(PhaseRunReport {
                label: arrival.label.clone(),
                arrival_s: arrival.at_s,
                replan_ms,
                new_curve_fits: outcome.new_curve_fits,
                cache_hits: outcome.cache_hits,
                warm: outcome.warm,
                levels_total: outcome.levels_total,
                levels_reused: outcome.levels_reused,
                placement_reused: outcome.placement_reused,
                sim_iteration_s: sim.total_s(),
                analytical_iteration_s: analytical.iteration_time_s(),
                gap: sim.gap_vs(analytical.iteration_time_s()),
                iterations,
                utilization_trace: sim.utilization_trace().to_vec(),
            });
        }
        Ok(DynamicRunReport {
            phases,
            total_simulated_s,
            total_replan_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_workloads::DynamicWorkload;

    #[test]
    fn run_loop_replans_online_with_warm_cache() {
        let workload = DynamicWorkload::multitask_clip_schedule().unwrap();
        let schedule = ArrivalSchedule::from_workload(&workload, 0.05);
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let report = DynamicRunLoop::new(&mut session).run(&schedule).unwrap();
        assert_eq!(report.phases.len(), 4);
        assert_eq!(report.replans(), 3);
        // Phase 1 is cold; the final phase ("7 tasks" again) re-plans fully
        // warm, so the overall online hit rate is high.
        assert!(!report.phases[0].warm);
        assert!(report.phases[3].warm, "repeat task mix must be cache-warm");
        assert!(report.warm_hit_rate() > 0.5);
        // The final phase repeats phase 2's task mix, so the structural plan
        // cache serves it wholesale: every level spliced, placement reused.
        assert_eq!(
            report.phases[0].levels_reused, 0,
            "cold plan reuses nothing"
        );
        assert_eq!(
            report.phases[3].levels_reused,
            report.phases[3].levels_total
        );
        assert!(report.phases[3].placement_reused);
        assert!(report.structural_reuse_rate() > 0.0);
        // In the oracle-matching default config every phase's gap is tiny.
        assert!(report.worst_gap() < 0.01, "gap {}", report.worst_gap());
        assert!(report.total_simulated_s > 0.0);
        assert!(report.total_replan_ms > 0.0);
        for phase in &report.phases {
            assert!(phase.iterations >= 1);
            assert!(phase.sim_iteration_s > 0.0);
            assert!(!phase.utilization_trace.is_empty());
        }
        let text = report.to_string();
        assert!(text.contains("3 online re-plans"));
    }

    #[test]
    fn seeded_arrival_process_drives_replans() {
        let schedule = ArrivalSchedule::multitask_clip_arrivals(11, 4, 50.0).unwrap();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let report = DynamicRunLoop::new(&mut session)
            .with_sim_config(SimConfig::contended())
            .run(&schedule)
            .unwrap();
        assert_eq!(report.replans(), 3);
        // Overlapped flows can only help, so the gap is never positive beyond
        // rounding.
        for phase in &report.phases {
            assert!(phase.gap <= 1e-9, "phase {} gap {}", phase.label, phase.gap);
        }
    }
}
