//! The dynamic run loop: online re-planning under task arrivals and
//! departures.
//!
//! The paper's Appendix D scenario — tasks join and finish mid-run, the
//! system re-plans at every change — is driven here end to end: an
//! [`ArrivalSchedule`] positions task-mix changes on a simulated timeline,
//! and at each arrival the loop calls back into the long-lived
//! [`SpindleSession`] to re-plan online (served from the warm curve cache for
//! operator signatures seen before), then executes the new plan on the
//! event-driven [`Simulator`]. The report captures, per phase, the re-plan
//! cost and cache warmth, the simulated versus analytically-priced iteration
//! time (the plan-vs-simulated gap), and the utilization trace.

use std::fmt;
use std::sync::Arc;

use spindle_cluster::DeviceId;
use spindle_core::{ExecutionPlan, SpindleSession};
use spindle_graph::ComputationGraph;
use spindle_workloads::{ArrivalSchedule, DeviceChurnEvent, DeviceChurnKind, ScheduleEvent};

use crate::metrics::UtilizationSample;
use crate::migrate::{migration_flows, price_migration};
use crate::recovery::{
    background_checkpoint_flows, price_checkpoint_write, price_restore, CheckpointPolicy,
};
use crate::sim::{FaultSpec, SimConfig, Simulator};
use crate::{RuntimeEngine, RuntimeError};

/// What happened in one phase of a dynamic run.
#[derive(Debug, Clone)]
pub struct PhaseRunReport {
    /// The phase's task-set label.
    pub label: String,
    /// When the phase's task mix arrived, simulated seconds since run start.
    pub arrival_s: f64,
    /// Wall-clock cost of the online re-plan, milliseconds.
    pub replan_ms: f64,
    /// Operator signatures that had to be profiled and fitted anew.
    pub new_curve_fits: usize,
    /// Curve-cache hits served during the re-plan.
    pub cache_hits: usize,
    /// `true` if the re-plan was served entirely from the warm cache.
    pub warm: bool,
    /// MetaLevels of the phase's graph.
    pub levels_total: usize,
    /// MetaLevels spliced from the session's structural plan cache instead
    /// of being re-solved (incremental re-planning).
    pub levels_reused: usize,
    /// `true` if the placed wave list was reused wholesale (the plan
    /// structure recurred), skipping placement entirely.
    pub placement_reused: bool,
    /// Simulated iteration time of the phase's plan, seconds.
    pub sim_iteration_s: f64,
    /// Closed-form iteration time of the same plan, seconds.
    pub analytical_iteration_s: f64,
    /// Relative plan-vs-simulated gap:
    /// `(simulated - analytical) / analytical`.
    pub gap: f64,
    /// Training iterations executed before the next task-mix change.
    pub iterations: u64,
    /// Checkpoints written during the phase at the configured cadence.
    pub checkpoints_written: u64,
    /// Steady-state checkpoint-write charge of the phase, seconds: full
    /// synchronous stalls, or (with
    /// [`CheckpointPolicy::async_overlap`]) only the contention-induced
    /// iteration slowdown measured by the event simulator.
    pub checkpoint_write_s: f64,
    /// Utilization trace of one simulated iteration of this phase.
    pub utilization_trace: Vec<UtilizationSample>,
}

/// What happened at one device-churn event of a dynamic run.
#[derive(Debug, Clone)]
pub struct ChurnRunReport {
    /// Event timestamp, simulated seconds since run start.
    pub at_s: f64,
    /// The schedule's event label.
    pub label: String,
    /// `true` for a removal (device death / preemption), `false` for a
    /// restore.
    pub removed: bool,
    /// The global device ids the event named.
    pub devices: Vec<u32>,
    /// Devices lost relative to the previous plan's topology (removals of
    /// already-dead devices count zero).
    pub devices_lost: usize,
    /// MetaLevels of the re-planned graph.
    pub levels_total: usize,
    /// MetaLevels whose placement had to be redone; the remaining clean
    /// prefix kept its placements and paid zero migration.
    pub levels_replaced: usize,
    /// Wall-clock cost of the topology re-plan, milliseconds.
    pub replan_ms: f64,
    /// Parameter bytes of the actual migration flow set (old plan → new
    /// plan), the same flows [`sim_migration_s`](Self::sim_migration_s)
    /// prices. Unlike the planner's loss-side estimate this also counts a
    /// restore moving parameters back onto returned devices.
    pub migration_bytes: u64,
    /// The planner's serialized α-β migration price, seconds (upper bound).
    pub planner_migration_s: f64,
    /// The migration makespan with all flows concurrent under the
    /// simulator's equal-share link-contention model, seconds.
    pub sim_migration_s: f64,
    /// In-flight compute seconds the device death discarded mid-wave.
    pub wasted_compute_s: f64,
    /// Distinct MetaOps whose every replica died, forcing a checkpoint
    /// restore (counted whether or not a [`CheckpointPolicy`] is active).
    pub rematerialized_metaops: usize,
    /// State bytes that had to come back from the checkpoint tier.
    pub restore_bytes: u64,
    /// Makespan of the restore flows over the contended storage links,
    /// seconds (0 without an active [`CheckpointPolicy`]).
    pub restore_s: f64,
    /// Lost progress re-run after the event, seconds: the discarded
    /// in-flight iteration ([`wasted_compute_s`](Self::wasted_compute_s))
    /// plus — when state was re-materialised — every iteration since the
    /// last checkpoint, re-run at the post-churn iteration time.
    pub replay_s: f64,
    /// Simulated iteration time before the event, seconds (0 when no phase
    /// was active yet).
    pub iteration_before_s: f64,
    /// Simulated iteration time on the re-planned topology, seconds.
    pub iteration_after_s: f64,
}

/// The full report of a dynamic run.
#[derive(Debug, Clone)]
pub struct DynamicRunReport {
    /// Per-phase reports in arrival order.
    pub phases: Vec<PhaseRunReport>,
    /// Per-event reports of the schedule's device churn, in timeline order.
    pub churn: Vec<ChurnRunReport>,
    /// Total simulated training time across all phases, including churn
    /// overhead (wasted in-flight compute and migration makespans), seconds.
    pub total_simulated_s: f64,
    /// Total online re-planning time, milliseconds.
    pub total_replan_ms: f64,
}

impl DynamicRunReport {
    /// Number of online re-plans performed (every phase after the first).
    #[must_use]
    pub fn replans(&self) -> usize {
        self.phases.len().saturating_sub(1)
    }

    /// Curve-cache hit rate over the online re-plans (phases after the
    /// first, whose plans are produced mid-run). 1.0 means every operator
    /// signature was served from the warm cache.
    #[must_use]
    pub fn warm_hit_rate(&self) -> f64 {
        let (hits, fits) = self
            .phases
            .iter()
            .skip(1)
            .fold((0usize, 0usize), |(h, f), p| {
                (h + p.cache_hits, f + p.new_curve_fits)
            });
        if hits + fits == 0 {
            return 1.0;
        }
        hits as f64 / (hits + fits) as f64
    }

    /// Largest absolute plan-vs-simulated gap over all phases.
    #[must_use]
    pub fn worst_gap(&self) -> f64 {
        self.phases.iter().map(|p| p.gap.abs()).fold(0.0, f64::max)
    }

    /// Total contention-priced migration makespans over all churn events,
    /// seconds.
    #[must_use]
    pub fn migration_s(&self) -> f64 {
        self.churn.iter().map(|c| c.sim_migration_s).sum()
    }

    /// Total checkpoint-restore makespans over all churn events, seconds.
    #[must_use]
    pub fn restore_s(&self) -> f64 {
        self.churn.iter().map(|c| c.restore_s).sum()
    }

    /// Total lost-progress replay over all churn events, seconds (includes
    /// the discarded in-flight compute).
    #[must_use]
    pub fn replay_s(&self) -> f64 {
        self.churn.iter().map(|c| c.replay_s).sum()
    }

    /// Total steady-state checkpoint-write charge over all phases, seconds.
    #[must_use]
    pub fn checkpoint_write_s(&self) -> f64 {
        self.phases.iter().map(|p| p.checkpoint_write_s).sum()
    }

    /// Total simulated seconds lost to device churn and recovery:
    /// contention-priced migration makespans, checkpoint restores,
    /// lost-progress replay (which includes discarded in-flight compute)
    /// and steady-state checkpoint writes —
    /// [`migration_s`](Self::migration_s) + [`restore_s`](Self::restore_s) +
    /// [`replay_s`](Self::replay_s) +
    /// [`checkpoint_write_s`](Self::checkpoint_write_s).
    #[must_use]
    pub fn churn_overhead_s(&self) -> f64 {
        self.migration_s() + self.restore_s() + self.replay_s() + self.checkpoint_write_s()
    }

    /// Fraction of MetaLevels spliced from the structural plan cache over
    /// the online re-plans (phases after the first). 1.0 means every re-plan
    /// was fully incremental.
    #[must_use]
    pub fn structural_reuse_rate(&self) -> f64 {
        let (reused, total) = self
            .phases
            .iter()
            .skip(1)
            .fold((0usize, 0usize), |(r, t), p| {
                (r + p.levels_reused, t + p.levels_total)
            });
        if total == 0 {
            return 1.0;
        }
        reused as f64 / total as f64
    }
}

impl fmt::Display for DynamicRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} phases, {} online re-plans ({:.1} ms total, {:.0}% warm-cache hit rate, \
             {:.0}% structural level reuse), {:.1} x10^3 s simulated, \
             worst plan-vs-sim gap {:+.1}%",
            self.phases.len(),
            self.replans(),
            self.total_replan_ms,
            self.warm_hit_rate() * 100.0,
            self.structural_reuse_rate() * 100.0,
            self.total_simulated_s / 1e3,
            self.worst_gap() * 100.0
        )?;
        if !self.churn.is_empty() {
            write!(
                f,
                ", {} topology changes ({:.3} s churn overhead)",
                self.churn.len(),
                self.churn_overhead_s()
            )?;
        }
        if self.checkpoint_write_s() > 0.0 {
            write!(f, ", {:.3} s checkpoint writes", self.checkpoint_write_s())?;
        }
        Ok(())
    }
}

/// Drives a dynamic workload through online re-planning and event-driven
/// simulation.
///
/// The loop borrows a long-lived [`SpindleSession`] so its curve cache
/// persists across the run (and across runs, if the caller keeps the session).
#[derive(Debug)]
pub struct DynamicRunLoop<'s> {
    session: &'s mut SpindleSession,
    sim_config: SimConfig,
    checkpoint_policy: CheckpointPolicy,
}

impl<'s> DynamicRunLoop<'s> {
    /// Creates a run loop over `session` with the default simulator
    /// configuration (serialized, contention-free — the oracle-matching
    /// setup) and checkpoint modeling off.
    pub fn new(session: &'s mut SpindleSession) -> Self {
        Self {
            session,
            sim_config: SimConfig::default(),
            checkpoint_policy: CheckpointPolicy::default(),
        }
    }

    /// Overrides the simulator configuration used for every phase.
    #[must_use]
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.sim_config = config;
        self
    }

    /// Enables checkpoint modeling: steady-state write charges at the
    /// policy's cadence, priced restores of all-replicas-dead MetaOps, and
    /// lost-progress replay back to the last checkpoint.
    #[must_use]
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint_policy = policy;
        self
    }

    /// Executes the schedule's merged timeline. At every task arrival the
    /// session re-plans the new task mix, the new plan is simulated, and the
    /// phase trains until the next arrival (at least one iteration per
    /// phase). At every device-churn event the topology changes mid-run: a
    /// removal kills the in-flight iteration at the event instant (wasted
    /// compute is charged), the session re-plans the active task mix onto
    /// the survivors — reusing the placements of every level untouched by
    /// the loss — and the parameter migration implied by the placement diff
    /// is priced through the simulator's link-contention model. The loop
    /// never dies with the devices: it degrades and carries on.
    ///
    /// # Errors
    ///
    /// Propagates planning failures as [`RuntimeError::InvalidPlan`] and
    /// simulation failures unchanged.
    pub fn run(&mut self, schedule: &ArrivalSchedule) -> Result<DynamicRunReport, RuntimeError> {
        let mut phases = Vec::with_capacity(schedule.arrivals().len());
        let mut churn = Vec::with_capacity(schedule.num_topology_changes());
        let mut total_simulated_s = 0.0;
        let mut total_replan_ms = 0.0;
        // The active phase: its graph, its current plan, the plan's simulated
        // iteration time and the instant the plan took effect.
        let mut active: Option<(&ComputationGraph, Arc<ExecutionPlan>, f64, f64)> = None;
        let mut phase_idx = 0;
        for event in schedule.timeline() {
            match event {
                ScheduleEvent::Phase(arrival) => {
                    // Online re-plan at the arrival, against the warm session
                    // cache.
                    let outcome = self.session.replan(&arrival.graph)?;
                    let replan_ms = outcome.plan.planning_time().as_secs_f64() * 1e3;
                    total_replan_ms += replan_ms;
                    let plan = Arc::new(outcome.plan);
                    let cluster = self.session.cluster_handle();

                    // Price the plan both ways: closed form and event-driven.
                    let analytical = RuntimeEngine::new(Arc::clone(&plan), &cluster)
                        .with_graph(&arrival.graph)
                        .with_config(self.sim_config.engine)
                        .run_iteration()?;
                    let sim = Simulator::new(Arc::clone(&plan), &cluster)
                        .with_graph(&arrival.graph)
                        .with_config(self.sim_config.clone())
                        .run_iteration()?;

                    let window_s = schedule.phase_window_s(phase_idx);
                    let iterations = if sim.total_s() > 0.0 {
                        ((window_s / sim.total_s()).floor() as u64).max(1)
                    } else {
                        1
                    };
                    total_simulated_s += iterations as f64 * sim.total_s();

                    // Steady-state checkpoint writes at the configured
                    // cadence: synchronous stalls priced over the storage
                    // tier, or (async_overlap) the contention-induced
                    // iteration slowdown with the write's background flows
                    // injected into the event simulator.
                    let checkpoints_written = self.checkpoint_policy.checkpoints_in(iterations);
                    let checkpoint_write_s = if checkpoints_written == 0 {
                        0.0
                    } else if self.checkpoint_policy.async_overlap {
                        let mut bg_config = self.sim_config.clone();
                        bg_config.background_flows =
                            background_checkpoint_flows(&cluster, &plan, &self.checkpoint_policy);
                        let loaded = Simulator::new(Arc::clone(&plan), &cluster)
                            .with_graph(&arrival.graph)
                            .with_config(bg_config)
                            .run_iteration()?;
                        checkpoints_written as f64 * (loaded.total_s() - sim.total_s()).max(0.0)
                    } else {
                        checkpoints_written as f64
                            * price_checkpoint_write(
                                &cluster,
                                &plan,
                                &self.checkpoint_policy,
                                self.sim_config.contention,
                            )
                    };
                    total_simulated_s += checkpoint_write_s;

                    phases.push(PhaseRunReport {
                        label: arrival.label.clone(),
                        arrival_s: arrival.at_s,
                        replan_ms,
                        new_curve_fits: outcome.new_curve_fits,
                        cache_hits: outcome.cache_hits,
                        warm: outcome.warm,
                        levels_total: outcome.levels_total,
                        levels_reused: outcome.levels_reused,
                        placement_reused: outcome.placement_reused,
                        sim_iteration_s: sim.total_s(),
                        analytical_iteration_s: analytical.iteration_time_s(),
                        gap: sim.gap_vs(analytical.iteration_time_s()),
                        iterations,
                        checkpoints_written,
                        checkpoint_write_s,
                        utilization_trace: sim.utilization_trace().to_vec(),
                    });
                    active = Some((&arrival.graph, plan, sim.total_s(), arrival.at_s));
                    phase_idx += 1;
                }
                ScheduleEvent::Churn(event) => {
                    let report = self.on_churn(event, &mut active)?;
                    total_replan_ms += report.replan_ms;
                    total_simulated_s +=
                        report.replay_s + report.sim_migration_s + report.restore_s;
                    churn.push(report);
                }
            }
        }
        Ok(DynamicRunReport {
            phases,
            churn,
            total_simulated_s,
            total_replan_ms,
        })
    }

    /// Applies one device-churn event to the session mid-run and re-plans
    /// the active task mix on the changed topology.
    fn on_churn(
        &mut self,
        event: &DeviceChurnEvent,
        active: &mut Option<(&ComputationGraph, Arc<ExecutionPlan>, f64, f64)>,
    ) -> Result<ChurnRunReport, RuntimeError> {
        let device_ids: Vec<DeviceId> = event.devices.iter().map(|&d| DeviceId(d)).collect();
        let removed = event.kind == DeviceChurnKind::Remove;

        // A removal strikes the iteration in flight: fault-inject the death
        // into the current plan's simulation at the event's offset within
        // the iteration and charge the discarded compute.
        let mut wasted_compute_s = 0.0;
        if removed {
            if let Some((graph, plan, iter_s, since_s)) = active.as_ref() {
                if *iter_s > 0.0 {
                    let offset = (event.at_s - since_s).rem_euclid(*iter_s);
                    let cluster = self.session.cluster_handle();
                    let (_, fault) = Simulator::new(Arc::clone(plan), &cluster)
                        .with_graph(*graph)
                        .with_config(self.sim_config.clone())
                        .run_iteration_with_fault(&FaultSpec {
                            at_s: offset,
                            devices: device_ids.clone(),
                        })?;
                    wasted_compute_s = fault.wasted_compute_s;
                }
            }
            self.session.remove_devices(&device_ids)?;
        } else {
            self.session.restore_devices(&device_ids);
        }

        let Some((graph, old_plan, iter_before_s, since_s)) = active.take() else {
            // Topology changed before any task arrived: nothing to re-plan.
            return Ok(ChurnRunReport {
                at_s: event.at_s,
                label: event.label.clone(),
                removed,
                devices: event.devices.clone(),
                devices_lost: 0,
                levels_total: 0,
                levels_replaced: 0,
                replan_ms: 0.0,
                migration_bytes: 0,
                planner_migration_s: 0.0,
                sim_migration_s: 0.0,
                wasted_compute_s,
                rematerialized_metaops: 0,
                restore_bytes: 0,
                restore_s: 0.0,
                replay_s: wasted_compute_s,
                iteration_before_s: 0.0,
                iteration_after_s: 0.0,
            });
        };

        // Re-plan the active task mix on the survivors; levels untouched by
        // the loss keep their placements (partial placement reuse).
        let outcome = self.session.replan(graph)?;
        let replan_ms = outcome.plan.planning_time().as_secs_f64() * 1e3;
        let devices_lost = outcome.devices_lost;
        let levels_total = outcome.levels_total;
        let levels_replaced = outcome.levels_replaced;
        let planner_migration_s = outcome.migration_cost;
        let new_plan = Arc::new(outcome.plan);
        let cluster = self.session.cluster_handle();

        // Price the actual migration flow set through the contention model.
        // The flows — not the planner's loss-side estimate — are the bytes
        // reported: a restore moves parameters back onto returned devices
        // even though the planner charges no loss migration for it. MetaOps
        // whose every replica died cannot be moved at all: their state comes
        // back from the checkpoint tier over the storage links.
        let migration = migration_flows(&old_plan, &new_plan, &cluster);
        let moved_bytes = migration.migration_bytes();
        let sim_migration_s =
            price_migration(&cluster, &migration.flows, self.sim_config.contention);
        let rematerialized_metaops = migration.rematerialized_metaops();
        let restore_bytes = migration.restore_bytes();
        let policy = &self.checkpoint_policy;
        let restore_s = if policy.enabled() && !migration.restores.is_empty() {
            price_restore(
                &cluster,
                &migration.restores,
                policy,
                self.sim_config.contention,
            )
        } else {
            0.0
        };

        let sim = Simulator::new(Arc::clone(&new_plan), &cluster)
            .with_graph(graph)
            .with_config(self.sim_config.clone())
            .run_iteration()?;
        let iteration_after_s = sim.total_s();

        // Lost progress: the aborted in-flight iteration is always re-run;
        // when state was re-materialised it is only as fresh as the last
        // checkpoint, so every iteration past the last cadence boundary is
        // re-run too, at the post-churn iteration time.
        let mut replay_s = wasted_compute_s;
        if policy.enabled() && !migration.restores.is_empty() && iter_before_s > 0.0 {
            let iters_done = ((event.at_s - since_s).max(0.0) / iter_before_s).floor() as u64;
            replay_s += policy.replay_iterations(iters_done) as f64 * iteration_after_s;
        }
        *active = Some((graph, new_plan, iteration_after_s, event.at_s));

        Ok(ChurnRunReport {
            at_s: event.at_s,
            label: event.label.clone(),
            removed,
            devices: event.devices.clone(),
            devices_lost,
            levels_total,
            levels_replaced,
            replan_ms,
            migration_bytes: moved_bytes,
            planner_migration_s,
            sim_migration_s,
            wasted_compute_s,
            rematerialized_metaops,
            restore_bytes,
            restore_s,
            replay_s,
            iteration_before_s: iter_before_s,
            iteration_after_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_workloads::DynamicWorkload;

    #[test]
    fn run_loop_replans_online_with_warm_cache() {
        let workload = DynamicWorkload::multitask_clip_schedule().unwrap();
        let schedule = ArrivalSchedule::from_workload(&workload, 0.05);
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let report = DynamicRunLoop::new(&mut session).run(&schedule).unwrap();
        assert_eq!(report.phases.len(), 4);
        assert_eq!(report.replans(), 3);
        // Phase 1 is cold; the final phase ("7 tasks" again) re-plans fully
        // warm, so the overall online hit rate is high.
        assert!(!report.phases[0].warm);
        assert!(report.phases[3].warm, "repeat task mix must be cache-warm");
        assert!(report.warm_hit_rate() > 0.5);
        // The final phase repeats phase 2's task mix, so the structural plan
        // cache serves it wholesale: every level spliced, placement reused.
        assert_eq!(
            report.phases[0].levels_reused, 0,
            "cold plan reuses nothing"
        );
        assert_eq!(
            report.phases[3].levels_reused,
            report.phases[3].levels_total
        );
        assert!(report.phases[3].placement_reused);
        assert!(report.structural_reuse_rate() > 0.0);
        // In the oracle-matching default config every phase's gap is tiny.
        assert!(report.worst_gap() < 0.01, "gap {}", report.worst_gap());
        assert!(report.total_simulated_s > 0.0);
        assert!(report.total_replan_ms > 0.0);
        for phase in &report.phases {
            assert!(phase.iterations >= 1);
            assert!(phase.sim_iteration_s > 0.0);
            assert!(!phase.utilization_trace.is_empty());
        }
        let text = report.to_string();
        assert!(text.contains("3 online re-plans"));
    }

    #[test]
    fn device_churn_degrades_gracefully_and_recovers() {
        let schedule = ArrivalSchedule::multitask_clip_arrivals(5, 3, 60.0)
            .unwrap()
            .with_seeded_device_churn(17, 16, 10);
        assert!(schedule.num_topology_changes() > 0, "seed must draw churn");
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let report = DynamicRunLoop::new(&mut session)
            .with_sim_config(SimConfig::contended())
            .run(&schedule)
            .unwrap();
        assert_eq!(report.phases.len(), schedule.arrivals().len());
        assert_eq!(report.churn.len(), schedule.num_topology_changes());
        for c in &report.churn {
            // Every event re-plans onto a live topology: the loop survives.
            assert!(c.iteration_after_s > 0.0 || c.levels_total == 0);
            if c.removed && c.devices_lost > 0 {
                // Losing a small slice of capacity changes the iteration
                // time boundedly (it can even speed up: shallower
                // parallelism means less sync overhead). What must hold is
                // that the run continues at a sane pace, not a cliff.
                assert!(
                    c.iteration_after_s <= c.iteration_before_s * 4.0
                        && c.iteration_after_s >= c.iteration_before_s * 0.25,
                    "lost {} devices, iteration jumped {} -> {}",
                    c.devices_lost,
                    c.iteration_before_s,
                    c.iteration_after_s
                );
                // Migration is priced, and the contended price can beat the
                // planner's serialized α-β bound only through overlap — it
                // never exceeds serial by more than rounding.
                if c.migration_bytes > 0 {
                    assert!(c.planner_migration_s > 0.0);
                }
            }
        }
        assert!(report.total_simulated_s > 0.0);
        let text = report.to_string();
        assert!(text.contains("topology changes"), "display: {text}");
    }

    #[test]
    fn removal_before_any_arrival_is_survived() {
        use spindle_workloads::{DeviceChurnEvent, DeviceChurnKind};
        let base = ArrivalSchedule::multitask_clip_arrivals(3, 3, 40.0).unwrap();
        // The seeded arrival process starts its first phase at t=0, so place
        // a removal at the earliest representable instant after it and a
        // restore later; then move the first arrival's events around them.
        let churn = vec![
            DeviceChurnEvent {
                at_s: 0.0,
                kind: DeviceChurnKind::Remove,
                devices: vec![14, 15],
                label: "early loss".into(),
            },
            DeviceChurnEvent {
                at_s: base.horizon_s() * 0.5,
                kind: DeviceChurnKind::Restore,
                devices: vec![14, 15],
                label: "capacity back".into(),
            },
        ];
        let schedule = base.with_device_churn(churn);
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let report = DynamicRunLoop::new(&mut session).run(&schedule).unwrap();
        assert_eq!(report.churn.len(), 2);
        // The removal lands at t=0 after the first arrival (arrivals sort
        // first on ties), so a plan is already active and gets re-planned
        // down to 14 devices.
        assert!(report.churn[0].removed);
        assert_eq!(report.churn[0].devices_lost, 2);
        assert!(report.churn[0].levels_replaced > 0);
        // The restore re-plans back up: nothing is "lost".
        assert!(!report.churn[1].removed);
        assert_eq!(report.churn[1].devices_lost, 0);
        assert!(report.churn[1].iteration_after_s > 0.0);
        // The restore re-planned on the full device set again: the next
        // removal of the same devices would be a real loss.
        assert_eq!(session.removed_devices().len(), 0);
    }

    #[test]
    fn recovery_components_are_exactly_zero_without_policy_or_faults() {
        let workload = DynamicWorkload::multitask_clip_schedule().unwrap();
        let schedule = ArrivalSchedule::from_workload(&workload, 0.05);
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let report = DynamicRunLoop::new(&mut session).run(&schedule).unwrap();
        assert_eq!(report.migration_s(), 0.0);
        assert_eq!(report.restore_s(), 0.0);
        assert_eq!(report.replay_s(), 0.0);
        assert_eq!(report.checkpoint_write_s(), 0.0);
        assert_eq!(report.churn_overhead_s(), 0.0);
        for phase in &report.phases {
            assert_eq!(phase.checkpoints_written, 0);
            assert_eq!(phase.checkpoint_write_s, 0.0);
        }
    }

    #[test]
    fn full_node_loss_restores_from_checkpoints_and_replays() {
        use crate::recovery::CheckpointPolicy;
        use spindle_workloads::{DeviceChurnEvent, DeviceChurnKind};
        let base = ArrivalSchedule::multitask_clip_arrivals(3, 1, 40.0).unwrap();
        // Learn the lone phase's iteration time so the kill can land 10.5
        // iterations in: 10 done, 10 % cadence(3) = 1 iteration to replay.
        let mut probe_session = SpindleSession::new(ClusterSpec::homogeneous(2, 4));
        let probe = DynamicRunLoop::new(&mut probe_session)
            .with_sim_config(SimConfig::contended())
            .run(&base)
            .unwrap();
        let iter_s = probe.phases[0].sim_iteration_s;
        // Kill an entire node mid-run: MetaOps placed only there lose every
        // replica and must be re-materialised from the checkpoint tier.
        let churn = vec![DeviceChurnEvent {
            at_s: iter_s * 10.5,
            kind: DeviceChurnKind::Remove,
            devices: (4..8).collect(),
            label: "node down".into(),
        }];
        let schedule = base.with_device_churn(churn);

        // Baseline: same trace without checkpoint modeling — the pre-policy
        // accounting (wasted compute + migration only).
        let mut bare_session = SpindleSession::new(ClusterSpec::homogeneous(2, 4));
        let bare = DynamicRunLoop::new(&mut bare_session)
            .with_sim_config(SimConfig::contended())
            .run(&schedule)
            .unwrap();
        assert_eq!(bare.restore_s(), 0.0, "no policy prices no restores");
        assert_eq!(bare.checkpoint_write_s(), 0.0);

        let mut session = SpindleSession::new(ClusterSpec::homogeneous(2, 4));
        let report = DynamicRunLoop::new(&mut session)
            .with_sim_config(SimConfig::contended())
            .with_checkpoint_policy(CheckpointPolicy::every(3))
            .run(&schedule)
            .unwrap();
        let c = &report.churn[0];
        // The dead node hosted some MetaOp exclusively: restore accounting
        // fires whether or not a policy is active...
        assert!(c.rematerialized_metaops > 0, "scenario must kill a MetaOp");
        assert!(c.restore_bytes > 0);
        assert_eq!(
            c.rematerialized_metaops,
            bare.churn[0].rematerialized_metaops
        );
        assert_eq!(c.restore_bytes, bare.churn[0].restore_bytes);
        // ...but only the policy prices it and replays lost progress: one
        // iteration past the last cadence boundary, at the post-churn pace.
        assert!(c.restore_s > 0.0);
        assert!(
            (c.replay_s - (c.wasted_compute_s + c.iteration_after_s)).abs() < 1e-9,
            "10 iterations done, cadence 3: exactly one to replay"
        );
        assert!(c.replay_s >= c.wasted_compute_s);
        assert!(report.replay_s() > 0.0);
        // Steady-state writes are charged at the cadence.
        assert!(report.checkpoint_write_s() > 0.0);
        for phase in &report.phases {
            assert_eq!(
                phase.checkpoints_written,
                phase.iterations / 3,
                "cadence accounting"
            );
        }
        // The recovery-aware total strictly exceeds the pre-policy figure.
        assert!(report.churn_overhead_s() > bare.churn_overhead_s());
        // And the pre-policy figure still equals the historical formula.
        let historical: f64 = bare
            .churn
            .iter()
            .map(|c| c.wasted_compute_s + c.sim_migration_s)
            .sum();
        assert!((bare.churn_overhead_s() - historical).abs() < 1e-12);
    }

    #[test]
    fn async_overlap_charges_at_most_the_synchronous_stall() {
        use crate::recovery::CheckpointPolicy;
        let schedule = ArrivalSchedule::multitask_clip_arrivals(7, 3, 60.0).unwrap();
        let sync_policy = CheckpointPolicy::every(2);
        let mut s1 = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let sync = DynamicRunLoop::new(&mut s1)
            .with_sim_config(SimConfig::contended())
            .with_checkpoint_policy(sync_policy)
            .run(&schedule)
            .unwrap();
        let mut s2 = SpindleSession::new(ClusterSpec::homogeneous(2, 8));
        let overlapped = DynamicRunLoop::new(&mut s2)
            .with_sim_config(SimConfig::contended())
            .with_checkpoint_policy(CheckpointPolicy {
                async_overlap: true,
                ..sync_policy
            })
            .run(&schedule)
            .unwrap();
        assert!(sync.checkpoint_write_s() > 0.0);
        // Overlapping the write hides everything except the contention it
        // induces on the training traffic.
        assert!(
            overlapped.checkpoint_write_s() <= sync.checkpoint_write_s() + 1e-9,
            "async {} vs sync {}",
            overlapped.checkpoint_write_s(),
            sync.checkpoint_write_s()
        );
    }

    #[test]
    fn seeded_arrival_process_drives_replans() {
        let schedule = ArrivalSchedule::multitask_clip_arrivals(11, 4, 50.0).unwrap();
        let mut session = SpindleSession::new(ClusterSpec::homogeneous(1, 8));
        let report = DynamicRunLoop::new(&mut session)
            .with_sim_config(SimConfig::contended())
            .run(&schedule)
            .unwrap();
        assert_eq!(report.replans(), 3);
        // Overlapped flows can only help, so the gap is never positive beyond
        // rounding.
        for phase in &report.phases {
            assert!(phase.gap <= 1e-9, "phase {} gap {}", phase.label, phase.gap);
        }
    }
}
