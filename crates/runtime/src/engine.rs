//! The wave-by-wave runtime engine (§3.6).

use std::collections::BTreeMap;
use std::sync::Arc;

use spindle_cluster::{ClusterSpec, CommModel, DeviceId};
use spindle_core::{ExecutionPlan, MetaOpId};
use spindle_graph::ComputationGraph;

use crate::localize::LocalizedPlan;
use crate::metrics::{
    sample_utilization_trace, ComputeInterval, IterationReport, TimeBreakdown, UtilizationSample,
};
use crate::RuntimeError;

/// Tunable knobs of the runtime engine (shared with the event-driven
/// simulator, which reuses the same trace resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of samples in the utilization-over-time trace.
    pub trace_samples: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { trace_samples: 200 }
    }
}

/// Conversion into a shared [`Arc`] handle — what the engine's constructors
/// accept in place of the lifetime-bound borrows of the old API.
///
/// Owned values and existing `Arc`s move in without copying; plain references
/// clone, so every historical `RuntimeEngine::new(&plan, &cluster)` call site
/// keeps working.
pub trait IntoShared<T> {
    /// Converts `self` into an `Arc<T>`.
    fn into_shared(self) -> Arc<T>;
}

impl<T> IntoShared<T> for T {
    fn into_shared(self) -> Arc<T> {
        Arc::new(self)
    }
}

impl<T> IntoShared<T> for Arc<T> {
    fn into_shared(self) -> Arc<T> {
        self
    }
}

impl<T: Clone> IntoShared<T> for &T {
    fn into_shared(self) -> Arc<T> {
        Arc::new(self.clone())
    }
}

impl<T> IntoShared<T> for &Arc<T> {
    fn into_shared(self) -> Arc<T> {
        Arc::clone(self)
    }
}

/// Executes a placed [`ExecutionPlan`] on a simulated cluster and reports the
/// measurements of one training iteration.
///
/// The engine *owns* its plan and graph via [`Arc`] handles, so it can outlive
/// the planning session that produced them (and be handed across threads or
/// stored alongside other engines) without lifetime threading.
///
/// The engine follows the four steps of §3.6: (1) localisation — each entry's
/// MetaOp slice is bound to its device group; (2) intra-task data dependencies
/// — transmission operators are derived for every inter-wave data flow; (3)
/// inter-task model dependencies — the parameter device-group pool is built;
/// (4) the training step — forward/backward run wave by wave and group-wise
/// parameter synchronisation concludes the iteration.
#[derive(Debug)]
pub struct RuntimeEngine {
    plan: Arc<ExecutionPlan>,
    cluster: ClusterSpec,
    comm: CommModel,
    graph: Option<Arc<ComputationGraph>>,
    config: EngineConfig,
}

impl RuntimeEngine {
    /// Creates an engine for `plan` on `cluster`. Accepts the plan by value,
    /// by `Arc`, or by reference (cloning).
    #[must_use]
    pub fn new(plan: impl IntoShared<ExecutionPlan>, cluster: &ClusterSpec) -> Self {
        Self {
            plan: plan.into_shared(),
            cluster: cluster.clone(),
            comm: CommModel::new(cluster),
            graph: None,
            config: EngineConfig::default(),
        }
    }

    /// Attaches the original computation graph, enabling exact parameter
    /// device groups (cross-task parameter sharing) instead of the per-MetaOp
    /// approximation.
    #[must_use]
    pub fn with_graph(mut self, graph: impl IntoShared<ComputationGraph>) -> Self {
        self.graph = Some(graph.into_shared());
        self
    }

    /// Overrides the engine configuration (e.g. the utilization-trace
    /// resolution).
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// A shareable handle to the plan being executed.
    #[must_use]
    pub fn plan_handle(&self) -> Arc<ExecutionPlan> {
        Arc::clone(&self.plan)
    }

    /// Simulates one training iteration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidPlan`] if the plan fails validation or
    /// lacks placement, and [`RuntimeError::ClusterMismatch`] if the plan was
    /// built for more devices than the cluster has.
    pub fn run_iteration(&self) -> Result<IterationReport, RuntimeError> {
        // Steps 1-3: localisation, transmission derivation and the parameter
        // device-group pool — shared with the event-driven simulator so both
        // backends price identical physical work.
        let localized =
            LocalizedPlan::new(Arc::clone(&self.plan), &self.cluster, self.graph.as_deref())?;

        // Step 4a: wave-by-wave forward and backward — already laid out on the
        // plan's timeline (entry times include forward + backward).
        let fwd_bwd_s = self.plan.makespan();

        // Step 2: inter-wave transmissions (forward activations + backward
        // gradients).
        let send_recv_s = localized.total_transmission_time(&self.comm);

        // Step 3 + 4b: parameter device groups and group-wise synchronisation.
        let sync_s = localized.sync_time(&self.comm);

        let breakdown = TimeBreakdown {
            fwd_bwd_s,
            sync_s,
            send_recv_s,
        };

        Ok(IterationReport {
            utilization_trace: self.utilization_trace(breakdown.total_s()),
            device_utilization: self.device_utilization(breakdown.total_s()),
            metaop_utilization: self.metaop_utilization(),
            device_memory: self.device_memory(),
            total_flops: self.total_flops(),
            num_devices: self.cluster.num_devices() as u32,
            peak_flops_per_device: self.cluster.gpu().peak_flops(),
            breakdown,
        })
    }

    /// Total FLOPs executed per iteration (forward + backward over every
    /// scheduled operator).
    fn total_flops(&self) -> f64 {
        self.plan
            .waves()
            .iter()
            .flat_map(|w| w.entries.iter())
            .map(|e| {
                let rep = self.plan.metagraph().metaop(e.metaop).representative();
                rep.flops_total() * f64::from(e.layers)
            })
            .sum()
    }

    /// Cluster throughput sampled over the compute portion of the iteration.
    fn utilization_trace(&self, total_s: f64) -> Vec<UtilizationSample> {
        let makespan = self.plan.makespan().max(1e-12);
        let horizon = total_s.max(makespan);
        // Each entry is busy from its wave's start for exec_time.
        let intervals: Vec<ComputeInterval> = self
            .plan
            .waves()
            .iter()
            .flat_map(|wave| {
                wave.entries.iter().map(|entry| {
                    let rep = self.plan.metagraph().metaop(entry.metaop).representative();
                    let flops = rep.flops_total() * f64::from(entry.layers);
                    ComputeInterval {
                        start_s: wave.start,
                        end_s: wave.start + entry.exec_time,
                        flops_per_s: flops / entry.exec_time.max(1e-12),
                    }
                })
            })
            .collect();
        sample_utilization_trace(&intervals, horizon, self.config.trace_samples)
    }

    /// Average per-device utilization relative to peak compute.
    fn device_utilization(&self, total_s: f64) -> BTreeMap<DeviceId, f64> {
        let peak = self.cluster.gpu().peak_flops();
        let horizon = total_s.max(self.plan.makespan()).max(1e-12);
        let mut per_device: BTreeMap<DeviceId, f64> = self
            .cluster
            .all_devices()
            .iter()
            .map(|d| (d, 0.0))
            .collect();
        for wave in self.plan.waves() {
            for entry in &wave.entries {
                let Some(group) = &entry.placement else {
                    continue;
                };
                let rep = self.plan.metagraph().metaop(entry.metaop).representative();
                let flops_per_device =
                    rep.flops_total() * f64::from(entry.layers) / group.len() as f64;
                for d in group.iter() {
                    *per_device.entry(d).or_insert(0.0) += flops_per_device;
                }
            }
        }
        per_device
            .into_iter()
            .map(|(d, flops)| (d, flops / (peak * horizon)))
            .collect()
    }

    /// Computational utilization of each MetaOp: achieved FLOP/s on its
    /// allocated devices divided by their aggregate peak.
    fn metaop_utilization(&self) -> BTreeMap<MetaOpId, f64> {
        let peak = self.cluster.gpu().peak_flops();
        let mut flops: BTreeMap<MetaOpId, f64> = BTreeMap::new();
        let mut device_time: BTreeMap<MetaOpId, f64> = BTreeMap::new();
        for wave in self.plan.waves() {
            for entry in &wave.entries {
                let rep = self.plan.metagraph().metaop(entry.metaop).representative();
                *flops.entry(entry.metaop).or_insert(0.0) +=
                    rep.flops_total() * f64::from(entry.layers);
                *device_time.entry(entry.metaop).or_insert(0.0) +=
                    entry.exec_time * f64::from(entry.devices);
            }
        }
        flops
            .into_iter()
            .map(|(m, f)| {
                let dt = device_time.get(&m).copied().unwrap_or(0.0).max(1e-12);
                (m, f / (peak * dt))
            })
            .collect()
    }

    /// Peak per-device memory: parameters and optimizer state stay resident, so
    /// each device accumulates the footprint of every slice placed on it.
    fn device_memory(&self) -> BTreeMap<DeviceId, u64> {
        let mut memory: BTreeMap<DeviceId, u64> = self
            .cluster
            .all_devices()
            .iter()
            .map(|d| (d, 0u64))
            .collect();
        for wave in self.plan.waves() {
            for entry in &wave.entries {
                let Some(group) = &entry.placement else {
                    continue;
                };
                for d in group.iter() {
                    *memory.entry(d).or_insert(0) =
                        memory[&d].saturating_add(entry.memory_per_device);
                }
            }
        }
        memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_core::{PlacementStrategy, PlannerConfig, SpindleSession};
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn two_task_graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        for (name, m, seq, batch, layers) in [
            ("audio-text", Modality::Audio, 229u32, 128u32, 12usize),
            ("vision-text", Modality::Vision, 257, 64, 24),
        ] {
            let t = b.add_task(name, [m, Modality::Text], batch);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(m),
                    TensorShape::new(batch, seq, 768),
                    layers,
                )
                .unwrap();
            let text = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Text),
                    TensorShape::new(batch, 77, 768),
                    12,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.add_flow(*text.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    fn plan_and_run(
        nodes: usize,
        gpus: usize,
    ) -> (ExecutionPlan, IterationReport, ComputationGraph) {
        let graph = two_task_graph();
        let cluster = ClusterSpec::homogeneous(nodes, gpus);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        (plan, report, graph)
    }

    #[test]
    fn iteration_time_dominated_by_compute() {
        let (_, report, _) = plan_and_run(1, 8);
        let b = report.breakdown();
        assert!(b.fwd_bwd_s > 0.0);
        // §5.4: forward/backward dominates (80-95%), send/recv stays small.
        assert!(
            b.fwd_bwd_s / b.total_s() > 0.6,
            "fwd+bwd fraction too small: {b:?}"
        );
        assert!(b.send_recv_fraction() < 0.2, "send/recv too large: {b:?}");
    }

    #[test]
    fn more_devices_reduce_iteration_time() {
        let (_, small, _) = plan_and_run(1, 8);
        let (_, large, _) = plan_and_run(2, 8);
        assert!(large.iteration_time_ms() < small.iteration_time_ms());
    }

    #[test]
    fn utilization_trace_covers_iteration_and_is_positive_somewhere() {
        let (_, report, _) = plan_and_run(1, 8);
        let trace = report.utilization_trace();
        assert_eq!(trace.len(), 200);
        assert!(trace.iter().any(|s| s.tflops_per_s > 0.0));
        assert!(trace.windows(2).all(|w| w[0].time_s < w[1].time_s));
    }

    #[test]
    fn trace_resolution_is_configurable() {
        let graph = two_task_graph();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let report = RuntimeEngine::new(&plan, &cluster)
            .with_config(EngineConfig { trace_samples: 17 })
            .run_iteration()
            .unwrap();
        assert_eq!(report.utilization_trace().len(), 17);
        assert!(report
            .utilization_trace()
            .iter()
            .any(|s| s.tflops_per_s > 0.0));
    }

    #[test]
    fn per_device_metrics_cover_all_devices() {
        let (plan, report, _) = plan_and_run(2, 8);
        assert_eq!(report.device_utilization().len(), 16);
        assert_eq!(report.device_memory().len(), 16);
        assert!(report
            .device_utilization()
            .values()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert!(report.metaop_utilization().len() >= plan.metagraph().num_metaops() / 2);
        assert!(report
            .metaop_utilization()
            .values()
            .all(|&u| u > 0.0 && u <= 1.0));
    }

    #[test]
    fn memory_stays_within_device_capacity_for_small_models() {
        let (_, report, _) = plan_and_run(1, 8);
        let capacity = ClusterSpec::homogeneous(1, 8).device_memory_bytes();
        for (&d, &bytes) in report.device_memory() {
            assert!(bytes <= capacity, "{d} uses {bytes} bytes");
        }
    }

    #[test]
    fn mismatched_cluster_rejected() {
        let graph = two_task_graph();
        let big = ClusterSpec::homogeneous(2, 8);
        let plan = SpindleSession::new(big).plan(&graph).unwrap();
        let small = ClusterSpec::homogeneous(1, 8);
        let err = RuntimeEngine::new(plan, &small)
            .run_iteration()
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ClusterMismatch { .. }));
    }

    #[test]
    fn sequential_placement_costs_more_send_recv() {
        let graph = two_task_graph();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let locality = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let sequential = SpindleSession::with_config(
            cluster.clone(),
            PlannerConfig {
                placement: PlacementStrategy::Sequential,
                ..PlannerConfig::default()
            },
        )
        .plan(&graph)
        .unwrap();
        let r_loc = RuntimeEngine::new(&locality, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let r_seq = RuntimeEngine::new(&sequential, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        // On this small workload the two placements are close; locality must
        // not be meaningfully worse (the large-workload ablation of Fig. 10 is
        // exercised by the benchmark harness).
        assert!(r_loc.breakdown().send_recv_s <= r_seq.breakdown().send_recv_s * 1.1 + 1e-6);
    }

    #[test]
    fn report_flops_match_graph_flops() {
        let (_, report, graph) = plan_and_run(1, 8);
        let expected = graph.total_flops();
        assert!((report.total_flops() - expected).abs() / expected < 1e-9);
    }
}
