//! Error type for the runtime engine.

use std::error::Error;
use std::fmt;

use spindle_core::PlanError;

/// Errors produced while executing an execution plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The plan failed structural validation.
    InvalidPlan(PlanError),
    /// The plan references devices outside the cluster it is executed on.
    ClusterMismatch {
        /// Devices the plan was built for.
        plan_devices: u32,
        /// Devices available in the executing cluster.
        cluster_devices: u32,
    },
    /// The simulated iteration time diverged from an analytical reference
    /// beyond the caller's tolerance — the analytical cost model and the
    /// event-driven simulator disagree about the same plan.
    GapExceeded {
        /// Simulated iteration time, seconds.
        simulated_s: f64,
        /// Analytical reference iteration time, seconds.
        reference_s: f64,
        /// Relative gap `(simulated - reference) / reference`.
        gap: f64,
        /// Tolerance the gap exceeded (absolute value of the relative gap).
        tolerance: f64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidPlan(e) => write!(f, "invalid execution plan: {e}"),
            RuntimeError::ClusterMismatch {
                plan_devices,
                cluster_devices,
            } => write!(
                f,
                "plan targets {plan_devices} devices but cluster has {cluster_devices}"
            ),
            RuntimeError::GapExceeded {
                simulated_s,
                reference_s,
                gap,
                tolerance,
            } => write!(
                f,
                "simulated iteration {simulated_s:.6}s vs analytical {reference_s:.6}s: \
                 gap {:+.3}% exceeds ±{:.3}%",
                gap * 100.0,
                tolerance * 100.0
            ),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::InvalidPlan(e) => Some(e),
            RuntimeError::ClusterMismatch { .. } | RuntimeError::GapExceeded { .. } => None,
        }
    }
}

impl From<PlanError> for RuntimeError {
    fn from(value: PlanError) -> Self {
        RuntimeError::InvalidPlan(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
        let e = RuntimeError::from(PlanError::EmptyCluster);
        assert!(e.to_string().contains("invalid execution plan"));
        assert!(e.source().is_some());
        let m = RuntimeError::ClusterMismatch {
            plan_devices: 16,
            cluster_devices: 8,
        };
        assert!(m.to_string().contains("16"));
        assert!(m.source().is_none());
    }
}
