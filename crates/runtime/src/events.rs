//! Event-queue plumbing for the discrete-event simulator: a binary-heap queue
//! with deterministic tie-breaking, the public event log, and the seeded
//! xorshift generator driving compute-time perturbations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use spindle_core::MetaOpId;

// The simulator derives one independent perturbation stream per (wave, entry)
// pair from the configured seed, so perturbations do not depend on
// event-processing order and two runs with the same seed are bit-identical.
pub(crate) use spindle_graph::XorShift64Star;

/// One scheduled entry of the event queue.
#[derive(Debug)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq && self.time.total_cmp(&other.time) == Ordering::Equal
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap pops the earliest event; ties broken by
        // insertion order (lower sequence number first) for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue: a binary heap ordered by event time
/// with FIFO tie-breaking on simultaneous events.
#[derive(Debug)]
pub(crate) struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    pub(crate) fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, time: f64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    pub(crate) fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

/// What happened at one instant of the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEventKind {
    /// An entry (a sliced MetaOp) began executing.
    ComputeStart {
        /// Wave index.
        wave: usize,
        /// The MetaOp being executed.
        metaop: MetaOpId,
        /// Devices allocated to the entry.
        devices: u32,
    },
    /// An entry finished executing.
    ComputeEnd {
        /// Wave index.
        wave: usize,
        /// The MetaOp that finished.
        metaop: MetaOpId,
    },
    /// Every entry of a wave finished (the wave barrier).
    WaveComplete {
        /// Wave index.
        wave: usize,
    },
    /// An inter-wave transmission began.
    FlowStart {
        /// Producing MetaOp.
        from: MetaOpId,
        /// Consuming MetaOp.
        to: MetaOpId,
    },
    /// An inter-wave transmission completed.
    FlowEnd {
        /// Producing MetaOp.
        from: MetaOpId,
        /// Consuming MetaOp.
        to: MetaOpId,
    },
    /// A parameter device group began its gradient all-reduce.
    SyncStart {
        /// Index of the group in the parameter pool.
        group: usize,
    },
    /// A parameter device group finished its gradient all-reduce.
    SyncEnd {
        /// Index of the group in the parameter pool.
        group: usize,
    },
    /// Injected device death: the iteration aborted here.
    DeviceFault {
        /// Number of devices that died.
        devices: usize,
        /// In-flight entries killed by the deaths.
        killed: usize,
    },
    /// The iteration completed.
    IterationEnd,
}

impl fmt::Display for SimEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimEventKind::ComputeStart {
                wave,
                metaop,
                devices,
            } => write!(f, "compute-start wave{wave} {metaop} x{devices}"),
            SimEventKind::ComputeEnd { wave, metaop } => {
                write!(f, "compute-end wave{wave} {metaop}")
            }
            SimEventKind::WaveComplete { wave } => write!(f, "wave-complete wave{wave}"),
            SimEventKind::FlowStart { from, to } => write!(f, "flow-start {from}->{to}"),
            SimEventKind::FlowEnd { from, to } => write!(f, "flow-end {from}->{to}"),
            SimEventKind::SyncStart { group } => write!(f, "sync-start group{group}"),
            SimEventKind::SyncEnd { group } => write!(f, "sync-end group{group}"),
            SimEventKind::DeviceFault { devices, killed } => {
                write!(f, "device-fault x{devices} killed{killed}")
            }
            SimEventKind::IterationEnd => write!(f, "iteration-end"),
        }
    }
}

/// One timestamped entry of the event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggedEvent {
    /// Simulated time of the event, seconds.
    pub time_s: f64,
    /// What happened.
    pub kind: SimEventKind,
}

impl fmt::Display for LoggedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.9}s {}", self.time_s, self.kind)
    }
}

/// The ordered log of everything the simulator did in one iteration.
///
/// The log is fully deterministic: two runs with identical configuration
/// (including the seed) render byte-identical logs, which is the invariant the
/// determinism tests pin down.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    entries: Vec<LoggedEvent>,
}

impl EventLog {
    pub(crate) fn push(&mut self, time_s: f64, kind: SimEventKind) {
        self.entries.push(LoggedEvent { time_s, kind });
    }

    /// The logged events in simulation order.
    #[must_use]
    pub fn entries(&self) -> &[LoggedEvent] {
        &self.entries
    }

    /// Number of logged events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing was logged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the log as one line per event — the canonical byte-comparable
    /// form used by the determinism tests.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a");
        q.push(2.0, "c");
        q.push(0.5, "z");
        assert_eq!(q.len(), 4);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        // Simultaneous events pop in insertion order: "b" before "c".
        assert_eq!(order, vec!["z", "a", "b", "c"]);
    }

    #[test]
    fn log_renders_one_line_per_event() {
        let mut log = EventLog::default();
        log.push(
            0.0,
            SimEventKind::ComputeStart {
                wave: 0,
                metaop: MetaOpId(3),
                devices: 4,
            },
        );
        log.push(1.5, SimEventKind::IterationEnd);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        let text = log.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("compute-start wave0 metaop3 x4"));
        assert!(text.contains("t=1.500000000s iteration-end"));
        assert_eq!(log.entries()[1].kind, SimEventKind::IterationEnd);
    }
}
