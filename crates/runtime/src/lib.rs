//! # spindle-runtime
//!
//! A deterministic discrete-event runtime engine that executes Spindle
//! [`ExecutionPlan`](spindle_core::ExecutionPlan)s and reports the metrics the
//! paper's evaluation measures.
//!
//! The paper's runtime engine (§3.6) instantiates MetaOps on each device,
//! inserts transmission operators at wave boundaries, maintains a parameter
//! device-group pool, and runs forward/backward wave by wave followed by
//! group-wise parameter synchronisation. This crate reproduces that execution
//! *in simulation*, through two backends sharing one localisation pass
//! ([`LocalizedPlan`]):
//!
//! * [`RuntimeEngine`] — the closed-form fast path: computation, transmission
//!   and synchronisation are priced by the same cost models the planner uses,
//!   and every quantity reported in §5 (end-to-end iteration time, time
//!   breakdown, utilization traces, per-device / per-MetaOp utilization,
//!   memory consumption) is derived analytically.
//! * [`Simulator`] — a discrete-event backend that executes the plan op by op
//!   on a binary-heap event queue with deterministic tie-breaking: per-link
//!   bandwidth sharing (contention), heterogeneous per-device speed factors,
//!   injected stragglers and seeded compute perturbations. In its default
//!   (serialized, contention-free) configuration it reproduces the analytical
//!   engine's iteration time, so each backend cross-checks the other.
//!
//! On top of the simulator, [`DynamicRunLoop`] drives dynamic task-arrival
//! schedules ([`spindle_workloads::ArrivalSchedule`]) with *online
//! re-planning*: at every task-mix change it calls back into the planning
//! session (reusing its warm curve cache) and reports per-phase makespan,
//! re-plan cost, cache warmth and the plan-vs-simulated gap.
//!
//! ## Example
//!
//! ```
//! use spindle_cluster::ClusterSpec;
//! use spindle_core::SpindleSession;
//! use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
//! use spindle_runtime::RuntimeEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
//! let a = b.add_op_chain(t, OpKind::Encoder(Modality::Audio), TensorShape::new(8, 229, 768), 6)?;
//! let x = b.add_op_chain(t, OpKind::Encoder(Modality::Text), TensorShape::new(8, 77, 768), 6)?;
//! let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
//! b.add_flow(*a.last().unwrap(), loss)?;
//! b.add_flow(*x.last().unwrap(), loss)?;
//! let graph = b.build()?;
//! let cluster = ClusterSpec::homogeneous(1, 8);
//! let mut session = SpindleSession::new(cluster.clone());
//! let plan = session.plan(&graph)?;
//!
//! let report = RuntimeEngine::new(plan, &cluster).with_graph(&graph).run_iteration()?;
//! assert!(report.iteration_time_ms() > 0.0);
//! assert!(report.breakdown().fwd_bwd_s > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dynamic_run;
mod engine;
mod error;
mod events;
mod localize;
mod metrics;
mod migrate;
mod param_groups;
mod recovery;
mod sim;
mod transmission;

pub use dynamic_run::{ChurnRunReport, DynamicRunLoop, DynamicRunReport, PhaseRunReport};
pub use engine::{EngineConfig, IntoShared, RuntimeEngine};
pub use error::RuntimeError;
pub use events::{EventLog, LoggedEvent, SimEventKind};
pub use localize::LocalizedPlan;
pub use metrics::{
    sample_utilization_trace, ComputeInterval, IterationReport, TimeBreakdown, UtilizationSample,
};
pub use migrate::{
    migration_bytes, migration_flows, price_migration, MigrationFlow, MigrationPlan, RestoreFlow,
};
pub use param_groups::ParamGroupPool;
pub use recovery::{
    adam_state_bytes, background_checkpoint_flows, checkpoint_flows, full_state_bytes,
    price_checkpoint_write, price_restore, CheckpointPolicy,
};
pub use sim::{
    BackgroundFlow, CommMode, FaultReport, FaultSpec, SimConfig, SimReport, Simulator, Straggler,
};
pub use transmission::{
    derive_transmission_sites, derive_transmissions, total_transmission_time, Transmission,
    TransmissionKind, TransmissionSite,
};
