//! # spindle-runtime
//!
//! A deterministic discrete-event runtime engine that executes Spindle
//! [`ExecutionPlan`](spindle_core::ExecutionPlan)s and reports the metrics the
//! paper's evaluation measures.
//!
//! The paper's runtime engine (§3.6) instantiates MetaOps on each device,
//! inserts transmission operators at wave boundaries, maintains a parameter
//! device-group pool, and runs forward/backward wave by wave followed by
//! group-wise parameter synchronisation. This crate reproduces that execution
//! *in simulation*: computation, transmission and synchronisation are priced by
//! the same cost models the planner uses, and every quantity reported in §5
//! (end-to-end iteration time, time breakdown, utilization traces, per-device /
//! per-MetaOp utilization, memory consumption) is derived from the simulated
//! timeline.
//!
//! ## Example
//!
//! ```
//! use spindle_cluster::ClusterSpec;
//! use spindle_core::SpindleSession;
//! use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
//! use spindle_runtime::RuntimeEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
//! let a = b.add_op_chain(t, OpKind::Encoder(Modality::Audio), TensorShape::new(8, 229, 768), 6)?;
//! let x = b.add_op_chain(t, OpKind::Encoder(Modality::Text), TensorShape::new(8, 77, 768), 6)?;
//! let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
//! b.add_flow(*a.last().unwrap(), loss)?;
//! b.add_flow(*x.last().unwrap(), loss)?;
//! let graph = b.build()?;
//! let cluster = ClusterSpec::homogeneous(1, 8);
//! let mut session = SpindleSession::new(cluster.clone());
//! let plan = session.plan(&graph)?;
//!
//! let report = RuntimeEngine::new(plan, &cluster).with_graph(&graph).run_iteration()?;
//! assert!(report.iteration_time_ms() > 0.0);
//! assert!(report.breakdown().fwd_bwd_s > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod metrics;
mod param_groups;
mod transmission;

pub use engine::{IntoShared, RuntimeEngine};
pub use error::RuntimeError;
pub use metrics::{IterationReport, TimeBreakdown, UtilizationSample};
pub use param_groups::ParamGroupPool;
pub use transmission::{Transmission, TransmissionKind};
