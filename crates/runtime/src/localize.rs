//! Plan localisation (§3.6 steps 1–3), shared by the analytical engine and the
//! event-driven simulator.
//!
//! Both execution backends need the same three artefacts before they can run a
//! placed plan: the wave entries bound to their device groups (step 1, implicit
//! in the placed plan), the inter-wave transmission operators with the wave
//! boundary each one crosses (step 2), and the parameter device-group pool
//! (step 3). [`LocalizedPlan`] computes all three once, so the closed-form
//! engine and the simulator price the *same* physical work and can be
//! cross-checked against each other.

use std::sync::Arc;

use spindle_cluster::{ClusterSpec, CommModel};
use spindle_core::ExecutionPlan;
use spindle_graph::ComputationGraph;

use crate::param_groups::ParamGroupPool;
use crate::transmission::{derive_transmission_sites, TransmissionSite};
use crate::RuntimeError;

/// A validated, localised execution plan: transmissions resolved per wave
/// boundary and the parameter device-group pool built.
#[derive(Debug, Clone)]
pub struct LocalizedPlan {
    plan: Arc<ExecutionPlan>,
    sites: Vec<TransmissionSite>,
    pool: ParamGroupPool,
}

impl LocalizedPlan {
    /// Localises `plan` for execution on `cluster`.
    ///
    /// When the original computation graph is supplied, the parameter pool
    /// captures cross-task parameter sharing exactly; without it, the
    /// per-MetaOp approximation is used.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidPlan`] if the plan fails validation or
    /// lacks placement, and [`RuntimeError::ClusterMismatch`] if the plan was
    /// built for more devices than the cluster has.
    pub fn new(
        plan: Arc<ExecutionPlan>,
        cluster: &ClusterSpec,
        graph: Option<&ComputationGraph>,
    ) -> Result<Self, RuntimeError> {
        plan.validate()?;
        plan.require_placement()?;
        let cluster_devices = cluster.num_devices() as u32;
        if plan.num_devices() > cluster_devices {
            return Err(RuntimeError::ClusterMismatch {
                plan_devices: plan.num_devices(),
                cluster_devices,
            });
        }
        let sites = derive_transmission_sites(&plan);
        let pool = match graph {
            Some(graph) => ParamGroupPool::from_plan(&plan, graph),
            None => ParamGroupPool::from_plan_approximate(&plan),
        };
        Ok(Self { plan, sites, pool })
    }

    /// The underlying plan.
    #[must_use]
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// A shareable handle to the plan.
    #[must_use]
    pub fn plan_handle(&self) -> Arc<ExecutionPlan> {
        Arc::clone(&self.plan)
    }

    /// The inter-wave transmissions, each bound to the wave boundary it
    /// crosses.
    #[must_use]
    pub fn sites(&self) -> &[TransmissionSite] {
        &self.sites
    }

    /// The transmissions ready after wave `wave` completes.
    pub fn sites_after_wave(&self, wave: usize) -> impl Iterator<Item = &TransmissionSite> {
        self.sites.iter().filter(move |s| s.after_wave == wave)
    }

    /// The parameter device-group pool (§3.6 step 3).
    #[must_use]
    pub fn pool(&self) -> &ParamGroupPool {
        &self.pool
    }

    /// Total forward+backward transmission time priced by `comm`, seconds —
    /// the closed-form quantity the analytical engine reports.
    #[must_use]
    pub fn total_transmission_time(&self, comm: &CommModel) -> f64 {
        self.sites
            .iter()
            .map(|s| s.transmission.round_trip_time(comm))
            .sum()
    }

    /// Total group-wise parameter synchronisation time priced by `comm`,
    /// seconds.
    #[must_use]
    pub fn sync_time(&self, comm: &CommModel) -> f64 {
        self.pool.sync_time(comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_core::SpindleSession;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("vl", [Modality::Vision, Modality::Text], 8);
        let vis = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(8, 257, 768),
                8,
            )
            .unwrap();
        let lm = b
            .add_op_chain(t, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 2048), 8)
            .unwrap();
        b.add_flow(*vis.last().unwrap(), lm[0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn localisation_matches_standalone_derivations() {
        let graph = graph();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = Arc::new(SpindleSession::new(cluster.clone()).plan(&graph).unwrap());
        let localized = LocalizedPlan::new(Arc::clone(&plan), &cluster, Some(&graph)).unwrap();
        let comm = CommModel::new(&cluster);
        let direct = crate::transmission::total_transmission_time(&plan, &comm);
        assert!((localized.total_transmission_time(&comm) - direct).abs() < 1e-15);
        let pool = ParamGroupPool::from_plan(&plan, &graph);
        assert!((localized.sync_time(&comm) - pool.sync_time(&comm)).abs() < 1e-15);
        // Every site is reachable through exactly one boundary iterator.
        let by_boundary: usize = (0..plan.num_waves())
            .map(|w| localized.sites_after_wave(w).count())
            .sum();
        assert_eq!(by_boundary, localized.sites().len());
    }

    #[test]
    fn cluster_mismatch_is_rejected() {
        let graph = graph();
        let big = ClusterSpec::homogeneous(2, 8);
        let plan = Arc::new(SpindleSession::new(big).plan(&graph).unwrap());
        let small = ClusterSpec::homogeneous(1, 8);
        let err = LocalizedPlan::new(plan, &small, None).unwrap_err();
        assert!(matches!(err, RuntimeError::ClusterMismatch { .. }));
    }
}
