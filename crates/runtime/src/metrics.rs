//! Metrics collected by the runtime engine: the quantities reported in the
//! paper's evaluation (Figs. 8, 9, 10, 15).

use std::collections::BTreeMap;
use std::fmt;

use spindle_cluster::DeviceId;
use spindle_core::MetaOpId;

/// Iteration-time breakdown (Fig. 10): forward+backward computation, parameter
/// synchronisation, and inter-wave send & receive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Forward + backward computation time, seconds (includes intra-wave
    /// alignment idle time).
    pub fwd_bwd_s: f64,
    /// Group-wise parameter synchronisation time, seconds.
    pub sync_s: f64,
    /// Inter-wave send & receive time, seconds.
    pub send_recv_s: f64,
}

impl TimeBreakdown {
    /// Total iteration time, seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.fwd_bwd_s + self.sync_s + self.send_recv_s
    }

    /// Fraction of the iteration spent in inter-wave send & receive.
    #[must_use]
    pub fn send_recv_fraction(&self) -> f64 {
        if self.total_s() <= 0.0 {
            0.0
        } else {
            self.send_recv_s / self.total_s()
        }
    }

    /// Fraction of the iteration spent in parameter synchronisation.
    #[must_use]
    pub fn sync_fraction(&self) -> f64 {
        if self.total_s() <= 0.0 {
            0.0
        } else {
            self.sync_s / self.total_s()
        }
    }
}

/// One sample of the cluster-utilization-over-time trace (Fig. 9a / Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Time since the start of the iteration, seconds.
    pub time_s: f64,
    /// Achieved cluster throughput at that instant, TFLOP/s.
    pub tflops_per_s: f64,
}

/// A half-open interval of busy compute `[start_s, end_s)` contributing
/// `flops_per_s` of achieved throughput — the raw material of a utilization
/// trace, produced by both the analytical engine (from the plan timeline) and
/// the event-driven simulator (from the actual event timeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeInterval {
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval end, seconds.
    pub end_s: f64,
    /// Achieved throughput while the interval is live, FLOP/s.
    pub flops_per_s: f64,
}

/// Samples a utilization trace of `samples` uniform points over `[0,
/// horizon_s)` from a set of busy compute intervals. Sample instants use
/// midpoint positioning (`(k + 0.5) / samples`), so a trace of any resolution
/// covers the full horizon without sampling the ambiguous endpoints.
#[must_use]
pub fn sample_utilization_trace(
    intervals: &[ComputeInterval],
    horizon_s: f64,
    samples: usize,
) -> Vec<UtilizationSample> {
    let horizon = horizon_s.max(1e-12);
    let mut trace = Vec::with_capacity(samples);
    for k in 0..samples {
        let t = horizon * (k as f64 + 0.5) / samples as f64;
        let flops_per_s: f64 = intervals
            .iter()
            .filter(|iv| t >= iv.start_s && t < iv.end_s)
            .map(|iv| iv.flops_per_s)
            .sum();
        trace.push(UtilizationSample {
            time_s: t,
            tflops_per_s: flops_per_s / 1e12,
        });
    }
    trace
}

/// The full report of one simulated training iteration.
#[derive(Debug, Clone)]
pub struct IterationReport {
    pub(crate) breakdown: TimeBreakdown,
    pub(crate) utilization_trace: Vec<UtilizationSample>,
    pub(crate) device_utilization: BTreeMap<DeviceId, f64>,
    pub(crate) metaop_utilization: BTreeMap<MetaOpId, f64>,
    pub(crate) device_memory: BTreeMap<DeviceId, u64>,
    pub(crate) total_flops: f64,
    pub(crate) num_devices: u32,
    pub(crate) peak_flops_per_device: f64,
}

impl IterationReport {
    /// End-to-end iteration time in milliseconds (the headline metric of
    /// Fig. 8).
    #[must_use]
    pub fn iteration_time_ms(&self) -> f64 {
        self.breakdown.total_s() * 1e3
    }

    /// End-to-end iteration time in seconds.
    #[must_use]
    pub fn iteration_time_s(&self) -> f64 {
        self.breakdown.total_s()
    }

    /// The iteration-time breakdown (Fig. 10).
    #[must_use]
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Cluster utilization over time (Fig. 9a), sampled at uniform intervals
    /// over the compute portion of the iteration.
    #[must_use]
    pub fn utilization_trace(&self) -> &[UtilizationSample] {
        &self.utilization_trace
    }

    /// Average achieved cluster throughput over the whole iteration, TFLOP/s.
    #[must_use]
    pub fn average_cluster_tflops(&self) -> f64 {
        if self.breakdown.total_s() <= 0.0 {
            return 0.0;
        }
        self.total_flops / self.breakdown.total_s() / 1e12
    }

    /// Average utilization of each device as a fraction of its peak compute
    /// (Fig. 9b, left spider chart).
    #[must_use]
    pub fn device_utilization(&self) -> &BTreeMap<DeviceId, f64> {
        &self.device_utilization
    }

    /// Average computational utilization of each MetaOp: achieved FLOP/s on
    /// its devices divided by their aggregate peak (Fig. 9b, right spider
    /// chart).
    #[must_use]
    pub fn metaop_utilization(&self) -> &BTreeMap<MetaOpId, f64> {
        &self.metaop_utilization
    }

    /// Peak memory consumption of each device in bytes (Fig. 15).
    #[must_use]
    pub fn device_memory(&self) -> &BTreeMap<DeviceId, u64> {
        &self.device_memory
    }

    /// Peak memory consumption of each device in GiB.
    #[must_use]
    pub fn device_memory_gib(&self) -> BTreeMap<DeviceId, f64> {
        self.device_memory
            .iter()
            .map(|(&d, &b)| (d, b as f64 / f64::from(1u32 << 30)))
            .collect()
    }

    /// Largest-to-smallest ratio of per-device memory (memory balance metric).
    #[must_use]
    pub fn memory_imbalance(&self) -> f64 {
        let max = self.device_memory.values().copied().max().unwrap_or(0) as f64;
        let min = self.device_memory.values().copied().min().unwrap_or(0) as f64;
        if min <= 0.0 {
            if max <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max / min
        }
    }

    /// Total FLOPs executed in the iteration.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.total_flops
    }

    /// Average cluster utilization as a fraction of aggregate peak compute.
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        let peak = self.peak_flops_per_device * f64::from(self.num_devices);
        if peak <= 0.0 || self.breakdown.total_s() <= 0.0 {
            return 0.0;
        }
        (self.total_flops / self.breakdown.total_s()) / peak
    }
}

impl fmt::Display for IterationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iteration {:.1} ms (fwd+bwd {:.1} ms, sync {:.1} ms, send/recv {:.1} ms), avg util {:.0}%",
            self.iteration_time_ms(),
            self.breakdown.fwd_bwd_s * 1e3,
            self.breakdown.sync_s * 1e3,
            self.breakdown.send_recv_s * 1e3,
            self.average_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> IterationReport {
        IterationReport {
            breakdown: TimeBreakdown {
                fwd_bwd_s: 0.8,
                sync_s: 0.1,
                send_recv_s: 0.1,
            },
            utilization_trace: vec![
                UtilizationSample {
                    time_s: 0.0,
                    tflops_per_s: 100.0,
                },
                UtilizationSample {
                    time_s: 0.5,
                    tflops_per_s: 50.0,
                },
            ],
            device_utilization: [(DeviceId(0), 0.5), (DeviceId(1), 0.25)]
                .into_iter()
                .collect(),
            metaop_utilization: [(MetaOpId(0), 0.6)].into_iter().collect(),
            device_memory: [(DeviceId(0), 2 << 30), (DeviceId(1), 1 << 30)]
                .into_iter()
                .collect(),
            total_flops: 1e14,
            num_devices: 2,
            peak_flops_per_device: 312e12,
        }
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let r = report();
        assert!((r.iteration_time_s() - 1.0).abs() < 1e-12);
        assert!((r.iteration_time_ms() - 1000.0).abs() < 1e-9);
        assert!((r.breakdown().send_recv_fraction() - 0.1).abs() < 1e-12);
        assert!((r.breakdown().sync_fraction() - 0.1).abs() < 1e-12);
        let zero = TimeBreakdown::default();
        assert_eq!(zero.total_s(), 0.0);
        assert_eq!(zero.send_recv_fraction(), 0.0);
        assert_eq!(zero.sync_fraction(), 0.0);
    }

    #[test]
    fn trace_sampling_sums_live_intervals() {
        let intervals = [
            ComputeInterval {
                start_s: 0.0,
                end_s: 1.0,
                flops_per_s: 1e12,
            },
            ComputeInterval {
                start_s: 0.5,
                end_s: 1.5,
                flops_per_s: 2e12,
            },
        ];
        let trace = sample_utilization_trace(&intervals, 2.0, 4);
        assert_eq!(trace.len(), 4);
        // Midpoints: 0.25 (first only), 0.75 (both), 1.25 (second), 1.75 (none).
        assert!((trace[0].tflops_per_s - 1.0).abs() < 1e-12);
        assert!((trace[1].tflops_per_s - 3.0).abs() < 1e-12);
        assert!((trace[2].tflops_per_s - 2.0).abs() < 1e-12);
        assert!(trace[3].tflops_per_s.abs() < 1e-12);
        assert!(trace.windows(2).all(|w| w[0].time_s < w[1].time_s));
    }

    #[test]
    fn utilization_and_memory_accessors() {
        let r = report();
        assert_eq!(r.utilization_trace().len(), 2);
        assert!((r.average_cluster_tflops() - 100.0).abs() < 1e-9);
        assert_eq!(r.device_utilization().len(), 2);
        assert_eq!(r.metaop_utilization().len(), 1);
        assert!((r.device_memory_gib()[&DeviceId(0)] - 2.0).abs() < 1e-9);
        assert!((r.memory_imbalance() - 2.0).abs() < 1e-9);
        assert!(r.average_utilization() > 0.0 && r.average_utilization() < 1.0);
        assert!(r.to_string().contains("iteration"));
        assert!((r.total_flops() - 1e14).abs() < 1.0);
    }
}
