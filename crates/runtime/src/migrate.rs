//! Parameter-migration flows after a topology change, priced through the
//! simulator's link-contention model.
//!
//! When the planner re-places a workload after device churn, every device
//! that newly hosts a MetaOp replica must receive that replica's parameter
//! shard from a surviving old replica. The planner itself prices this
//! serially with the α-β interconnect model (an upper bound, reported as
//! `ReplanOutcome::migration_cost`); this module derives the *concrete* flow
//! set from the old and new plans and prices it the way the event-driven
//! simulator prices wave-boundary traffic — all flows issued concurrently,
//! sharing link bandwidth equal-share at the most contended link
//! ([`LinkOccupancy`]). The contended price is what the elastic run loop
//! charges the timeline.

use std::collections::BTreeMap;

use spindle_cluster::{
    transfer_footprint, ClusterSpec, CommModel, DeviceGroup, DeviceId, LinkId, LinkOccupancy,
};
use spindle_core::{ExecutionPlan, MetaOpId};

/// One parameter-shard move: `bytes` of MetaOp state travel from a surviving
/// replica to a device that newly hosts the MetaOp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationFlow {
    /// The MetaOp whose state moves.
    pub metaop: MetaOpId,
    /// Surviving source replica.
    pub from: DeviceId,
    /// Newly placed destination device.
    pub to: DeviceId,
    /// Parameter bytes moved (the MetaOp's per-device memory footprint).
    pub bytes: u64,
}

/// One checkpoint-restore transfer: `bytes` of MetaOp state stream from the
/// storage tier onto a device that must re-materialise a replica no survivor
/// holds. Priced by [`price_restore`](crate::price_restore) over the storage
/// links, not the compute fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreFlow {
    /// The MetaOp whose state is restored.
    pub metaop: MetaOpId,
    /// The device receiving the restored shard.
    pub to: DeviceId,
    /// State bytes restored (the MetaOp's per-device memory footprint —
    /// scaled to checkpoint bytes by the active
    /// [`CheckpointPolicy`](crate::CheckpointPolicy) at pricing time).
    pub bytes: u64,
}

/// The full recovery work implied by re-placing a plan after churn: state
/// that can *move* from surviving replicas, and state that must be
/// *re-materialised* from the last checkpoint because every replica died.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Parameter moves from surviving replicas, priced over the compute
    /// fabric by [`price_migration`].
    pub flows: Vec<MigrationFlow>,
    /// Restores of all-replicas-dead MetaOps, one per receiving device,
    /// priced over the storage tier.
    pub restores: Vec<RestoreFlow>,
}

impl MigrationPlan {
    /// Total bytes moved between surviving devices.
    #[must_use]
    pub fn migration_bytes(&self) -> u64 {
        migration_bytes(&self.flows)
    }

    /// Total state bytes that must be restored from storage.
    #[must_use]
    pub fn restore_bytes(&self) -> u64 {
        self.restores.iter().map(|f| f.bytes).sum()
    }

    /// Number of distinct MetaOps that lost every replica.
    #[must_use]
    pub fn rematerialized_metaops(&self) -> usize {
        let mut ids: Vec<MetaOpId> = self.restores.iter().map(|f| f.metaop).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Derives the recovery work implied by re-placing `old` as `new` on
/// `cluster` (the post-churn cluster: its device set is the survivor set).
///
/// For every device that hosts a MetaOp in `new` but did not in `old`, one
/// [`MigrationFlow`] is emitted from the nearest surviving old replica — a
/// same-node replica if one exists, otherwise the first surviving replica.
/// A MetaOp whose old replicas *all* died cannot be moved: each of its new
/// sites gets a [`RestoreFlow`] from storage instead, so lost state is
/// always counted, never silently dropped. MetaOps with no annotated memory
/// or absent from the old plan (fresh arrivals) emit nothing.
#[must_use]
pub fn migration_flows(
    old: &ExecutionPlan,
    new: &ExecutionPlan,
    cluster: &ClusterSpec,
) -> MigrationPlan {
    let survivors = cluster.all_devices();
    let mut old_metaops: Vec<MetaOpId> = Vec::new();
    let mut old_sites: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
    for wave in old.waves() {
        for entry in &wave.entries {
            let Some(group) = &entry.placement else {
                continue;
            };
            if !old_metaops.contains(&entry.metaop) {
                old_metaops.push(entry.metaop);
            }
            let sites = old_sites.entry(entry.metaop).or_default();
            for d in group.iter() {
                if survivors.contains(d) && !sites.contains(&d) {
                    sites.push(d);
                }
            }
        }
    }
    let mut plan = MigrationPlan::default();
    let mut new_seen: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
    for wave in new.waves() {
        for entry in &wave.entries {
            let Some(group) = &entry.placement else {
                continue;
            };
            if !old_metaops.contains(&entry.metaop) || entry.memory_per_device == 0 {
                continue;
            }
            let sources = old_sites.get(&entry.metaop).map_or(&[][..], Vec::as_slice);
            let seen = new_seen.entry(entry.metaop).or_default();
            for d in group.iter() {
                if seen.contains(&d) {
                    continue;
                }
                seen.push(d);
                if sources.contains(&d) {
                    continue;
                }
                if sources.is_empty() {
                    // Every old replica died: the shard must come back from
                    // the checkpoint tier.
                    plan.restores.push(RestoreFlow {
                        metaop: entry.metaop,
                        to: d,
                        bytes: entry.memory_per_device,
                    });
                    continue;
                }
                let node = cluster.node_of(d).ok();
                let from = sources
                    .iter()
                    .copied()
                    .find(|&s| cluster.node_of(s).ok() == node && node.is_some())
                    .unwrap_or(sources[0]);
                plan.flows.push(MigrationFlow {
                    metaop: entry.metaop,
                    from,
                    to: d,
                    bytes: entry.memory_per_device,
                });
            }
        }
    }
    plan
}

/// Total bytes moved by a flow set.
#[must_use]
pub fn migration_bytes(flows: &[MigrationFlow]) -> u64 {
    flows.iter().map(|f| f.bytes).sum()
}

/// Prices a migration flow set on `cluster`: all flows start concurrently,
/// and with `contended` each flow's service rate is its nominal bandwidth
/// divided by the worst concurrent-flow count on any link of its footprint —
/// exactly the equal-share model the event-driven simulator applies to
/// wave-boundary traffic. Without contention, flows overlap at full rate and
/// the price is the slowest flow. Returns the makespan of the migration,
/// seconds.
#[must_use]
pub fn price_migration(cluster: &ClusterSpec, flows: &[MigrationFlow], contended: bool) -> f64 {
    struct Active {
        remaining_s: f64,
        footprint: Vec<LinkId>,
    }
    let comm = CommModel::new(cluster);
    let mut active: Vec<Active> = flows
        .iter()
        .map(|f| Active {
            remaining_s: comm.p2p_time(f.from, f.to, f.bytes),
            footprint: transfer_footprint(
                cluster,
                &DeviceGroup::contiguous(f.from, 1),
                &DeviceGroup::contiguous(f.to, 1),
            ),
        })
        .collect();
    let mut occupancy = LinkOccupancy::new();
    if contended {
        for flow in &active {
            occupancy.register(&flow.footprint);
        }
    }
    let mut now = 0.0_f64;
    while !active.is_empty() {
        // Next completion at current equal-share rates.
        let step = active
            .iter()
            .map(|f| f.remaining_s * occupancy.congestion(&f.footprint) as f64)
            .fold(f64::INFINITY, f64::min);
        now += step;
        for flow in &mut active {
            flow.remaining_s -= step / occupancy.congestion(&flow.footprint) as f64;
        }
        let eps = 1e-12 * now.max(1.0);
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining_s <= eps {
                let done = active.swap_remove(i);
                if contended {
                    occupancy.release(&done.footprint);
                }
            } else {
                i += 1;
            }
        }
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_core::SpindleSession;
    use spindle_graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};

    fn graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 64);
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(64, 229, 768),
                8,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(64, 77, 768),
                6,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(64, 1, 768))
            .unwrap();
        b.add_flow(*audio.last().unwrap(), loss).unwrap();
        b.add_flow(*text.last().unwrap(), loss).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identical_plans_need_no_migration() {
        let cluster = ClusterSpec::homogeneous(2, 4);
        let g = graph();
        let plan = SpindleSession::new(cluster.clone()).plan(&g).unwrap();
        let migration = migration_flows(&plan, &plan, &cluster);
        assert!(
            migration.flows.is_empty(),
            "same placement moves nothing: {:?}",
            migration.flows
        );
        assert!(migration.restores.is_empty());
        assert_eq!(migration.rematerialized_metaops(), 0);
        assert_eq!(price_migration(&cluster, &migration.flows, true), 0.0);
    }

    #[test]
    fn device_loss_produces_priced_flows_from_survivors() {
        let full = ClusterSpec::homogeneous(2, 4);
        let g = graph();
        let mut session = SpindleSession::new(full.clone());
        let old = session.plan(&g).unwrap();
        session.remove_devices(&[DeviceId(7)]).unwrap();
        let new = session.replan(&g).unwrap().plan;
        let shrunk = session.cluster_handle();
        let flows = migration_flows(&old, &new, &shrunk).flows;
        // Every flow originates at a survivor and lands on a survivor that
        // did not previously host the MetaOp.
        for flow in &flows {
            assert_ne!(flow.from, DeviceId(7));
            assert_ne!(flow.to, DeviceId(7));
            assert_ne!(flow.from, flow.to);
            assert!(flow.bytes > 0);
        }
        if !flows.is_empty() {
            let relaxed = price_migration(&shrunk, &flows, false);
            let contended = price_migration(&shrunk, &flows, true);
            assert!(relaxed > 0.0);
            assert!(
                contended >= relaxed - 1e-12,
                "contention can only slow migration: {contended} vs {relaxed}"
            );
        }
    }

    #[test]
    fn all_dead_metaops_are_surfaced_as_restores_never_dropped() {
        // A multi-task mix partitions across the two nodes, so killing node 1
        // takes every replica of the MetaOps confined to it: their state must
        // be re-materialised, not migrated.
        let full = ClusterSpec::homogeneous(2, 4);
        let g = spindle_workloads::multitask_clip(5).unwrap();
        let mut session = SpindleSession::new(full.clone());
        let old = session.plan(&g).unwrap();
        let dead: Vec<DeviceId> = (4..8).map(DeviceId).collect();

        // Ground truth from the old plan: MetaOps whose replica sites —
        // unioned across every wave — live entirely inside the dead set.
        let mut sites: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
        let mut stateful: Vec<MetaOpId> = Vec::new();
        for wave in old.waves() {
            for entry in &wave.entries {
                let group = entry.placement.as_ref().unwrap();
                sites.entry(entry.metaop).or_default().extend(group.iter());
                if entry.memory_per_device > 0 && !stateful.contains(&entry.metaop) {
                    stateful.push(entry.metaop);
                }
            }
        }
        let all_dead: Vec<MetaOpId> = sites
            .iter()
            .filter(|(id, devs)| stateful.contains(id) && devs.iter().all(|d| dead.contains(d)))
            .map(|(id, _)| *id)
            .collect();
        assert!(
            !all_dead.is_empty(),
            "the scenario must actually kill some MetaOp's every replica"
        );

        session.remove_devices(&dead).unwrap();
        let new = session.replan(&g).unwrap().plan;
        let shrunk = session.cluster_handle();
        let migration = migration_flows(&old, &new, &shrunk);
        // Regression: the all-dead MetaOps are counted, not silently skipped.
        assert_eq!(migration.rematerialized_metaops(), all_dead.len());
        assert!(migration.restore_bytes() > 0);
        for restore in &migration.restores {
            assert!(all_dead.contains(&restore.metaop));
            assert!(!dead.contains(&restore.to), "restore lands on a survivor");
            assert!(restore.bytes > 0);
        }
        // And no migration flow claims to source from a dead device.
        for flow in &migration.flows {
            assert!(!dead.contains(&flow.from));
        }
    }

    #[test]
    fn contention_prices_shared_links_above_the_lone_flow() {
        let cluster = ClusterSpec::homogeneous(2, 4);
        // Two cross-island flows out of the same node share its uplink.
        let flows = vec![
            MigrationFlow {
                metaop: MetaOpId(0),
                from: DeviceId(0),
                to: DeviceId(4),
                bytes: 1 << 30,
            },
            MigrationFlow {
                metaop: MetaOpId(1),
                from: DeviceId(1),
                to: DeviceId(5),
                bytes: 1 << 30,
            },
        ];
        let lone = price_migration(&cluster, &flows[..1], true);
        let both = price_migration(&cluster, &flows, true);
        assert!(both > lone * 1.5, "shared uplink must halve the rate");
    }
}
