//! Parameter-migration flows after a topology change, priced through the
//! simulator's link-contention model.
//!
//! When the planner re-places a workload after device churn, every device
//! that newly hosts a MetaOp replica must receive that replica's parameter
//! shard from a surviving old replica. The planner itself prices this
//! serially with the α-β interconnect model (an upper bound, reported as
//! `ReplanOutcome::migration_cost`); this module derives the *concrete* flow
//! set from the old and new plans and prices it the way the event-driven
//! simulator prices wave-boundary traffic — all flows issued concurrently,
//! sharing link bandwidth equal-share at the most contended link
//! ([`LinkOccupancy`]). The contended price is what the elastic run loop
//! charges the timeline.

use std::collections::BTreeMap;

use spindle_cluster::{
    transfer_footprint, ClusterSpec, CommModel, DeviceGroup, DeviceId, LinkId, LinkOccupancy,
};
use spindle_core::{ExecutionPlan, MetaOpId};

/// One parameter-shard move: `bytes` of MetaOp state travel from a surviving
/// replica to a device that newly hosts the MetaOp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationFlow {
    /// The MetaOp whose state moves.
    pub metaop: MetaOpId,
    /// Surviving source replica.
    pub from: DeviceId,
    /// Newly placed destination device.
    pub to: DeviceId,
    /// Parameter bytes moved (the MetaOp's per-device memory footprint).
    pub bytes: u64,
}

/// Derives the migration flows implied by re-placing `old` as `new` on
/// `cluster` (the post-churn cluster: its device set is the survivor set).
///
/// For every device that hosts a MetaOp in `new` but did not in `old`, one
/// flow is emitted from the nearest surviving old replica — a same-node
/// replica if one exists, otherwise the first surviving replica. MetaOps
/// with no surviving replica (all old hosts died) or no annotated memory
/// emit no flow: their state cannot be *moved*, it must be re-materialised.
#[must_use]
pub fn migration_flows(
    old: &ExecutionPlan,
    new: &ExecutionPlan,
    cluster: &ClusterSpec,
) -> Vec<MigrationFlow> {
    let survivors = cluster.all_devices();
    let mut old_sites: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
    for wave in old.waves() {
        for entry in &wave.entries {
            let Some(group) = &entry.placement else {
                continue;
            };
            let sites = old_sites.entry(entry.metaop).or_default();
            for d in group.iter() {
                if survivors.contains(d) && !sites.contains(&d) {
                    sites.push(d);
                }
            }
        }
    }
    let mut flows = Vec::new();
    let mut new_seen: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
    for wave in new.waves() {
        for entry in &wave.entries {
            let Some(group) = &entry.placement else {
                continue;
            };
            let Some(sources) = old_sites.get(&entry.metaop) else {
                continue;
            };
            if sources.is_empty() || entry.memory_per_device == 0 {
                continue;
            }
            let seen = new_seen.entry(entry.metaop).or_default();
            for d in group.iter() {
                if seen.contains(&d) {
                    continue;
                }
                seen.push(d);
                if sources.contains(&d) {
                    continue;
                }
                let node = cluster.node_of(d).ok();
                let from = sources
                    .iter()
                    .copied()
                    .find(|&s| cluster.node_of(s).ok() == node && node.is_some())
                    .unwrap_or(sources[0]);
                flows.push(MigrationFlow {
                    metaop: entry.metaop,
                    from,
                    to: d,
                    bytes: entry.memory_per_device,
                });
            }
        }
    }
    flows
}

/// Total bytes moved by a flow set.
#[must_use]
pub fn migration_bytes(flows: &[MigrationFlow]) -> u64 {
    flows.iter().map(|f| f.bytes).sum()
}

/// Prices a migration flow set on `cluster`: all flows start concurrently,
/// and with `contended` each flow's service rate is its nominal bandwidth
/// divided by the worst concurrent-flow count on any link of its footprint —
/// exactly the equal-share model the event-driven simulator applies to
/// wave-boundary traffic. Without contention, flows overlap at full rate and
/// the price is the slowest flow. Returns the makespan of the migration,
/// seconds.
#[must_use]
pub fn price_migration(cluster: &ClusterSpec, flows: &[MigrationFlow], contended: bool) -> f64 {
    struct Active {
        remaining_s: f64,
        footprint: Vec<LinkId>,
    }
    let comm = CommModel::new(cluster);
    let mut active: Vec<Active> = flows
        .iter()
        .map(|f| Active {
            remaining_s: comm.p2p_time(f.from, f.to, f.bytes),
            footprint: transfer_footprint(
                cluster,
                &DeviceGroup::contiguous(f.from, 1),
                &DeviceGroup::contiguous(f.to, 1),
            ),
        })
        .collect();
    let mut occupancy = LinkOccupancy::new();
    if contended {
        for flow in &active {
            occupancy.register(&flow.footprint);
        }
    }
    let mut now = 0.0_f64;
    while !active.is_empty() {
        // Next completion at current equal-share rates.
        let step = active
            .iter()
            .map(|f| f.remaining_s * occupancy.congestion(&f.footprint) as f64)
            .fold(f64::INFINITY, f64::min);
        now += step;
        for flow in &mut active {
            flow.remaining_s -= step / occupancy.congestion(&flow.footprint) as f64;
        }
        let eps = 1e-12 * now.max(1.0);
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining_s <= eps {
                let done = active.swap_remove(i);
                if contended {
                    occupancy.release(&done.footprint);
                }
            } else {
                i += 1;
            }
        }
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_core::SpindleSession;
    use spindle_graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};

    fn graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("audio-text", [Modality::Audio, Modality::Text], 64);
        let audio = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(64, 229, 768),
                8,
            )
            .unwrap();
        let text = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(64, 77, 768),
                6,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(64, 1, 768))
            .unwrap();
        b.add_flow(*audio.last().unwrap(), loss).unwrap();
        b.add_flow(*text.last().unwrap(), loss).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identical_plans_need_no_migration() {
        let cluster = ClusterSpec::homogeneous(2, 4);
        let g = graph();
        let plan = SpindleSession::new(cluster.clone()).plan(&g).unwrap();
        let flows = migration_flows(&plan, &plan, &cluster);
        assert!(flows.is_empty(), "same placement moves nothing: {flows:?}");
        assert_eq!(price_migration(&cluster, &flows, true), 0.0);
    }

    #[test]
    fn device_loss_produces_priced_flows_from_survivors() {
        let full = ClusterSpec::homogeneous(2, 4);
        let g = graph();
        let mut session = SpindleSession::new(full.clone());
        let old = session.plan(&g).unwrap();
        session.remove_devices(&[DeviceId(7)]).unwrap();
        let new = session.replan(&g).unwrap().plan;
        let shrunk = session.cluster_handle();
        let flows = migration_flows(&old, &new, &shrunk);
        // Every flow originates at a survivor and lands on a survivor that
        // did not previously host the MetaOp.
        for flow in &flows {
            assert_ne!(flow.from, DeviceId(7));
            assert_ne!(flow.to, DeviceId(7));
            assert_ne!(flow.from, flow.to);
            assert!(flow.bytes > 0);
        }
        if !flows.is_empty() {
            let relaxed = price_migration(&shrunk, &flows, false);
            let contended = price_migration(&shrunk, &flows, true);
            assert!(relaxed > 0.0);
            assert!(
                contended >= relaxed - 1e-12,
                "contention can only slow migration: {contended} vs {relaxed}"
            );
        }
    }

    #[test]
    fn contention_prices_shared_links_above_the_lone_flow() {
        let cluster = ClusterSpec::homogeneous(2, 4);
        // Two cross-island flows out of the same node share its uplink.
        let flows = vec![
            MigrationFlow {
                metaop: MetaOpId(0),
                from: DeviceId(0),
                to: DeviceId(4),
                bytes: 1 << 30,
            },
            MigrationFlow {
                metaop: MetaOpId(1),
                from: DeviceId(1),
                to: DeviceId(5),
                bytes: 1 << 30,
            },
        ];
        let lone = price_migration(&cluster, &flows[..1], true);
        let both = price_migration(&cluster, &flows, true);
        assert!(both > lone * 1.5, "shared uplink must halve the rate");
    }
}
