//! Parameter device groups and group-wise synchronisation (§3.6 step 3).
//!
//! For every (possibly shared) parameter, all devices that hold a replica must
//! accumulate and synchronise its gradient once per iteration. Spindle scans
//! the placed plan before training, determines the device group of each
//! parameter, and maintains a pool `{D_i → {W_j}}` mapping device groups to the
//! parameter sets synchronised within them — one all-reduce per group per
//! iteration instead of one per parameter.

use std::collections::BTreeMap;

use spindle_cluster::{CommModel, DeviceGroup, DeviceId};
use spindle_core::{ExecutionPlan, MetaOpId};
use spindle_graph::{ComputationGraph, OpId, ParamId};

/// The global parameter device-group pool of a placed plan.
#[derive(Debug, Clone, Default)]
pub struct ParamGroupPool {
    /// Sorted device group → total parameter bytes synchronised in it.
    groups: BTreeMap<Vec<DeviceId>, u64>,
}

impl ParamGroupPool {
    /// Builds the pool from a placed plan, using the original computation graph
    /// to resolve per-operator parameter identity (required to capture
    /// cross-task parameter sharing exactly).
    #[must_use]
    pub fn from_plan(plan: &ExecutionPlan, graph: &ComputationGraph) -> Self {
        let op_devices = op_device_map(plan);
        // Parameter -> (devices holding it, bytes).
        let mut params: BTreeMap<ParamId, (Vec<DeviceId>, u64)> = BTreeMap::new();
        for op in graph.ops() {
            let Some(devices) = op_devices.get(&op.id()) else {
                continue;
            };
            if op.params().is_empty() {
                // Unshared, anonymous parameters still need data-parallel
                // gradient sync within their own device group.
                if devices.len() > 1 && op.param_bytes() > 0 {
                    params.insert(
                        ParamId(u32::MAX - op.id().0),
                        (sorted(devices), op.param_bytes()),
                    );
                }
                continue;
            }
            let share = op.param_bytes() / op.params().len() as u64;
            for &p in op.params() {
                let entry = params.entry(p).or_insert_with(|| (Vec::new(), 0));
                for &d in devices {
                    if !entry.0.contains(&d) {
                        entry.0.push(d);
                    }
                }
                entry.1 = entry.1.max(share);
            }
        }
        let mut groups: BTreeMap<Vec<DeviceId>, u64> = BTreeMap::new();
        for (devices, bytes) in params.into_values() {
            if devices.len() > 1 {
                let mut key = devices;
                key.sort_unstable();
                *groups.entry(key).or_insert(0) += bytes;
            }
        }
        Self { groups }
    }

    /// Builds an approximate pool from the plan alone (no original graph):
    /// every MetaOp entry executing on more than one device pays a gradient
    /// all-reduce of its parameters within its own group, and parameter sharing
    /// is derived from the representative operators' parameter ids.
    #[must_use]
    pub fn from_plan_approximate(plan: &ExecutionPlan) -> Self {
        let mut metaop_devices: BTreeMap<MetaOpId, Vec<DeviceId>> = BTreeMap::new();
        for wave in plan.waves() {
            for entry in &wave.entries {
                if let Some(group) = &entry.placement {
                    let devices = metaop_devices.entry(entry.metaop).or_default();
                    for d in group.iter() {
                        if !devices.contains(&d) {
                            devices.push(d);
                        }
                    }
                }
            }
        }
        let mut groups: BTreeMap<Vec<DeviceId>, u64> = BTreeMap::new();
        for metaop in plan.metagraph().metaops() {
            let Some(devices) = metaop_devices.get(&metaop.id()) else {
                continue;
            };
            if devices.len() <= 1 {
                continue;
            }
            let mut key = devices.clone();
            key.sort_unstable();
            let bytes = metaop.representative().param_bytes() * u64::from(metaop.num_ops());
            *groups.entry(key).or_insert(0) += bytes;
        }
        Self { groups }
    }

    /// Number of distinct device groups in the pool.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total bytes of parameters requiring synchronisation.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.groups.values().sum()
    }

    /// The groups and their synchronised byte volumes.
    #[must_use]
    pub fn groups(&self) -> Vec<(DeviceGroup, u64)> {
        self.groups
            .iter()
            .map(|(devices, &bytes)| (devices.iter().copied().collect(), bytes))
            .collect()
    }

    /// Total group-wise synchronisation time per iteration, seconds.
    #[must_use]
    pub fn sync_time(&self, comm: &CommModel) -> f64 {
        self.groups()
            .iter()
            .map(|(group, bytes)| comm.all_reduce_time(group, *bytes))
            .sum()
    }
}

/// Maps every original operator to the devices of the wave entry that executed
/// it, by walking each MetaOp's slices in order.
fn op_device_map(plan: &ExecutionPlan) -> BTreeMap<OpId, Vec<DeviceId>> {
    let mut consumed: BTreeMap<MetaOpId, usize> = BTreeMap::new();
    let mut map = BTreeMap::new();
    for wave in plan.waves() {
        for entry in &wave.entries {
            let metaop = plan.metagraph().metaop(entry.metaop);
            let start = *consumed.get(&entry.metaop).unwrap_or(&0);
            let end = (start + entry.layers as usize).min(metaop.ops().len());
            let devices: Vec<DeviceId> = entry
                .placement
                .as_ref()
                .map(|g| g.iter().collect())
                .unwrap_or_default();
            for &op in &metaop.ops()[start..end] {
                map.insert(op, devices.clone());
            }
            consumed.insert(entry.metaop, end);
        }
    }
    map
}

fn sorted(devices: &[DeviceId]) -> Vec<DeviceId> {
    let mut v = devices.to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_core::SpindleSession;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    /// Two tasks sharing a text encoder (same ParamIds) — the textbook case
    /// for cross-task parameter device groups.
    fn shared_encoder_graph() -> spindle_graph::ComputationGraph {
        let mut b = GraphBuilder::new();
        let t0 = b.add_task("audio-text", [Modality::Audio, Modality::Text], 8);
        let t1 = b.add_task("vision-text", [Modality::Vision, Modality::Text], 8);
        let shared: Vec<_> = (0..6).map(|_| b.new_param()).collect();
        let a = b
            .add_op_chain(
                t0,
                OpKind::Encoder(Modality::Audio),
                TensorShape::new(8, 229, 768),
                6,
            )
            .unwrap();
        let x0 = b
            .add_op_chain_with_params(
                t0,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                &shared,
            )
            .unwrap();
        let l0 = b
            .add_op(t0, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(*a.last().unwrap(), l0).unwrap();
        b.add_flow(*x0.last().unwrap(), l0).unwrap();
        let v = b
            .add_op_chain(
                t1,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(8, 257, 768),
                6,
            )
            .unwrap();
        let x1 = b
            .add_op_chain_with_params(
                t1,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(8, 77, 768),
                &shared,
            )
            .unwrap();
        let l1 = b
            .add_op(t1, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        b.add_flow(*v.last().unwrap(), l1).unwrap();
        b.add_flow(*x1.last().unwrap(), l1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shared_parameters_form_cross_task_groups() {
        let graph = shared_encoder_graph();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let pool = ParamGroupPool::from_plan(&plan, &graph);
        assert!(pool.num_groups() >= 1);
        assert!(pool.total_bytes() > 0);
        let comm = CommModel::new(&cluster);
        assert!(pool.sync_time(&comm) > 0.0);
        // The shared text-encoder parameters must be synchronised across a
        // group that is at least as large as either task's text placement.
        let largest = pool.groups().iter().map(|(g, _)| g.len()).max().unwrap();
        assert!(largest >= 2);
    }

    #[test]
    fn approximate_pool_is_usable_without_graph() {
        let graph = shared_encoder_graph();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let approx = ParamGroupPool::from_plan_approximate(&plan);
        let comm = CommModel::new(&cluster);
        assert!(approx.sync_time(&comm) >= 0.0);
    }

    #[test]
    fn single_device_entries_need_no_sync() {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text], 1);
        b.add_op(
            t,
            OpKind::Encoder(Modality::Text),
            TensorShape::new(1, 77, 768),
        )
        .unwrap();
        let graph = b.build().unwrap();
        let cluster = ClusterSpec::homogeneous(1, 1);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let pool = ParamGroupPool::from_plan(&plan, &graph);
        assert_eq!(pool.num_groups(), 0);
        assert_eq!(pool.total_bytes(), 0);
        assert!(pool.groups().is_empty());
    }
}
