//! Checkpoint/restore semantics: priced recovery of replicas no survivor
//! holds, and steady-state checkpoint-write charges.
//!
//! [`migration_flows`](crate::migration_flows) partitions post-churn state
//! movement into migratable flows (a surviving replica exists) and
//! [`RestoreFlow`](crate::RestoreFlow)s (every replica died). This module
//! prices the second kind: restore traffic streams from the checkpoint tier
//! over the cluster's [`StorageSpec`](spindle_cluster::StorageSpec) links —
//! per-node storage links behind a shared, oversubscribed spine — using the
//! same concurrent next-completion advance the migration pricer applies to
//! the compute fabric. On top of that, a [`CheckpointPolicy`] fixes *what*
//! can be restored: state is only as fresh as the last checkpoint, so a
//! re-materialised MetaOp drags every iteration since that checkpoint back
//! with it (lost-progress replay), and the checkpoints themselves cost
//! steady-state write stalls (synchronous) or background storage flows
//! contending with training traffic (`async_overlap`).

use std::collections::BTreeMap;

use spindle_cluster::{ClusterSpec, LinkId, NodeId};
use spindle_core::ExecutionPlan;

use crate::migrate::RestoreFlow;
use crate::sim::BackgroundFlow;

/// The identity sizing: checkpoint bytes equal the MetaOp's resident state
/// bytes (the default of [`CheckpointPolicy`]).
#[must_use]
pub fn full_state_bytes(state_bytes: u64) -> u64 {
    state_bytes
}

/// Adam-style sizing: parameters plus two optimizer moments, three times the
/// resident state bytes.
#[must_use]
pub fn adam_state_bytes(state_bytes: u64) -> u64 {
    state_bytes.saturating_mul(3)
}

/// When and how big checkpoints are.
///
/// `cadence_iters: None` disables checkpoint modeling entirely: no write
/// charges, no restore pricing, no replay — the optimistic pre-checkpoint
/// behavior, and the default.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// A checkpoint is written every this many iterations (`None` = never).
    pub cadence_iters: Option<u32>,
    /// Maps a MetaOp shard's resident state bytes to its checkpoint bytes
    /// (e.g. [`adam_state_bytes`] for params + Adam moments).
    pub bytes_per_metaop_fn: fn(u64) -> u64,
    /// `true` overlaps checkpoint writes with training: instead of a full
    /// synchronous stall, the write runs as background storage flows that
    /// contend with the iteration's own traffic in the event simulator, and
    /// only the induced slowdown is charged.
    pub async_overlap: bool,
}

impl CheckpointPolicy {
    /// A synchronous checkpoint every `cadence_iters` iterations with the
    /// default (full-state) sizing.
    #[must_use]
    pub fn every(cadence_iters: u32) -> Self {
        Self {
            cadence_iters: Some(cadence_iters.max(1)),
            ..Self::default()
        }
    }

    /// Checkpoint bytes of one shard holding `state_bytes` of resident state.
    #[must_use]
    pub fn checkpoint_bytes(&self, state_bytes: u64) -> u64 {
        (self.bytes_per_metaop_fn)(state_bytes)
    }

    /// `true` when checkpoint modeling is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cadence_iters.is_some()
    }

    /// Number of checkpoints written during `iterations` steady-state
    /// iterations (the phase starts from a checkpointed state).
    #[must_use]
    pub fn checkpoints_in(&self, iterations: u64) -> u64 {
        match self.cadence_iters {
            Some(k) => iterations / u64::from(k.max(1)),
            None => 0,
        }
    }

    /// Iterations lost when state must come back from the last checkpoint
    /// after `iterations_done` steady-state iterations — the progress past
    /// the most recent cadence boundary.
    #[must_use]
    pub fn replay_iterations(&self, iterations_done: u64) -> u64 {
        match self.cadence_iters {
            Some(k) => iterations_done % u64::from(k.max(1)),
            None => 0,
        }
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            cadence_iters: None,
            bytes_per_metaop_fn: full_state_bytes,
            async_overlap: false,
        }
    }
}

/// Prices a set of storage transfers (restores *or* checkpoint writes — the
/// tier is symmetric) on `cluster`: all flows start concurrently; with
/// `contended`, each flow runs at the rate of its most contended stage —
/// equal-share on its node's storage link, equal-share of the spine scaled
/// by the oversubscription ratio (see
/// [`StorageSpec::slowdown`](spindle_cluster::StorageSpec::slowdown)).
/// Flow bytes are scaled through `policy.bytes_per_metaop_fn` first. Returns
/// the makespan of the transfer set, seconds.
#[must_use]
pub fn price_restore(
    cluster: &ClusterSpec,
    flows: &[RestoreFlow],
    policy: &CheckpointPolicy,
    contended: bool,
) -> f64 {
    struct Active {
        remaining_s: f64,
        node: Option<NodeId>,
    }
    let storage = cluster.storage();
    let mut active: Vec<Active> = flows
        .iter()
        .map(|f| Active {
            remaining_s: storage.transfer_time(policy.checkpoint_bytes(f.bytes)),
            node: cluster.node_of(f.to).ok(),
        })
        .collect();
    let mut now = 0.0_f64;
    while !active.is_empty() {
        let mut node_flows: BTreeMap<Option<NodeId>, usize> = BTreeMap::new();
        for flow in &active {
            *node_flows.entry(flow.node).or_insert(0) += 1;
        }
        let spine_flows = active.len();
        let factor = |flow: &Active| {
            if contended {
                storage.slowdown(node_flows[&flow.node], spine_flows)
            } else {
                1.0
            }
        };
        // Next completion at current rates; rates only change at completions.
        let step = active
            .iter()
            .map(|f| f.remaining_s * factor(f))
            .fold(f64::INFINITY, f64::min);
        now += step;
        for flow in &mut active {
            let f = factor(flow);
            flow.remaining_s -= step / f;
        }
        let eps = 1e-12 * now.max(1.0);
        active.retain(|f| f.remaining_s > eps);
    }
    now
}

/// The storage flows of one full checkpoint of `plan`: every placed MetaOp
/// shard (one per hosting device, deduplicated across waves) writes its
/// state bytes to the tier. The same flow set read in reverse is a full
/// restore, so [`price_restore`] prices both directions.
#[must_use]
pub fn checkpoint_flows(plan: &ExecutionPlan) -> Vec<RestoreFlow> {
    let mut seen: BTreeMap<spindle_core::MetaOpId, Vec<spindle_cluster::DeviceId>> =
        BTreeMap::new();
    let mut flows = Vec::new();
    for wave in plan.waves() {
        for entry in &wave.entries {
            let Some(group) = &entry.placement else {
                continue;
            };
            if entry.memory_per_device == 0 {
                continue;
            }
            let sites = seen.entry(entry.metaop).or_default();
            for d in group.iter() {
                if !sites.contains(&d) {
                    sites.push(d);
                    flows.push(RestoreFlow {
                        metaop: entry.metaop,
                        to: d,
                        bytes: entry.memory_per_device,
                    });
                }
            }
        }
    }
    flows
}

/// Prices one synchronous full checkpoint write of `plan` on `cluster`: the
/// stall the training timeline pays per cadence boundary when
/// `async_overlap` is off.
#[must_use]
pub fn price_checkpoint_write(
    cluster: &ClusterSpec,
    plan: &ExecutionPlan,
    policy: &CheckpointPolicy,
    contended: bool,
) -> f64 {
    price_restore(cluster, &checkpoint_flows(plan), policy, contended)
}

/// Builds the background-flow set of one `async_overlap` checkpoint write
/// for injection into the event simulator
/// ([`SimConfig::background_flows`](crate::SimConfig)): each shard's write
/// leaves its node through the node's network egress (where it contends with
/// the iteration's inter-island traffic) and then crosses its storage link
/// and the shared spine.
#[must_use]
pub fn background_checkpoint_flows(
    cluster: &ClusterSpec,
    plan: &ExecutionPlan,
    policy: &CheckpointPolicy,
) -> Vec<BackgroundFlow> {
    let storage = cluster.storage();
    checkpoint_flows(plan)
        .iter()
        .filter_map(|f| {
            let node = cluster.node_of(f.to).ok()?;
            Some(BackgroundFlow {
                nominal_s: storage.transfer_time(policy.checkpoint_bytes(f.bytes)),
                footprint: vec![
                    LinkId::Uplink(node),
                    LinkId::StorageLink(node),
                    LinkId::StorageSpine,
                ],
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::{DeviceId, StorageSpec};
    use spindle_core::{MetaOpId, SpindleSession};
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn plan_on(nodes: usize, gpus: usize) -> (ExecutionPlan, ClusterSpec) {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Vision, Modality::Text], 32);
        let tower = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(32, 197, 768),
                6,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(32, 1, 768))
            .unwrap();
        b.add_flow(*tower.last().unwrap(), loss).unwrap();
        let graph = b.build().unwrap();
        let cluster = ClusterSpec::homogeneous(nodes, gpus);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        (plan, cluster)
    }

    #[test]
    fn policy_cadence_accounting() {
        let p = CheckpointPolicy::every(4);
        assert!(p.enabled());
        assert_eq!(p.checkpoints_in(11), 2);
        assert_eq!(p.replay_iterations(11), 3);
        assert_eq!(p.replay_iterations(8), 0);
        let off = CheckpointPolicy::default();
        assert!(!off.enabled());
        assert_eq!(off.checkpoints_in(100), 0);
        assert_eq!(off.replay_iterations(100), 0);
    }

    #[test]
    fn lone_restore_matches_the_storage_spec() {
        let (_, cluster) = plan_on(1, 4);
        let policy = CheckpointPolicy::every(1);
        let flows = vec![RestoreFlow {
            metaop: MetaOpId(0),
            to: DeviceId(0),
            bytes: 1 << 30,
        }];
        let t = price_restore(&cluster, &flows, &policy, true);
        let expected = cluster.storage().transfer_time(1 << 30);
        assert!((t - expected).abs() < 1e-9, "{t} vs {expected}");
    }

    #[test]
    fn same_node_restores_share_the_storage_link() {
        let (_, cluster) = plan_on(2, 4);
        let policy = CheckpointPolicy::every(1);
        let same_node: Vec<RestoreFlow> = (0..3)
            .map(|i| RestoreFlow {
                metaop: MetaOpId(i),
                to: DeviceId(i),
                bytes: 1 << 30,
            })
            .collect();
        let lone = price_restore(&cluster, &same_node[..1], &policy, true);
        let shared = price_restore(&cluster, &same_node, &policy, true);
        assert!(
            shared > lone * 2.5,
            "three flows on one storage link must run near a third rate: {shared} vs {lone}"
        );
        // Spread across nodes, the same three flows only meet at the spine,
        // which has 4x node-link headroom — no slowdown.
        let spread: Vec<RestoreFlow> = (0..2)
            .map(|i| RestoreFlow {
                metaop: MetaOpId(i),
                to: DeviceId(4 * i),
                bytes: 1 << 30,
            })
            .collect();
        let spread_t = price_restore(&cluster, &spread, &policy, true);
        assert!((spread_t - lone).abs() < 1e-9);
    }

    #[test]
    fn oversubscribed_spine_throttles_cluster_wide_restores() {
        // 8 nodes, one flow each: the 2x-oversubscribed default spine halves
        // every flow's rate even though each node link is alone.
        let (_, cluster) = plan_on(8, 1);
        let policy = CheckpointPolicy::every(1);
        let flows: Vec<RestoreFlow> = (0..8)
            .map(|i| RestoreFlow {
                metaop: MetaOpId(i),
                to: DeviceId(i),
                bytes: 1 << 30,
            })
            .collect();
        let lone = price_restore(&cluster, &flows[..1], &policy, true);
        let all = price_restore(&cluster, &flows, &policy, true);
        assert!(
            (all / lone - 2.0).abs() < 0.05,
            "8 node-disjoint flows over a 4x spine must halve: {all} vs {lone}"
        );
        // Uncontended pricing ignores the sharing entirely.
        let relaxed = price_restore(&cluster, &flows, &policy, false);
        assert!((relaxed - lone).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_flows_cover_every_placed_shard_once() {
        let (plan, cluster) = plan_on(2, 4);
        let flows = checkpoint_flows(&plan);
        assert!(!flows.is_empty());
        let mut keys: Vec<(MetaOpId, DeviceId)> = flows.iter().map(|f| (f.metaop, f.to)).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), n, "no shard is written twice");
        let policy = CheckpointPolicy::every(1);
        let write = price_checkpoint_write(&cluster, &plan, &policy, true);
        assert!(write > 0.0);
        // Bigger checkpoints (Adam sizing) can only take longer.
        let adam = CheckpointPolicy {
            bytes_per_metaop_fn: adam_state_bytes,
            ..policy
        };
        assert!(price_checkpoint_write(&cluster, &plan, &adam, true) > write);
    }

    #[test]
    fn slower_storage_prices_higher() {
        let (plan, cluster) = plan_on(2, 4);
        let policy = CheckpointPolicy::every(1);
        let fast = price_checkpoint_write(&cluster, &plan, &policy, true);
        let slow_cluster = cluster.clone().with_storage(StorageSpec {
            node_bandwidth: 1e9,
            spine_bandwidth: 4e9,
            latency_s: 2e-3,
        });
        let slow = price_checkpoint_write(&slow_cluster, &plan, &policy, true);
        assert!(slow > fast * 2.0, "{slow} vs {fast}");
    }

    #[test]
    fn background_flows_name_egress_and_storage_links() {
        let (plan, cluster) = plan_on(2, 4);
        let policy = CheckpointPolicy::every(1);
        let bg = background_checkpoint_flows(&cluster, &plan, &policy);
        assert_eq!(bg.len(), checkpoint_flows(&plan).len());
        for flow in &bg {
            assert!(flow.nominal_s > 0.0);
            assert!(flow.footprint.contains(&LinkId::StorageSpine));
            assert!(flow
                .footprint
                .iter()
                .any(|l| matches!(l, LinkId::Uplink(_))));
        }
    }
}
