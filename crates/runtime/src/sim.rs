//! The discrete-event runtime simulator.
//!
//! Where [`RuntimeEngine`](crate::RuntimeEngine) prices one iteration in
//! closed form (sum of wave makespan, transmission time and sync time), this
//! module *executes* the plan op by op on a simulated timeline: every sliced
//! MetaOp becomes a compute event, every inter-wave transmission and parameter
//! all-reduce becomes a flow whose service rate depends on how many concurrent
//! flows share its most contended link, and per-device speed factors,
//! straggler windows and seeded perturbations distort the timeline the way a
//! real cluster would.
//!
//! In the default configuration ([`SimConfig::default`]: serialized
//! communication, no contention, no perturbation) the simulated makespan
//! reproduces the analytical engine's iteration time — the cross-check oracle
//! the invariant tests pin to within 1%. Enable [`CommMode::Overlapped`] and
//! contention to explore the regimes the closed-form model cannot express.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use spindle_cluster::{
    collective_footprint, transfer_footprint, ClusterSpec, CommModel, DeviceId, LinkId,
    LinkOccupancy,
};
use spindle_core::{ExecutionPlan, MetaOpId};
use spindle_graph::ComputationGraph;

use crate::engine::{EngineConfig, IntoShared};
use crate::events::{EventLog, EventQueue, SimEventKind, XorShift64Star};
use crate::localize::LocalizedPlan;
use crate::metrics::{sample_utilization_trace, ComputeInterval, UtilizationSample};
use crate::RuntimeError;

/// How inter-wave transmissions and parameter syncs occupy the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommMode {
    /// Flows of a wave boundary (and the final sync stage) run one after
    /// another — the semantics of the closed-form analytical engine, used for
    /// cross-checking.
    #[default]
    Serialized,
    /// Flows of a boundary (and all parameter syncs) are issued concurrently;
    /// with contention enabled they share link bandwidth.
    Overlapped,
}

/// A transient slowdown of one device — a straggling GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// The straggling device.
    pub device: DeviceId,
    /// Execution-time multiplier while the window is active (2.0 = twice as
    /// slow). Values below 1 are treated as 1 (no speed-up via stragglers).
    pub slowdown: f64,
    /// Start of the straggle window, seconds of simulated time.
    pub from_s: f64,
    /// End of the straggle window, seconds of simulated time.
    pub until_s: f64,
}

impl Straggler {
    /// A straggler active for the whole run.
    #[must_use]
    pub fn persistent(device: DeviceId, slowdown: f64) -> Self {
        Self {
            device,
            slowdown,
            from_s: 0.0,
            until_s: f64::INFINITY,
        }
    }
}

/// A device-death fault: at `at_s` simulated seconds into the iteration the
/// listed devices die. Whatever they were computing at that instant is lost
/// (the wave can never complete its barrier), the iteration aborts, and the
/// caller is expected to re-plan onto the survivors — the elastic-cluster
/// path [`DynamicRunLoop`](crate::DynamicRunLoop) drives end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Fault instant, simulated seconds since the start of the iteration.
    pub at_s: f64,
    /// The devices that die.
    pub devices: Vec<DeviceId>,
}

/// What a [`FaultSpec`] did to the iteration it interrupted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// `true` if the fault instant fell inside the iteration. When the
    /// iteration finished first, the report is all zeros except `at_s`.
    pub fired: bool,
    /// The effective fault instant, simulated seconds.
    pub at_s: f64,
    /// Compute seconds already spent on in-flight entries that involved a
    /// dead device — work the fault discarded.
    pub wasted_compute_s: f64,
    /// In-flight entries killed because a dead device was in their group.
    pub killed_entries: usize,
    /// Waves that had fully completed (including their boundary flows) when
    /// the fault fired.
    pub completed_waves: usize,
}

/// A flow that runs *underneath* the iteration — checkpoint writes being
/// streamed out while training continues ([`CheckpointPolicy::async_overlap`]
/// mode, see [`background_checkpoint_flows`](crate::background_checkpoint_flows)).
/// Background flows are issued at iteration start, contend for their
/// footprint links like any training flow, but never gate a stage barrier:
/// the iteration ends when the plan's own work ends, and whatever background
/// service is still outstanding simply continues past the horizon. They only
/// have an observable effect under [`CommMode::Overlapped`] with contention
/// enabled — in serialized or contention-free runs they are skipped.
///
/// [`CheckpointPolicy::async_overlap`]: crate::CheckpointPolicy
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundFlow {
    /// Service time of the flow alone on its links, seconds.
    pub nominal_s: f64,
    /// The shared links the flow occupies.
    pub footprint: Vec<LinkId>,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Seed of the xorshift generator behind compute-time perturbations.
    pub seed: u64,
    /// Network occupancy semantics.
    pub comm_mode: CommMode,
    /// Share link bandwidth among concurrent flows (only observable with
    /// [`CommMode::Overlapped`], where flows can actually overlap).
    pub contention: bool,
    /// Relative compute-time jitter: each compute event's duration is
    /// multiplied by `1 + U(-jitter, +jitter)` drawn from a per-event seeded
    /// stream. `0.0` disables perturbation entirely.
    pub compute_jitter: f64,
    /// Per-device speed factors for heterogeneous clusters (1.0 = nominal,
    /// 0.5 = half speed). Devices not listed run at nominal speed. An entry
    /// runs at the speed of the *slowest* device in its group.
    pub speed_factors: BTreeMap<DeviceId, f64>,
    /// Injected straggler windows.
    pub stragglers: Vec<Straggler>,
    /// Background flows (e.g. an overlapped checkpoint write) issued at
    /// iteration start; observable only with [`CommMode::Overlapped`] and
    /// contention.
    pub background_flows: Vec<BackgroundFlow>,
    /// Engine knobs shared with the analytical engine (utilization-trace
    /// resolution).
    pub engine: EngineConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            comm_mode: CommMode::Serialized,
            contention: false,
            compute_jitter: 0.0,
            speed_factors: BTreeMap::new(),
            stragglers: Vec::new(),
            background_flows: Vec::new(),
            engine: EngineConfig::default(),
        }
    }
}

impl SimConfig {
    /// The realistic configuration: overlapped communication with link
    /// contention.
    #[must_use]
    pub fn contended() -> Self {
        Self {
            comm_mode: CommMode::Overlapped,
            contention: true,
            ..Self::default()
        }
    }
}

/// The result of simulating one training iteration.
#[derive(Debug, Clone)]
pub struct SimReport {
    total_s: f64,
    compute_s: f64,
    comm_s: f64,
    sync_s: f64,
    device_busy_s: BTreeMap<DeviceId, f64>,
    utilization_trace: Vec<UtilizationSample>,
    event_log: EventLog,
    flows_executed: usize,
    syncs_executed: usize,
}

impl SimReport {
    /// End-to-end simulated iteration time, seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// End-to-end simulated iteration time, milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_s * 1e3
    }

    /// Time spent inside wave compute stages, seconds.
    #[must_use]
    pub fn compute_s(&self) -> f64 {
        self.compute_s
    }

    /// Time spent blocked on inter-wave transmissions, seconds.
    #[must_use]
    pub fn comm_s(&self) -> f64 {
        self.comm_s
    }

    /// Time spent in group-wise parameter synchronisation, seconds.
    #[must_use]
    pub fn sync_s(&self) -> f64 {
        self.sync_s
    }

    /// Busy seconds of every device (compute only).
    #[must_use]
    pub fn device_busy_s(&self) -> &BTreeMap<DeviceId, f64> {
        &self.device_busy_s
    }

    /// Cluster throughput over the simulated timeline, sampled at the
    /// configured trace resolution.
    #[must_use]
    pub fn utilization_trace(&self) -> &[UtilizationSample] {
        &self.utilization_trace
    }

    /// The deterministic event log of the run.
    #[must_use]
    pub fn event_log(&self) -> &EventLog {
        &self.event_log
    }

    /// Number of inter-wave transmissions executed.
    #[must_use]
    pub fn flows_executed(&self) -> usize {
        self.flows_executed
    }

    /// Number of parameter-group all-reduces executed.
    #[must_use]
    pub fn syncs_executed(&self) -> usize {
        self.syncs_executed
    }

    /// Relative gap of the simulated iteration time versus a reference time
    /// (e.g. the analytical engine's): `(simulated - reference) / reference`.
    #[must_use]
    pub fn gap_vs(&self, reference_s: f64) -> f64 {
        if reference_s <= 0.0 {
            return 0.0;
        }
        (self.total_s - reference_s) / reference_s
    }

    /// Asserts that the simulated iteration time stays within `tolerance`
    /// (relative, two-sided) of an analytical reference — the
    /// analytical-vs-simulator cross-check the scenario fuzzer enforces on
    /// every randomized draw. Returns the gap on success so callers can
    /// aggregate worst-case statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::GapExceeded`] with both sides and the gap if
    /// `|gap| > tolerance`.
    pub fn check_gap_within(&self, reference_s: f64, tolerance: f64) -> Result<f64, RuntimeError> {
        let gap = self.gap_vs(reference_s);
        if gap.abs() > tolerance {
            return Err(RuntimeError::GapExceeded {
                simulated_s: self.total_s,
                reference_s,
                gap,
                tolerance,
            });
        }
        Ok(gap)
    }
}

/// The discrete-event simulator for one execution plan on one cluster.
#[derive(Debug)]
pub struct Simulator {
    plan: Arc<ExecutionPlan>,
    cluster: ClusterSpec,
    comm: CommModel,
    graph: Option<Arc<ComputationGraph>>,
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `plan` on `cluster`. Accepts the plan by
    /// value, by `Arc`, or by reference (cloning) — like the analytical
    /// engine.
    #[must_use]
    pub fn new(plan: impl IntoShared<ExecutionPlan>, cluster: &ClusterSpec) -> Self {
        Self {
            plan: plan.into_shared(),
            cluster: cluster.clone(),
            comm: CommModel::new(cluster),
            graph: None,
            config: SimConfig::default(),
        }
    }

    /// Attaches the original computation graph for exact parameter device
    /// groups (cross-task parameter sharing).
    #[must_use]
    pub fn with_graph(mut self, graph: impl IntoShared<ComputationGraph>) -> Self {
        self.graph = Some(graph.into_shared());
        self
    }

    /// Overrides the simulation configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Simulates one training iteration event by event.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidPlan`] if the plan fails validation or
    /// lacks placement, and [`RuntimeError::ClusterMismatch`] if the plan was
    /// built for more devices than the cluster has.
    pub fn run_iteration(&self) -> Result<SimReport, RuntimeError> {
        let localized =
            LocalizedPlan::new(Arc::clone(&self.plan), &self.cluster, self.graph.as_deref())?;
        let mut run = Run::new(&localized, &self.cluster, &self.comm, &self.config);
        run.execute();
        Ok(run.into_report())
    }

    /// Simulates one training iteration with a device-death fault armed: if
    /// the fault instant falls inside the iteration, the listed devices die
    /// at that instant, every in-flight entry touching them is killed, and
    /// the iteration aborts there (the returned report's makespan is the
    /// fault instant). If the iteration finishes first, the fault never
    /// fires and the run is identical to [`Self::run_iteration`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::run_iteration`].
    pub fn run_iteration_with_fault(
        &self,
        fault: &FaultSpec,
    ) -> Result<(SimReport, FaultReport), RuntimeError> {
        let localized =
            LocalizedPlan::new(Arc::clone(&self.plan), &self.cluster, self.graph.as_deref())?;
        let mut run = Run::new(&localized, &self.cluster, &self.comm, &self.config);
        run.fault = Some(fault);
        run.execute();
        let fault_report = run.fault_report.take().unwrap_or(FaultReport {
            fired: false,
            at_s: fault.at_s,
            completed_waves: localized.plan().num_waves(),
            ..FaultReport::default()
        });
        Ok((run.into_report(), fault_report))
    }
}

/// An inter-wave transmission or parameter sync waiting to be serviced.
#[derive(Debug, Clone)]
struct FlowSpec {
    nominal_s: f64,
    footprint: Vec<LinkId>,
    label: FlowLabel,
}

#[derive(Debug, Clone, Copy)]
enum FlowLabel {
    Transmission {
        from: MetaOpId,
        to: MetaOpId,
    },
    Sync {
        group: usize,
    },
    /// A background flow: contends for links but never gates a stage.
    Background,
}

#[derive(Debug)]
struct ActiveFlow {
    remaining_s: f64,
    rate: f64,
    last_settle_s: f64,
    footprint: Vec<LinkId>,
    label: FlowLabel,
    epoch: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Compute,
    Boundary,
    Sync,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    ComputeEnd { wave: usize, entry: usize },
    FlowEnd { id: usize, epoch: u64 },
}

struct Run<'a> {
    localized: &'a LocalizedPlan,
    cluster: &'a ClusterSpec,
    comm: &'a CommModel,
    config: &'a SimConfig,
    queue: EventQueue<Ev>,
    log: EventLog,
    now: f64,
    done: bool,
    stage: Stage,
    wave: usize,
    wave_start: f64,
    outstanding_compute: usize,
    stage_start: f64,
    serial_pending: VecDeque<FlowSpec>,
    /// Reusable staging buffer for the flow specs of one boundary/sync stage,
    /// so steady-state wave boundaries allocate no fresh `Vec` per stage.
    spec_buf: Vec<FlowSpec>,
    outstanding_flows: usize,
    flows: Vec<Option<ActiveFlow>>,
    occupancy: LinkOccupancy,
    compute_s: f64,
    comm_s: f64,
    sync_s: f64,
    device_busy: BTreeMap<DeviceId, f64>,
    intervals: Vec<ComputeInterval>,
    flows_executed: usize,
    syncs_executed: usize,
    /// Outstanding compute entries of the current wave: `(entry index,
    /// scheduled end)` — what a mid-wave fault kills.
    inflight: Vec<(usize, f64)>,
    fault: Option<&'a FaultSpec>,
    fault_report: Option<FaultReport>,
}

impl<'a> Run<'a> {
    fn new(
        localized: &'a LocalizedPlan,
        cluster: &'a ClusterSpec,
        comm: &'a CommModel,
        config: &'a SimConfig,
    ) -> Self {
        Self {
            localized,
            cluster,
            comm,
            config,
            queue: EventQueue::new(),
            log: EventLog::default(),
            now: 0.0,
            done: false,
            stage: Stage::Compute,
            wave: 0,
            wave_start: 0.0,
            outstanding_compute: 0,
            stage_start: 0.0,
            serial_pending: VecDeque::new(),
            spec_buf: Vec::new(),
            outstanding_flows: 0,
            flows: Vec::new(),
            occupancy: LinkOccupancy::new(),
            compute_s: 0.0,
            comm_s: 0.0,
            sync_s: 0.0,
            device_busy: BTreeMap::new(),
            intervals: Vec::new(),
            flows_executed: 0,
            syncs_executed: 0,
            inflight: Vec::new(),
            fault: None,
            fault_report: None,
        }
    }

    fn execute(&mut self) {
        // Background flows contend from t=0; without overlapped contention
        // they could never interact with the iteration, so skip them.
        if self.config.comm_mode == CommMode::Overlapped && self.config.contention {
            let specs: Vec<FlowSpec> = self
                .config
                .background_flows
                .iter()
                .map(|bg| FlowSpec {
                    nominal_s: bg.nominal_s,
                    footprint: bg.footprint.clone(),
                    label: FlowLabel::Background,
                })
                .collect();
            for spec in specs {
                self.start_flow(spec);
            }
        }
        if self.localized.plan().num_waves() == 0 {
            self.start_sync();
        } else {
            self.schedule_wave(0);
        }
        while !self.done {
            let Some((t, ev)) = self.queue.pop() else {
                // Defensive: an empty queue before IterationEnd means every
                // stage has drained; finish at the current time.
                self.finish();
                break;
            };
            if let Some(fault) = self.fault {
                if self.fault_report.is_none() && fault.at_s <= t {
                    self.fire_fault(fault);
                    break;
                }
            }
            self.now = self.now.max(t);
            match ev {
                Ev::ComputeEnd { wave, entry } => self.on_compute_end(wave, entry),
                Ev::FlowEnd { id, epoch } => self.on_flow_end(id, epoch),
            }
        }
    }

    /// Effective speed of `device` at instant `t` (1.0 nominal; smaller is
    /// slower).
    fn effective_speed(&self, device: DeviceId, t: f64) -> f64 {
        let mut speed = self
            .config
            .speed_factors
            .get(&device)
            .copied()
            .unwrap_or(1.0)
            .max(1e-6);
        for s in &self.config.stragglers {
            if s.device == device && t >= s.from_s && t < s.until_s {
                speed /= s.slowdown.max(1.0);
            }
        }
        speed
    }

    /// Speed of the slowest device in `group` at instant `t` — the pace the
    /// whole entry runs at.
    fn group_speed(&self, group: &spindle_cluster::DeviceGroup, t: f64) -> f64 {
        group
            .iter()
            .map(|d| self.effective_speed(d, t))
            .fold(f64::INFINITY, f64::min)
            .max(1e-6)
    }

    /// Wall-clock duration of `exec_time` nominal seconds of work on `group`
    /// starting at `start`: the group-speed profile is piecewise-constant
    /// (it changes only at straggler-window edges), so the work integral is
    /// walked segment by segment. Without stragglers this is exactly
    /// `exec_time / group_speed(start)`.
    fn entry_wall_duration(
        &self,
        group: &spindle_cluster::DeviceGroup,
        start: f64,
        exec_time: f64,
    ) -> f64 {
        let mut breakpoints: Vec<f64> = self
            .config
            .stragglers
            .iter()
            .filter(|s| group.contains(s.device))
            .flat_map(|s| [s.from_s, s.until_s])
            .filter(|&b| b > start && b.is_finite())
            .collect();
        breakpoints.sort_by(f64::total_cmp);
        breakpoints.dedup();
        let mut t = start;
        let mut remaining = exec_time;
        for b in breakpoints {
            let speed = self.group_speed(group, t);
            let capacity = (b - t) * speed;
            if capacity >= remaining {
                return t + remaining / speed - start;
            }
            remaining -= capacity;
            t = b;
        }
        t + remaining / self.group_speed(group, t) - start
    }

    fn schedule_wave(&mut self, w: usize) {
        self.stage = Stage::Compute;
        self.wave = w;
        self.wave_start = self.now;
        let wave = &self.localized.plan().waves()[w];
        self.outstanding_compute = wave.entries.len();
        self.inflight.clear();
        for (idx, entry) in wave.entries.iter().enumerate() {
            let group = entry
                .placement
                .as_ref()
                .expect("localisation requires placement");
            let mut duration = self.entry_wall_duration(group, self.now, entry.exec_time);
            if self.config.compute_jitter > 0.0 {
                // One independent stream per (wave, entry) so perturbations do
                // not depend on event-processing order.
                let stream = self
                    .config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((w as u64) << 20)
                    .wrapping_add(idx as u64);
                let u = XorShift64Star::new(stream).next_f64();
                let factor = 1.0 + self.config.compute_jitter * (2.0 * u - 1.0);
                duration *= factor.max(0.01);
            }
            let rep = self
                .localized
                .plan()
                .metagraph()
                .metaop(entry.metaop)
                .representative();
            let flops = rep.flops_total() * f64::from(entry.layers);
            self.intervals.push(ComputeInterval {
                start_s: self.now,
                end_s: self.now + duration,
                flops_per_s: flops / duration.max(1e-12),
            });
            for d in group.iter() {
                *self.device_busy.entry(d).or_insert(0.0) += duration;
            }
            self.log.push(
                self.now,
                SimEventKind::ComputeStart {
                    wave: w,
                    metaop: entry.metaop,
                    devices: entry.devices,
                },
            );
            self.inflight.push((idx, self.now + duration));
            self.queue.push(
                self.now + duration,
                Ev::ComputeEnd {
                    wave: w,
                    entry: idx,
                },
            );
        }
        if self.outstanding_compute == 0 {
            self.wave_complete();
        }
    }

    fn on_compute_end(&mut self, wave: usize, entry: usize) {
        let metaop = self.localized.plan().waves()[wave].entries[entry].metaop;
        self.log
            .push(self.now, SimEventKind::ComputeEnd { wave, metaop });
        self.inflight.retain(|&(idx, _)| idx != entry);
        self.outstanding_compute -= 1;
        if self.outstanding_compute == 0 {
            self.wave_complete();
        }
    }

    fn wave_complete(&mut self) {
        self.log
            .push(self.now, SimEventKind::WaveComplete { wave: self.wave });
        self.compute_s += self.now - self.wave_start;
        self.start_boundary();
    }

    fn start_boundary(&mut self) {
        // Stage the boundary's flows in the reusable scratch buffer (taken
        // out of `self` for the duration of the fill to appease borrows; its
        // capacity survives the round-trip).
        let mut specs = std::mem::take(&mut self.spec_buf);
        specs.clear();
        specs.extend(self.localized.sites_after_wave(self.wave).map(|site| {
            let t = &site.transmission;
            FlowSpec {
                nominal_s: t.round_trip_time(self.comm),
                footprint: transfer_footprint(self.cluster, &t.src, &t.dst),
                label: FlowLabel::Transmission {
                    from: t.from,
                    to: t.to,
                },
            }
        }));
        self.stage = Stage::Boundary;
        self.stage_start = self.now;
        if specs.is_empty() {
            self.spec_buf = specs;
            self.advance();
        } else {
            self.issue(&mut specs);
            self.spec_buf = specs;
        }
    }

    fn advance(&mut self) {
        if self.wave + 1 < self.localized.plan().num_waves() {
            self.schedule_wave(self.wave + 1);
        } else {
            self.start_sync();
        }
    }

    fn start_sync(&mut self) {
        let mut specs = std::mem::take(&mut self.spec_buf);
        specs.clear();
        specs.extend(self.localized.pool().groups().iter().enumerate().map(
            |(i, (group, bytes))| FlowSpec {
                nominal_s: self.comm.all_reduce_time(group, *bytes),
                footprint: collective_footprint(self.cluster, group),
                label: FlowLabel::Sync { group: i },
            },
        ));
        self.stage = Stage::Sync;
        self.stage_start = self.now;
        if specs.is_empty() {
            self.spec_buf = specs;
            self.finish();
        } else {
            self.issue(&mut specs);
            self.spec_buf = specs;
        }
    }

    fn issue(&mut self, specs: &mut Vec<FlowSpec>) {
        self.outstanding_flows = specs.len();
        match self.config.comm_mode {
            CommMode::Serialized => {
                self.serial_pending.extend(specs.drain(..));
                self.start_next_serial();
            }
            CommMode::Overlapped => {
                for spec in specs.drain(..) {
                    self.start_flow(spec);
                }
            }
        }
    }

    fn start_next_serial(&mut self) {
        if let Some(spec) = self.serial_pending.pop_front() {
            self.start_flow(spec);
        }
    }

    fn start_flow(&mut self, spec: FlowSpec) {
        match spec.label {
            FlowLabel::Transmission { from, to } => {
                self.log
                    .push(self.now, SimEventKind::FlowStart { from, to });
            }
            FlowLabel::Sync { group } => {
                self.log.push(self.now, SimEventKind::SyncStart { group });
            }
            FlowLabel::Background => {}
        }
        if !self.config.contention {
            // Rates never change without contention: schedule the completion
            // once and never settle or reprice.
            let id = self.flows.len();
            self.queue
                .push(self.now + spec.nominal_s, Ev::FlowEnd { id, epoch: 0 });
            self.flows.push(Some(ActiveFlow {
                remaining_s: spec.nominal_s,
                rate: 1.0,
                last_settle_s: self.now,
                footprint: spec.footprint,
                label: spec.label,
                epoch: 0,
            }));
            return;
        }
        self.settle_flows();
        self.occupancy.register(&spec.footprint);
        self.flows.push(Some(ActiveFlow {
            remaining_s: spec.nominal_s,
            // Negative sentinel: guarantees the first reprice sees a changed
            // rate and schedules this flow's completion event.
            rate: -1.0,
            last_settle_s: self.now,
            footprint: spec.footprint,
            label: spec.label,
            epoch: 0,
        }));
        self.reprice_flows();
    }

    /// Advances every active flow's remaining service to the current time at
    /// its current rate (contention mode only — without contention the
    /// completion is scheduled once at start and never revisited).
    fn settle_flows(&mut self) {
        for flow in self.flows.iter_mut().flatten() {
            let elapsed = self.now - flow.last_settle_s;
            flow.remaining_s = (flow.remaining_s - elapsed * flow.rate.max(0.0)).max(0.0);
            flow.last_settle_s = self.now;
        }
    }

    /// Recomputes active flows' service rates from current link occupancy and
    /// re-schedules the completion events of flows whose rate actually
    /// changed. A flow with an unchanged rate keeps its scheduled event —
    /// settling preserves `last_settle + remaining/rate` — so only genuinely
    /// affected flows churn the queue; stale events are invalidated through
    /// the epoch counter.
    fn reprice_flows(&mut self) {
        let mut updates: Vec<(usize, f64, u64)> = Vec::new();
        for (id, slot) in self.flows.iter_mut().enumerate() {
            let Some(flow) = slot else { continue };
            let congestion = self.occupancy.congestion(&flow.footprint);
            let rate = 1.0 / congestion as f64;
            if rate == flow.rate {
                continue;
            }
            flow.rate = rate;
            flow.epoch += 1;
            updates.push((id, self.now + flow.remaining_s / rate, flow.epoch));
        }
        for (id, at, epoch) in updates {
            self.queue.push(at, Ev::FlowEnd { id, epoch });
        }
    }

    fn on_flow_end(&mut self, id: usize, epoch: u64) {
        let stale = match &self.flows[id] {
            Some(flow) => flow.epoch != epoch,
            None => true,
        };
        if stale {
            return;
        }
        if self.config.contention {
            self.settle_flows();
        }
        let flow = self.flows[id].take().expect("flow checked active");
        if self.config.contention {
            self.occupancy.release(&flow.footprint);
            self.reprice_flows();
        }
        match flow.label {
            FlowLabel::Transmission { from, to } => {
                self.log.push(self.now, SimEventKind::FlowEnd { from, to });
                self.flows_executed += 1;
            }
            FlowLabel::Sync { group } => {
                self.log.push(self.now, SimEventKind::SyncEnd { group });
                self.syncs_executed += 1;
            }
            // Background flows gate nothing: release their links (already
            // done above) and leave every stage counter untouched.
            FlowLabel::Background => return,
        }
        self.outstanding_flows -= 1;
        if self.config.comm_mode == CommMode::Serialized {
            self.start_next_serial();
        }
        if self.outstanding_flows == 0 {
            match self.stage {
                Stage::Boundary => {
                    self.comm_s += self.now - self.stage_start;
                    self.advance();
                }
                Stage::Sync => {
                    self.sync_s += self.now - self.stage_start;
                    self.finish();
                }
                Stage::Compute => unreachable!("flows only complete in comm stages"),
            }
        }
    }

    /// The device-death fault fires: in-flight entries touching a dead
    /// device are killed (their compute so far counted as wasted), busy-time
    /// accounting is trimmed to the fault instant for every outstanding
    /// entry, and the iteration aborts there.
    fn fire_fault(&mut self, fault: &FaultSpec) {
        self.now = self.now.max(fault.at_s);
        let mut wasted = 0.0;
        let mut killed = 0;
        let completed_waves;
        match self.stage {
            Stage::Compute => {
                completed_waves = self.wave;
                let elapsed = self.now - self.wave_start;
                let wave = &self.localized.plan().waves()[self.wave];
                for &(idx, scheduled_end) in &self.inflight {
                    let group = wave.entries[idx]
                        .placement
                        .as_ref()
                        .expect("localisation requires placement");
                    if fault.devices.iter().any(|&d| group.contains(d)) {
                        wasted += elapsed;
                        killed += 1;
                    }
                    // No outstanding entry runs past the fault: trim the
                    // busy seconds credited up front at schedule time.
                    let overrun = (scheduled_end - self.now).max(0.0);
                    for d in group.iter() {
                        if let Some(busy) = self.device_busy.get_mut(&d) {
                            *busy = (*busy - overrun).max(0.0);
                        }
                    }
                }
                self.compute_s += elapsed;
            }
            Stage::Boundary => {
                completed_waves = self.wave + 1;
                self.comm_s += self.now - self.stage_start;
            }
            Stage::Sync => {
                completed_waves = self.localized.plan().num_waves();
                self.sync_s += self.now - self.stage_start;
            }
        }
        self.log.push(
            self.now,
            SimEventKind::DeviceFault {
                devices: fault.devices.len(),
                killed,
            },
        );
        self.fault_report = Some(FaultReport {
            fired: true,
            at_s: self.now,
            wasted_compute_s: wasted,
            killed_entries: killed,
            completed_waves,
        });
        self.finish();
    }

    fn finish(&mut self) {
        if !self.done {
            self.log.push(self.now, SimEventKind::IterationEnd);
            self.done = true;
        }
    }

    fn into_report(self) -> SimReport {
        let trace =
            sample_utilization_trace(&self.intervals, self.now, self.config.engine.trace_samples);
        SimReport {
            total_s: self.now,
            compute_s: self.compute_s,
            comm_s: self.comm_s,
            sync_s: self.sync_s,
            device_busy_s: self.device_busy,
            utilization_trace: trace,
            event_log: self.log,
            flows_executed: self.flows_executed,
            syncs_executed: self.syncs_executed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeEngine;
    use spindle_core::SpindleSession;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn two_task_graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        for (name, m, seq, batch, layers) in [
            ("audio-text", Modality::Audio, 229u32, 128u32, 12usize),
            ("vision-text", Modality::Vision, 257, 64, 24),
        ] {
            let t = b.add_task(name, [m, Modality::Text], batch);
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(m),
                    TensorShape::new(batch, seq, 768),
                    layers,
                )
                .unwrap();
            let text = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Text),
                    TensorShape::new(batch, 77, 768),
                    12,
                )
                .unwrap();
            let loss = b
                .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
            b.add_flow(*text.last().unwrap(), loss).unwrap();
        }
        b.build().unwrap()
    }

    fn plan_on(nodes: usize, gpus: usize) -> (ExecutionPlan, ComputationGraph, ClusterSpec) {
        let graph = two_task_graph();
        let cluster = ClusterSpec::homogeneous(nodes, gpus);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        (plan, graph, cluster)
    }

    #[test]
    fn serialized_contention_free_matches_analytical_engine() {
        let (plan, graph, cluster) = plan_on(2, 8);
        let analytical = RuntimeEngine::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let sim = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let gap = sim.gap_vs(analytical.iteration_time_s()).abs();
        assert!(
            gap < 0.01,
            "gap {gap}: sim {} vs analytical {}",
            sim.total_s(),
            analytical.iteration_time_s()
        );
        // The stage breakdown matches the closed-form breakdown too.
        let b = analytical.breakdown();
        assert!((sim.compute_s() - b.fwd_bwd_s).abs() / b.fwd_bwd_s < 0.01);
        assert!((sim.comm_s() - b.send_recv_s).abs() <= b.send_recv_s * 0.01 + 1e-12);
        assert!((sim.sync_s() - b.sync_s).abs() <= b.sync_s * 0.01 + 1e-12);
    }

    #[test]
    fn overlapped_flows_never_slow_the_iteration_down() {
        let (plan, graph, cluster) = plan_on(2, 8);
        let serialized = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let overlapped = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(SimConfig::contended())
            .run_iteration()
            .unwrap();
        // Equal-share contention is work-conserving: concurrent flows finish
        // no later than the same flows run back to back.
        assert!(overlapped.total_s() <= serialized.total_s() * (1.0 + 1e-9));
        assert_eq!(overlapped.flows_executed(), serialized.flows_executed());
        assert_eq!(overlapped.syncs_executed(), serialized.syncs_executed());
    }

    #[test]
    fn straggler_stretches_the_iteration() {
        let (plan, graph, cluster) = plan_on(1, 8);
        let nominal = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let straggling = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(SimConfig {
                stragglers: vec![Straggler::persistent(DeviceId(0), 3.0)],
                ..SimConfig::default()
            })
            .run_iteration()
            .unwrap();
        assert!(straggling.total_s() > nominal.total_s());
        // The straggling device is busy the longest.
        let busy = straggling.device_busy_s();
        let max_busy = busy.values().fold(0.0f64, |a, &b| a.max(b));
        assert!((busy[&DeviceId(0)] - max_busy).abs() < 1e-12);
    }

    #[test]
    fn straggler_window_opening_mid_entry_still_bites() {
        let (plan, graph, cluster) = plan_on(1, 8);
        let nominal = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        // A window opening halfway through the first wave: the piecewise work
        // integral must slow the remainder of every affected entry.
        let half_wave = plan.waves()[0].duration / 2.0;
        let windowed = |from_s: f64| {
            Simulator::new(&plan, &cluster)
                .with_graph(&graph)
                .with_config(SimConfig {
                    stragglers: vec![Straggler {
                        device: DeviceId(0),
                        slowdown: 4.0,
                        from_s,
                        until_s: f64::INFINITY,
                    }],
                    ..SimConfig::default()
                })
                .run_iteration()
                .unwrap()
        };
        let mid = windowed(half_wave);
        let full = windowed(0.0);
        assert!(
            mid.total_s() > nominal.total_s(),
            "mid-entry window must slow the run: {} vs {}",
            mid.total_s(),
            nominal.total_s()
        );
        assert!(
            mid.total_s() < full.total_s(),
            "a partial window must hurt less than a full one"
        );
    }

    #[test]
    fn heterogeneous_speed_factors_slow_affected_groups() {
        let (plan, graph, cluster) = plan_on(2, 8);
        let nominal = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        // The whole second node runs at 70% speed.
        let speed_factors: BTreeMap<DeviceId, f64> = (8..16).map(|d| (DeviceId(d), 0.7)).collect();
        let hetero = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(SimConfig {
                speed_factors,
                ..SimConfig::default()
            })
            .run_iteration()
            .unwrap();
        assert!(hetero.total_s() > nominal.total_s());
        assert!(hetero.total_s() < nominal.total_s() / 0.7 + 1e-9);
    }

    #[test]
    fn same_seed_reproduces_the_event_log_bit_for_bit() {
        let (plan, graph, cluster) = plan_on(1, 8);
        let config = SimConfig {
            compute_jitter: 0.1,
            comm_mode: CommMode::Overlapped,
            contention: true,
            ..SimConfig::default()
        };
        let a = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(config.clone())
            .run_iteration()
            .unwrap();
        let b = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(config.clone())
            .run_iteration()
            .unwrap();
        assert_eq!(a.event_log().render(), b.event_log().render());
        let c = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(SimConfig {
                seed: config.seed + 1,
                ..config
            })
            .run_iteration()
            .unwrap();
        assert_ne!(a.event_log().render(), c.event_log().render());
    }

    #[test]
    fn busy_time_is_conserved_per_device() {
        let (plan, graph, cluster) = plan_on(2, 8);
        let sim = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .with_config(SimConfig::contended())
            .run_iteration()
            .unwrap();
        for (&d, &busy) in sim.device_busy_s() {
            assert!(
                busy <= sim.total_s() + 1e-9,
                "{d} busy {busy} > makespan {}",
                sim.total_s()
            );
        }
        assert!(sim.device_busy_s().values().any(|&b| b > 0.0));
    }

    #[test]
    fn event_log_accounts_for_every_entry_and_flow() {
        let (plan, graph, cluster) = plan_on(1, 8);
        let sim = Simulator::new(&plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let entries: usize = plan.waves().iter().map(|w| w.entries.len()).sum();
        let starts = sim
            .event_log()
            .entries()
            .iter()
            .filter(|e| matches!(e.kind, SimEventKind::ComputeStart { .. }))
            .count();
        assert_eq!(starts, entries);
        let wave_completes = sim
            .event_log()
            .entries()
            .iter()
            .filter(|e| matches!(e.kind, SimEventKind::WaveComplete { .. }))
            .count();
        assert_eq!(wave_completes, plan.num_waves());
        assert!(matches!(
            sim.event_log().entries().last().unwrap().kind,
            SimEventKind::IterationEnd
        ));
        // Trace resolution follows the shared engine config.
        assert_eq!(
            sim.utilization_trace().len(),
            EngineConfig::default().trace_samples
        );
    }

    #[test]
    fn mid_wave_fault_kills_in_flight_work_and_aborts() {
        let (plan, graph, cluster) = plan_on(1, 8);
        let nominal = Simulator::new(plan.clone(), &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let at_s = plan.waves()[0].duration / 2.0;
        let (report, fault) = Simulator::new(plan, &cluster)
            .with_graph(&graph)
            .run_iteration_with_fault(&FaultSpec {
                at_s,
                devices: vec![DeviceId(0)],
            })
            .unwrap();
        assert!(fault.fired);
        assert!((fault.at_s - at_s).abs() < 1e-12);
        assert!(fault.killed_entries > 0, "device 0 was computing mid-wave");
        assert!(fault.wasted_compute_s > 0.0);
        assert_eq!(fault.completed_waves, 0);
        // The iteration aborts at the fault instant.
        assert!((report.total_s() - at_s).abs() < 1e-12);
        assert!(report.total_s() < nominal.total_s());
        // Busy time stays conserved after trimming in-flight entries.
        for (&d, &busy) in report.device_busy_s() {
            assert!(busy <= report.total_s() + 1e-9, "{d} busy {busy}");
        }
        // The fault is on the deterministic event log.
        assert!(report.event_log().render().contains("device-fault"));
    }

    #[test]
    fn fault_after_the_iteration_never_fires() {
        let (plan, graph, cluster) = plan_on(1, 8);
        let nominal = Simulator::new(plan.clone(), &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        let (report, fault) = Simulator::new(plan.clone(), &cluster)
            .with_graph(&graph)
            .run_iteration_with_fault(&FaultSpec {
                at_s: nominal.total_s() * 2.0,
                devices: vec![DeviceId(0)],
            })
            .unwrap();
        assert!(!fault.fired);
        assert_eq!(fault.wasted_compute_s, 0.0);
        assert_eq!(fault.completed_waves, plan.num_waves());
        assert!((report.total_s() - nominal.total_s()).abs() < 1e-12);
    }

    #[test]
    fn fault_on_an_idle_device_wastes_nothing() {
        let (plan, graph, cluster) = plan_on(1, 8);
        // DeviceId(200) is not in the cluster: nothing in flight dies, but
        // the iteration still aborts (the device pool changed under the run).
        let at_s = plan.waves()[0].duration / 2.0;
        let (report, fault) = Simulator::new(plan, &cluster)
            .with_graph(&graph)
            .run_iteration_with_fault(&FaultSpec {
                at_s,
                devices: vec![DeviceId(200)],
            })
            .unwrap();
        assert!(fault.fired);
        assert_eq!(fault.killed_entries, 0);
        assert_eq!(fault.wasted_compute_s, 0.0);
        assert!((report.total_s() - at_s).abs() < 1e-12);
    }

    #[test]
    fn background_flows_slow_only_contended_overlapped_runs() {
        let (plan, graph, cluster) = plan_on(2, 8);
        // A long background write out of every node's egress: overlapped
        // contended iterations share their uplinks with it.
        let background: Vec<BackgroundFlow> = (0..2)
            .map(|n| BackgroundFlow {
                nominal_s: 10.0,
                footprint: vec![
                    LinkId::Uplink(spindle_cluster::NodeId(n)),
                    LinkId::StorageLink(spindle_cluster::NodeId(n)),
                    LinkId::StorageSpine,
                ],
            })
            .collect();
        let nominal = Simulator::new(plan.clone(), &cluster)
            .with_graph(&graph)
            .with_config(SimConfig::contended())
            .run_iteration()
            .unwrap();
        let loaded = Simulator::new(plan.clone(), &cluster)
            .with_graph(&graph)
            .with_config(SimConfig {
                background_flows: background.clone(),
                ..SimConfig::contended()
            })
            .run_iteration()
            .unwrap();
        assert!(
            loaded.total_s() > nominal.total_s(),
            "background egress traffic must slow the contended iteration: {} vs {}",
            loaded.total_s(),
            nominal.total_s()
        );
        // The same flows in the serialized oracle are skipped entirely.
        let serialized = Simulator::new(plan.clone(), &cluster)
            .with_graph(&graph)
            .with_config(SimConfig {
                background_flows: background,
                ..SimConfig::default()
            })
            .run_iteration()
            .unwrap();
        let baseline = Simulator::new(plan, &cluster)
            .with_graph(&graph)
            .run_iteration()
            .unwrap();
        assert!((serialized.total_s() - baseline.total_s()).abs() < 1e-12);
    }

    #[test]
    fn cluster_mismatch_is_rejected() {
        let (plan, _, _) = plan_on(2, 8);
        let small = ClusterSpec::homogeneous(1, 8);
        let err = Simulator::new(plan, &small).run_iteration().unwrap_err();
        assert!(matches!(err, RuntimeError::ClusterMismatch { .. }));
    }
}
