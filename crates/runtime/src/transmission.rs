//! Inter-wave transmission operators (§3.6 step 2).
//!
//! Data flows cross wave boundaries in two situations:
//!
//! * a MetaGraph edge `m1 → m2`: the output activation of `m1`'s last operator
//!   must reach the devices executing `m2`'s first operator (and the gradient
//!   flows back during the backward pass);
//! * a MetaOp sliced across waves whose consecutive slices run on different
//!   device groups: the intermediate activation must be handed over.
//!
//! The runtime prices each transmission with the cluster's communication model
//! (copy / shard / send / receive collapse into a group-to-group transfer).

use std::collections::BTreeMap;

use spindle_cluster::{CommModel, DeviceGroup};
use spindle_core::{ExecutionPlan, MetaOpId};

/// Why a transmission exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmissionKind {
    /// A data flow along a MetaGraph edge (activation forward, gradient back).
    DataFlow,
    /// A hand-over between consecutive slices of the same MetaOp placed on
    /// different device groups.
    SliceHandover,
}

/// One inter-wave transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmission {
    /// Producing MetaOp.
    pub from: MetaOpId,
    /// Consuming MetaOp (equal to `from` for slice hand-overs).
    pub to: MetaOpId,
    /// Source device group.
    pub src: DeviceGroup,
    /// Destination device group.
    pub dst: DeviceGroup,
    /// Bytes moved in the forward direction (the backward pass moves the same
    /// volume of gradients in reverse).
    pub bytes: u64,
    /// Why this transmission exists.
    pub kind: TransmissionKind,
}

impl Transmission {
    /// Time in seconds for one direction of this transmission.
    #[must_use]
    pub fn one_way_time(&self, comm: &CommModel) -> f64 {
        comm.group_transfer_time(&self.src, &self.dst, self.bytes)
    }

    /// Time in seconds for forward activation plus backward gradient.
    #[must_use]
    pub fn round_trip_time(&self, comm: &CommModel) -> f64 {
        self.one_way_time(comm) + comm.group_transfer_time(&self.dst, &self.src, self.bytes)
    }
}

/// A [`Transmission`] bound to its position on the plan's timeline: the flow
/// becomes ready once wave `after_wave` completes. The event-driven simulator
/// issues flows per boundary; the analytical engine ignores the index.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmissionSite {
    /// The transmission itself.
    pub transmission: Transmission,
    /// Index of the wave whose completion makes this transmission ready (the
    /// wave of the producing slice).
    pub after_wave: usize,
}

/// Derives every inter-wave transmission of a placed execution plan, each
/// annotated with the wave boundary it crosses.
///
/// Entries without placement are skipped (the planner guarantees placement for
/// plans headed to the runtime; baselines constructing partial plans can still
/// inspect transmissions of the placed subset).
#[must_use]
pub fn derive_transmission_sites(plan: &ExecutionPlan) -> Vec<TransmissionSite> {
    // Ordered placements of each MetaOp's slices across waves, with the wave
    // index of each slice.
    let mut slices: BTreeMap<MetaOpId, Vec<(usize, DeviceGroup)>> = BTreeMap::new();
    for wave in plan.waves() {
        for entry in &wave.entries {
            if let Some(group) = &entry.placement {
                slices
                    .entry(entry.metaop)
                    .or_default()
                    .push((wave.index, group.clone()));
            }
        }
    }

    let mut sites = Vec::new();
    // Slice hand-overs within a MetaOp.
    for (metaop, groups) in &slices {
        let bytes = plan
            .metagraph()
            .metaop(*metaop)
            .representative()
            .output_bytes();
        for pair in groups.windows(2) {
            if pair[0].1 != pair[1].1 {
                sites.push(TransmissionSite {
                    transmission: Transmission {
                        from: *metaop,
                        to: *metaop,
                        src: pair[0].1.clone(),
                        dst: pair[1].1.clone(),
                        bytes,
                        kind: TransmissionKind::SliceHandover,
                    },
                    after_wave: pair[0].0,
                });
            }
        }
    }
    // Data flows along MetaGraph edges: from the producer's last slice to the
    // consumer's first slice.
    for &(from, to) in plan.metagraph().edges() {
        let (Some(src), Some(dst)) = (
            slices.get(&from).and_then(|g| g.last()),
            slices.get(&to).and_then(|g| g.first()),
        ) else {
            continue;
        };
        let bytes = plan
            .metagraph()
            .metaop(from)
            .representative()
            .output_bytes();
        sites.push(TransmissionSite {
            transmission: Transmission {
                from,
                to,
                src: src.1.clone(),
                dst: dst.1.clone(),
                bytes,
                kind: TransmissionKind::DataFlow,
            },
            after_wave: src.0,
        });
    }
    sites
}

/// Derives every inter-wave transmission of a placed execution plan (without
/// timeline positions — see [`derive_transmission_sites`] for those).
#[must_use]
pub fn derive_transmissions(plan: &ExecutionPlan) -> Vec<Transmission> {
    derive_transmission_sites(plan)
        .into_iter()
        .map(|s| s.transmission)
        .collect()
}

/// Total forward+backward transmission time of a placed plan, in seconds.
#[must_use]
pub fn total_transmission_time(plan: &ExecutionPlan, comm: &CommModel) -> f64 {
    derive_transmissions(plan)
        .iter()
        .map(|t| t.round_trip_time(comm))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_cluster::ClusterSpec;
    use spindle_core::{PlacementStrategy, PlannerConfig, SpindleSession};
    use spindle_graph::{ComputationGraph, GraphBuilder, Modality, OpKind, TensorShape};

    fn pipeline_graph() -> ComputationGraph {
        let mut b = GraphBuilder::new();
        let t = b.add_task("vl", [Modality::Vision, Modality::Text], 8);
        let vis = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Vision),
                TensorShape::new(8, 257, 768),
                8,
            )
            .unwrap();
        let lm = b
            .add_op_chain(t, OpKind::LmDecoderOnly, TensorShape::new(8, 512, 2048), 8)
            .unwrap();
        b.add_flow(*vis.last().unwrap(), lm[0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn data_flow_transmissions_follow_metagraph_edges() {
        let graph = pipeline_graph();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let transmissions = derive_transmissions(&plan);
        let data_flows: Vec<&Transmission> = transmissions
            .iter()
            .filter(|t| t.kind == TransmissionKind::DataFlow)
            .collect();
        assert_eq!(data_flows.len(), plan.metagraph().edges().len());
        for t in &transmissions {
            assert!(t.bytes > 0);
            assert!(!t.src.is_empty());
            assert!(!t.dst.is_empty());
        }
    }

    #[test]
    fn locality_placement_transmits_no_more_than_sequential() {
        let graph = pipeline_graph();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let comm = CommModel::new(&cluster);
        let locality = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let sequential = SpindleSession::with_config(
            cluster.clone(),
            PlannerConfig {
                placement: PlacementStrategy::Sequential,
                ..PlannerConfig::default()
            },
        )
        .plan(&graph)
        .unwrap();
        let t_loc = total_transmission_time(&locality, &comm);
        let t_seq = total_transmission_time(&sequential, &comm);
        assert!(
            t_loc <= t_seq + 1e-9,
            "locality {t_loc} vs sequential {t_seq}"
        );
    }

    #[test]
    fn sites_carry_valid_wave_boundaries() {
        let graph = pipeline_graph();
        let cluster = ClusterSpec::homogeneous(2, 8);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        let sites = derive_transmission_sites(&plan);
        assert_eq!(sites.len(), derive_transmissions(&plan).len());
        for site in &sites {
            assert!(site.after_wave < plan.num_waves());
            // The producing slice really executes in `after_wave`.
            assert!(plan.waves()[site.after_wave]
                .entry_for(site.transmission.from)
                .is_some());
        }
    }

    #[test]
    fn round_trip_is_two_one_way_transfers() {
        let graph = pipeline_graph();
        let cluster = ClusterSpec::homogeneous(1, 8);
        let comm = CommModel::new(&cluster);
        let plan = SpindleSession::new(cluster.clone()).plan(&graph).unwrap();
        for t in derive_transmissions(&plan) {
            assert!(t.round_trip_time(&comm) >= t.one_way_time(&comm));
        }
    }
}
