//! Transport-agnostic client API over the planning service.
//!
//! [`ServiceApi`] is the one interface load generators and tests drive:
//! [`LocalClient`] backs it with an in-process [`PlanService`] (the fast
//! path — no serialization at all), [`TcpClient`] with a framed connection
//! to a [`TcpIngress`](crate::TcpIngress). Both deliver
//! [`ApiCompletion`]s whose [`ReplanSummary`] carries a plan fingerprint,
//! so a caller can replay the same trace over both transports and assert
//! bit-identical plans — the transport-equivalence proof `loadgen` runs on
//! every invocation.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spindle_cluster::{ClusterSpec, DeviceId};
use spindle_graph::ComputationGraph;

use crate::proto::{FrameDecoder, ReplanSummary, Request, Response, WireStats, PROTO_VERSION};
use crate::{Completion, PlanService, ServiceConfig, SubmitError};

/// One finished re-plan as seen through a [`ServiceApi`] transport.
#[derive(Debug, Clone)]
pub struct ApiCompletion {
    /// The tenant that was re-planned.
    pub tenant: u64,
    /// The plan summary, or the planning error rendered as a string (the
    /// wire cannot carry a structured [`PlanError`](spindle_core::PlanError)).
    pub result: Result<ReplanSummary, String>,
    /// `true` when triggered by a topology change.
    pub topology_change: bool,
    /// Churn events folded into this re-plan.
    pub coalesced: usize,
    /// Queue wait of the oldest folded event.
    pub queue_wait: Duration,
    /// Planning time.
    pub plan_time: Duration,
}

impl ApiCompletion {
    /// End-to-end latency of the oldest folded event: queue wait plus
    /// planning time. Comparable across transports — both measure it on the
    /// service side.
    #[must_use]
    pub fn total_latency(&self) -> Duration {
        self.queue_wait + self.plan_time
    }
}

impl From<Completion> for ApiCompletion {
    fn from(done: Completion) -> Self {
        Self {
            tenant: done.tenant,
            result: done
                .result
                .as_ref()
                .map(ReplanSummary::of)
                .map_err(ToString::to_string),
            topology_change: done.topology_change,
            coalesced: done.coalesced,
            queue_wait: done.queue_wait,
            plan_time: done.plan_time,
        }
    }
}

/// The uniform client interface over the planning service, implemented by
/// both transports. Drive a replay through this trait and the same code
/// exercises the in-process fast path and the TCP ingress.
pub trait ServiceApi {
    /// Submits a churn event for `tenant`. Non-blocking on the service side:
    /// acceptance means the event is queued, and its re-plan arrives later
    /// via [`Self::poll_completion`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure,
    /// [`SubmitError::Throttled`] when the tenant's quota is exhausted, or
    /// [`SubmitError::WorkerGone`] when the service (or the connection to
    /// it) is gone.
    fn submit(&mut self, tenant: u64, graph: &Arc<ComputationGraph>) -> Result<(), SubmitError>;

    /// Broadcasts a cluster topology change, returning the number of
    /// workers notified.
    ///
    /// # Errors
    ///
    /// [`SubmitError::WorkerGone`] when no worker (or no connection) is
    /// alive to apply it.
    fn submit_topology(
        &mut self,
        removed: &[DeviceId],
        restored: &[DeviceId],
    ) -> Result<usize, SubmitError>;

    /// Waits up to `timeout` for the next finished re-plan.
    fn poll_completion(&mut self, timeout: Duration) -> Option<ApiCompletion>;

    /// Shuts the service down (draining every accepted event), returning
    /// the final counters and all not-yet-polled completions.
    fn finish(self) -> (WireStats, Vec<ApiCompletion>)
    where
        Self: Sized;
}

/// The in-process transport: a [`PlanService`] plus its completion channel.
#[derive(Debug)]
pub struct LocalClient {
    service: PlanService,
    completions: Receiver<Completion>,
}

impl LocalClient {
    /// Starts a service for `cluster` and wraps it.
    #[must_use]
    pub fn start(cluster: impl Into<Arc<ClusterSpec>>, config: ServiceConfig) -> Self {
        let (service, completions) = PlanService::start(cluster, config);
        Self {
            service,
            completions,
        }
    }

    /// The wrapped service — e.g. to [`resize`](PlanService::resize) it
    /// mid-replay.
    #[must_use]
    pub fn service(&self) -> &PlanService {
        &self.service
    }
}

impl ServiceApi for LocalClient {
    fn submit(&mut self, tenant: u64, graph: &Arc<ComputationGraph>) -> Result<(), SubmitError> {
        self.service.submit(tenant, Arc::clone(graph))
    }

    fn submit_topology(
        &mut self,
        removed: &[DeviceId],
        restored: &[DeviceId],
    ) -> Result<usize, SubmitError> {
        self.service.submit_topology(removed, restored)
    }

    fn poll_completion(&mut self, timeout: Duration) -> Option<ApiCompletion> {
        self.completions
            .recv_timeout(timeout)
            .ok()
            .map(ApiCompletion::from)
    }

    fn finish(self) -> (WireStats, Vec<ApiCompletion>) {
        // `shutdown` drains the workers and drops the service — and with it
        // the retained completion sender — so the drain below terminates.
        let stats = self.service.shutdown();
        let rest = self.completions.iter().map(ApiCompletion::from).collect();
        (stats.into(), rest)
    }
}

/// The framed-TCP transport: one blocking connection to a
/// [`TcpIngress`](crate::TcpIngress).
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Completions that arrived interleaved while waiting for a submit ack.
    pending: VecDeque<ApiCompletion>,
    /// The read timeout currently set on the socket, to skip redundant
    /// `setsockopt`s.
    read_timeout: Option<Duration>,
}

impl TcpClient {
    /// Connects to a [`TcpIngress`](crate::TcpIngress) and negotiates the
    /// protocol version.
    ///
    /// # Errors
    ///
    /// Any socket error, or `InvalidData` if the server rejects
    /// [`PROTO_VERSION`] or answers with a non-`HelloAck` frame.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Self {
            stream,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            read_timeout: None,
        };
        client.send(&Request::Hello {
            proto_version: PROTO_VERSION,
        })?;
        match client.next_response(None)? {
            Some(Response::HelloAck { proto_version }) if proto_version == PROTO_VERSION => {
                Ok(client)
            }
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("handshake failed: {other:?}"),
            )),
        }
    }

    fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.stream.write_all(&request.encode())
    }

    fn set_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        // `set_read_timeout(Some(ZERO))` is an error; floor at 1 ms.
        let timeout = timeout.map(|t| t.max(Duration::from_millis(1)));
        if self.read_timeout != timeout {
            self.stream.set_read_timeout(timeout)?;
            self.read_timeout = timeout;
        }
        Ok(())
    }

    /// Reads until one full response frame is decoded. `timeout: None`
    /// blocks; `Ok(None)` means the timeout elapsed first.
    fn next_response(&mut self, timeout: Option<Duration>) -> std::io::Result<Option<Response>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self
                .decoder
                .next_frame()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
            {
                let response = Response::decode(&payload).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                return Ok(Some(response));
            }
            let left = match deadline {
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(None);
                    }
                    Some(left)
                }
                None => None,
            };
            self.set_timeout(left)?;
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn plan_ready(response: Response) -> Option<ApiCompletion> {
        match response {
            Response::PlanReady {
                tenant,
                outcome,
                error,
                topology_change,
                coalesced,
                queue_wait_ns,
                plan_time_ns,
            } => Some(ApiCompletion {
                tenant,
                result: match error {
                    None => Ok(outcome),
                    Some(message) => Err(message),
                },
                topology_change,
                coalesced: coalesced as usize,
                queue_wait: Duration::from_nanos(queue_wait_ns),
                plan_time: Duration::from_nanos(plan_time_ns),
            }),
            _ => None,
        }
    }
}

impl ServiceApi for TcpClient {
    fn submit(&mut self, tenant: u64, graph: &Arc<ComputationGraph>) -> Result<(), SubmitError> {
        let request = Request::SubmitGraph {
            tenant,
            graph: Arc::clone(graph),
        };
        if self.send(&request).is_err() {
            return Err(SubmitError::WorkerGone);
        }
        // Responses interleave on the one stream: buffer any PlanReady that
        // arrives before our ack.
        loop {
            match self.next_response(None) {
                Ok(Some(Response::Accepted { tenant: t })) if t == tenant => return Ok(()),
                Ok(Some(Response::Rejected {
                    tenant: t,
                    retry_hint_ns,
                    throttled,
                })) if t == tenant => {
                    let retry_hint = Duration::from_nanos(retry_hint_ns);
                    return Err(if throttled {
                        SubmitError::Throttled { retry_hint }
                    } else {
                        SubmitError::QueueFull { retry_hint }
                    });
                }
                Ok(Some(done @ Response::PlanReady { .. })) => {
                    self.pending.extend(Self::plan_ready(done));
                }
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return Err(SubmitError::WorkerGone),
            }
        }
    }

    fn submit_topology(
        &mut self,
        removed: &[DeviceId],
        restored: &[DeviceId],
    ) -> Result<usize, SubmitError> {
        let request = Request::Topology {
            removed: removed.to_vec(),
            restored: restored.to_vec(),
        };
        if self.send(&request).is_err() {
            return Err(SubmitError::WorkerGone);
        }
        loop {
            match self.next_response(None) {
                Ok(Some(Response::TopologyAck { workers })) => return Ok(workers as usize),
                Ok(Some(done @ Response::PlanReady { .. })) => {
                    self.pending.extend(Self::plan_ready(done));
                }
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return Err(SubmitError::WorkerGone),
            }
        }
    }

    fn poll_completion(&mut self, timeout: Duration) -> Option<ApiCompletion> {
        if let Some(done) = self.pending.pop_front() {
            return Some(done);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.next_response(Some(left)) {
                Ok(Some(done @ Response::PlanReady { .. })) => return Self::plan_ready(done),
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return None,
            }
        }
    }

    fn finish(mut self) -> (WireStats, Vec<ApiCompletion>) {
        let mut rest: Vec<ApiCompletion> = self.pending.drain(..).collect();
        if self.send(&Request::Shutdown).is_err() {
            return (WireStats::default(), rest);
        }
        // The server drains its workers, streams the remaining PlanReady
        // frames, then answers with the final Stats and closes.
        loop {
            match self.next_response(None) {
                Ok(Some(done @ Response::PlanReady { .. })) => {
                    rest.extend(Self::plan_ready(done));
                }
                Ok(Some(Response::Stats(stats))) => return (stats, rest),
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return (WireStats::default(), rest),
            }
        }
    }
}
