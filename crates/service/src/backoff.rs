//! Client-side retry backoff, shared by every caller that honours the
//! service's retry hints.
//!
//! The daemon answers backpressure ([`SubmitError::QueueFull`]) and quota
//! rejections ([`SubmitError::Throttled`]) with a *hint* — its own average
//! re-plan time, floored at [`MIN_RETRY_HINT`] so a fast service never tells
//! clients to hammer a full queue. Clients turn that hint into an actual
//! wait with [`Backoff`]: capped exponential growth per consecutive
//! rejection, multiplied by seeded jitter so a fleet of generators does not
//! retry in lockstep. The `loadgen` binary and the in-repo examples all go
//! through this one implementation, so hint semantics cannot drift between
//! the server and its callers.
//!
//! [`SubmitError::QueueFull`]: crate::SubmitError::QueueFull
//! [`SubmitError::Throttled`]: crate::SubmitError::Throttled

use std::time::Duration;

use spindle_graph::XorShift64Star;

/// Hard ceiling on one backpressure wait. The hint tracks the service's
/// average re-plan time, so the exponential ramp only matters when the queue
/// stays full across several retries; 20 ms keeps even that case responsive.
pub const BACKOFF_CAP: Duration = Duration::from_millis(20);

/// Floor on the retry hint the service suggests. Re-plans served from warm
/// caches finish in microseconds; a sub-100 µs hint would have callers
/// spinning on a full queue.
pub const MIN_RETRY_HINT: Duration = Duration::from_micros(100);

/// Capped jittered exponential backoff over the service's retry hints.
///
/// One instance carries the jitter RNG; seed it per client so concurrent
/// clients desynchronise deterministically.
#[derive(Debug)]
pub struct Backoff {
    rng: XorShift64Star,
}

impl Backoff {
    /// A backoff source whose jitter stream is seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: XorShift64Star::new(seed),
        }
    }

    /// The wait before retry number `attempt` (0-based) of one submission:
    /// `retry_hint` doubled per failed attempt (shift saturates at 2¹⁰),
    /// multiplied by a jitter in `[0.5, 1.5)`, capped at [`BACKOFF_CAP`].
    pub fn delay(&mut self, retry_hint: Duration, attempt: u32) -> Duration {
        let base = retry_hint
            .saturating_mul(1u32 << attempt.min(10))
            .min(BACKOFF_CAP);
        let jitter = 0.5 + self.rng.next_f64();
        Duration::from_secs_f64(base.as_secs_f64() * jitter).min(BACKOFF_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_capped_jittered_and_grow_with_attempts() {
        let mut backoff = Backoff::new(7);
        let hint = Duration::from_micros(500);
        for attempt in 0..64 {
            let d = backoff.delay(hint, attempt);
            assert!(d <= BACKOFF_CAP, "attempt {attempt}: {d:?}");
            assert!(
                d >= hint / 2 || d == BACKOFF_CAP,
                "attempt {attempt}: {d:?}"
            );
        }
        // Pre-cap, the expected delay doubles: compare jitter-free bases.
        let base = |attempt: u32| {
            hint.saturating_mul(1u32 << attempt.min(10))
                .min(BACKOFF_CAP)
        };
        assert_eq!(base(1), 2 * base(0));
        assert_eq!(base(30), BACKOFF_CAP);
    }

    #[test]
    fn different_seeds_desynchronise_the_jitter() {
        let hint = Duration::from_millis(1);
        let mut a = Backoff::new(1);
        let mut b = Backoff::new(2);
        let distinct = (0..8).any(|i| a.delay(hint, i) != b.delay(hint, i));
        assert!(distinct, "seeded jitter streams must differ");
    }

    #[test]
    fn zero_hint_never_panics_and_stays_zero() {
        let mut backoff = Backoff::new(3);
        assert_eq!(backoff.delay(Duration::ZERO, 9), Duration::ZERO);
    }
}
