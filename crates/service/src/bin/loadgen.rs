//! Multi-tenant load generator for the planning service.
//!
//! Replays seeded [`TenantFleet`] traces (CLIP-style tenants at paper scale,
//! hyperscale-churn tenants at 256 simulated GPUs) against a service as fast
//! as it accepts them (open loop with retry-on-backpressure), then reports
//! per-event latency percentiles, coalescing ratio and throughput — both
//! human-readable and as a flat JSON bench report (`BENCH_service.json`) the
//! `bench_gate` binary can compare against the checked-in baseline.
//!
//! The replay is generic over [`ServiceApi`], so the same code drives the
//! in-process fast path ([`LocalClient`]) and the framed-TCP ingress
//! ([`TcpClient`] against a loopback [`TcpIngress`]). The CLIP fleet runs on
//! *both* transports and the per-tenant final plan fingerprints must match
//! bit for bit — the transport-equivalence proof of the wire protocol.
//!
//! ```bash
//! cargo run --release -p spindle-service --bin loadgen
//! # CI smoke: SPINDLE_BENCH_QUICK=1 cargo run --release -p spindle-service --bin loadgen
//! ```
//!
//! Flags: `--tenants N` overrides the fleet size of both scenarios;
//! `--quick` equals `SPINDLE_BENCH_QUICK=1`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use spindle_cluster::ClusterSpec;
use spindle_core::PlannerConfig;
use spindle_service::{
    ApiCompletion, Backoff, LocalClient, ServiceApi, ServiceConfig, SubmitError, TcpClient,
    TcpIngress, WireStats,
};
use spindle_workloads::TenantFleet;

fn quick_mode() -> bool {
    std::env::var("SPINDLE_BENCH_QUICK").is_ok_and(|v| v == "1" || v == "true")
        || std::env::args().any(|a| a == "--quick")
}

fn tenants_override() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let at = args.iter().position(|a| a == "--tenants")?;
    args.get(at + 1)?.parse().ok()
}

fn report_path() -> PathBuf {
    if let Ok(path) = std::env::var("SPINDLE_BENCH_OUT") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json")
}

/// Everything measured over one fleet replay.
struct RunReport {
    label: &'static str,
    tenants: usize,
    events: usize,
    replans: u64,
    rejections: u64,
    throttled: u64,
    coalescing_ratio: f64,
    p50: Duration,
    p99: Duration,
    wall: Duration,
    max_cache_bytes: usize,
    evictions: u64,
    /// Each tenant's final plan fingerprint — the transport-equivalence
    /// witness.
    fingerprints: BTreeMap<u64, u64>,
}

impl RunReport {
    fn ns_per_event(&self) -> f64 {
        self.wall.as_secs_f64() * 1e9 / self.events as f64
    }
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of an empty latency set");
    let rank = ((sorted.len() as f64 * pct).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Replays `fleet` through any transport, open loop: events are submitted
/// in timeline order as fast as the bounded queues accept them; on
/// backpressure the generator waits for a completion (which frees a slot)
/// and retries the same event, so no accepted-then-dropped events exist.
fn replay<A: ServiceApi>(
    label: &'static str,
    fleet: &TenantFleet,
    cache_budget: usize,
    mut client: A,
) -> RunReport {
    let mut tally = Tally {
        cache_budget,
        latencies: Vec::with_capacity(fleet.events().len()),
        served: 0,
        max_cache_bytes: 0,
        evictions: 0,
        fingerprints: BTreeMap::new(),
    };
    let mut rejections = 0u64;
    let mut throttled = 0u64;
    let mut backoff = Backoff::new(0x10ad_9e4e ^ fleet.events().len() as u64);
    let start = Instant::now();
    for event in fleet.events() {
        // Opportunistically drain finished work between submissions.
        while let Some(done) = client.poll_completion(Duration::ZERO) {
            tally.record(&done);
        }
        let mut attempt = 0u32;
        loop {
            let retry_hint = match client.submit(event.tenant as u64, &event.graph) {
                Ok(()) => break,
                Err(SubmitError::QueueFull { retry_hint }) => {
                    rejections += 1;
                    retry_hint
                }
                Err(SubmitError::Throttled { retry_hint }) => {
                    throttled += 1;
                    retry_hint
                }
                Err(SubmitError::WorkerGone) => unreachable!("workers outlive the replay"),
            };
            // Backpressure or quota: back off for the hinted interval
            // (doubled per consecutive rejection, jittered, capped), draining
            // completions while we wait — each one frees a queue slot soon
            // after, so waiting on completions *is* the backoff.
            let delay = backoff.delay(retry_hint, attempt);
            attempt += 1;
            let wait_until = Instant::now() + delay;
            loop {
                let left = wait_until.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match client.poll_completion(left) {
                    Some(done) => tally.record(&done),
                    None => break,
                }
            }
        }
    }
    let (stats, rest) = client.finish();
    for done in rest {
        tally.record(&done);
    }
    let wall = start.elapsed();
    assert_eq!(
        tally.served,
        fleet.events().len(),
        "every event must be served"
    );
    assert_eq!(stats.errors, 0, "no plan may fail");
    tally.latencies.sort_unstable();
    RunReport {
        label,
        tenants: fleet.num_tenants(),
        events: tally.served,
        replans: stats.replans,
        rejections,
        throttled,
        coalescing_ratio: coalescing_ratio(&stats),
        p50: percentile(&tally.latencies, 0.50),
        p99: percentile(&tally.latencies, 0.99),
        wall,
        max_cache_bytes: tally.max_cache_bytes,
        evictions: tally.evictions,
        fingerprints: tally.fingerprints,
    }
}

fn coalescing_ratio(stats: &WireStats) -> f64 {
    if stats.replans == 0 {
        return 1.0;
    }
    stats.submitted as f64 / stats.replans as f64
}

/// Accumulates completion-side measurements during a replay.
struct Tally {
    cache_budget: usize,
    latencies: Vec<Duration>,
    served: usize,
    max_cache_bytes: usize,
    evictions: u64,
    fingerprints: BTreeMap<u64, u64>,
}

impl Tally {
    fn record(&mut self, done: &ApiCompletion) {
        self.latencies.push(done.total_latency());
        self.served += done.coalesced;
        let outcome = done.result.as_ref().expect("fleet graphs always plan");
        assert!(
            outcome.cache.bytes <= self.cache_budget,
            "session caches exceeded their byte budgets: {} > {}",
            outcome.cache.bytes,
            self.cache_budget
        );
        self.max_cache_bytes = self.max_cache_bytes.max(outcome.cache.bytes);
        self.evictions += outcome.cache.evictions;
        self.fingerprints
            .insert(done.tenant, outcome.plan_fingerprint);
    }
}

fn print_report(r: &RunReport) {
    println!("== {} ==", r.label);
    println!(
        "  {} tenants, {} events -> {} re-plans (coalescing ratio {:.2}), {} backpressure rejections, {} throttled",
        r.tenants, r.events, r.replans, r.coalescing_ratio, r.rejections, r.throttled
    );
    println!(
        "  latency p50 {:.3} ms, p99 {:.3} ms; {:.0} events/s over {:.2} s",
        r.p50.as_secs_f64() * 1e3,
        r.p99.as_secs_f64() * 1e3,
        r.events as f64 / r.wall.as_secs_f64(),
        r.wall.as_secs_f64()
    );
    println!(
        "  caches: max {} KiB per session, {} evictions across the fleet",
        r.max_cache_bytes / 1024,
        r.evictions
    );
}

/// Hand-rolled flat JSON (no JSON crate offline): `{name: ns, ...}`.
fn write_report(path: &std::path::Path, entries: &[(String, f64)]) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    for (i, (name, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{name}\": {ns:.1}{comma}\n"));
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let quick = quick_mode();
    let tenants = tenants_override().unwrap_or(if quick { 12 } else { 120 });
    let phases = if quick { 2 } else { 4 };
    println!(
        "spindle loadgen: {tenants} tenants/fleet, {phases} phases/tenant{}",
        if quick { " (quick mode)" } else { "" }
    );

    let default_budget = PlannerConfig::default().structural_cache_budget
        + PlannerConfig::default().curve_cache_budget;

    // Scenario 1 — CLIP tenants at paper scale (32 GPUs), default budgets,
    // in-process transport.
    let clip = TenantFleet::clip_fleet(11, tenants, phases, 30.0).expect("clip fleet builds");
    let clip_cluster = ClusterSpec::homogeneous(4, 8);
    let clip_report = replay(
        "clip-fleet (local)",
        &clip,
        default_budget,
        LocalClient::start(
            clip_cluster.clone(),
            ServiceConfig {
                queue_depth: 32,
                ..ServiceConfig::default()
            },
        ),
    );
    print_report(&clip_report);

    // Scenario 2 — hyperscale-churn tenants on 256 simulated GPUs, with
    // deliberately tight cache budgets: a long trace must keep every
    // session's bytes bounded and visibly evict (the acceptance criterion of
    // a daemon that never restarts).
    let tight = PlannerConfig {
        structural_cache_budget: 96 * 1024,
        curve_cache_budget: 16 * 1024,
        ..PlannerConfig::default()
    };
    let hyper =
        TenantFleet::hyperscale_fleet(7, tenants, phases.max(3), 12, 30.0).expect("hyper fleet");
    let hyper_report = replay(
        "hyper-fleet (local)",
        &hyper,
        tight.structural_cache_budget + tight.curve_cache_budget,
        LocalClient::start(
            ClusterSpec::homogeneous(32, 8),
            ServiceConfig {
                queue_depth: 32,
                planner: tight,
                ..ServiceConfig::default()
            },
        ),
    );
    print_report(&hyper_report);

    // Scenario 3 — the same CLIP fleet over the TCP ingress on loopback.
    // Same cluster, same planner, same trace: the wire protocol must be
    // behaviorally invisible.
    let ingress = TcpIngress::bind(
        "127.0.0.1:0",
        clip_cluster,
        ServiceConfig {
            queue_depth: 32,
            ..ServiceConfig::default()
        },
    )
    .expect("binding the loopback ingress");
    let tcp_client = TcpClient::connect(ingress.local_addr()).expect("connecting to the ingress");
    let tcp_report = replay("clip-fleet (tcp)", &clip, default_budget, tcp_client);
    print_report(&tcp_report);
    ingress.shutdown();

    // Transport equivalence: every tenant's final plan fingerprint must be
    // bit-identical across transports — coalescing may fold different event
    // subsets, but the last event per tenant always wins and the planner is
    // deterministic.
    assert_eq!(
        clip_report.fingerprints, tcp_report.fingerprints,
        "TCP and in-process transports diverged on final plans"
    );
    println!(
        "transport equivalence: {} tenants, fingerprints bit-identical across local and tcp",
        clip_report.fingerprints.len()
    );

    // The wire must stay cheap: TCP p99 within 1.5x of in-process (plus a
    // small absolute allowance so micro-second-scale runs don't flap).
    let tcp_bound = clip_report
        .p99
        .mul_f64(1.5)
        .saturating_add(Duration::from_millis(2));
    assert!(
        tcp_report.p99 <= tcp_bound,
        "tcp p99 {:?} exceeds 1.5x local p99 {:?}",
        tcp_report.p99,
        clip_report.p99
    );

    if !quick {
        // Acceptance criteria of the service PR, asserted where they are
        // measured: bursty open-loop replay must coalesce, and the tight
        // hyperscale budgets must actually evict.
        assert!(
            clip_report.coalescing_ratio > 1.0 || hyper_report.coalescing_ratio > 1.0,
            "open-loop replay must coalesce somewhere"
        );
        assert!(
            hyper_report.evictions > 0,
            "tight budgets over a long trace must evict"
        );
    }

    let entries = vec![
        (
            "service_replan_p50_clip-fleet".to_string(),
            clip_report.p50.as_secs_f64() * 1e9,
        ),
        (
            "service_replan_p99_clip-fleet".to_string(),
            clip_report.p99.as_secs_f64() * 1e9,
        ),
        (
            "service_replan_p50_hyper-fleet".to_string(),
            hyper_report.p50.as_secs_f64() * 1e9,
        ),
        (
            "service_replan_p99_hyper-fleet".to_string(),
            hyper_report.p99.as_secs_f64() * 1e9,
        ),
        (
            "service_event_ns_clip-fleet".to_string(),
            clip_report.ns_per_event(),
        ),
        (
            "service_event_ns_hyper-fleet".to_string(),
            hyper_report.ns_per_event(),
        ),
        (
            "ingress_p50_clip-fleet".to_string(),
            tcp_report.p50.as_secs_f64() * 1e9,
        ),
        (
            "ingress_p99_clip-fleet".to_string(),
            tcp_report.p99.as_secs_f64() * 1e9,
        ),
    ];
    let path = report_path();
    write_report(&path, &entries).expect("writing the bench report");
    println!("report: {}", path.display());
}
