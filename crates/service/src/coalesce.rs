//! Re-plan coalescing: folding queued churn events per tenant.
//!
//! A tenant whose task mix changes five times while its worker is busy does
//! not need five re-plans — only the *latest* graph matters, because a
//! re-plan always supersedes the plans before it. The [`CoalescingQueue`]
//! encodes exactly that: events are keyed by tenant, a newer event for a
//! pending tenant replaces the pending graph (latest-graph-wins), and tenants
//! are served in FIFO order of when their pending entry was *opened*, so no
//! tenant starves behind a chatty neighbour.
//!
//! The queue is a pure, single-threaded data structure — the service's worker
//! threads each own one — which keeps the coalescing semantics deterministic
//! and unit-testable without spawning a thread.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use spindle_graph::ComputationGraph;

/// One coalesced unit of work: re-plan `tenant` against `graph`.
#[derive(Debug, Clone)]
pub struct CoalescedReplan {
    /// The tenant to re-plan.
    pub tenant: u64,
    /// The tenant's latest submitted graph (earlier pending graphs were
    /// superseded).
    pub graph: Arc<ComputationGraph>,
    /// Churn events folded into this re-plan (≥ 1).
    pub coalesced: usize,
    /// Submission time of the *oldest* folded event — queue latency is
    /// measured from the moment the pending entry was opened, so coalescing
    /// can never hide a tenant's true wait.
    pub oldest_submit: Instant,
}

#[derive(Debug)]
struct Pending {
    graph: Arc<ComputationGraph>,
    coalesced: usize,
    oldest_submit: Instant,
}

/// A per-worker queue of pending re-plans with latest-graph-wins coalescing
/// and per-tenant FIFO service order.
#[derive(Debug, Default)]
pub struct CoalescingQueue {
    pending: HashMap<u64, Pending>,
    /// Tenants with a pending entry, in the order the entries were opened.
    order: VecDeque<u64>,
    events_in: u64,
    replans_out: u64,
}

impl CoalescingQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a churn event: `tenant`'s task mix became `graph` at
    /// `submitted`. Returns `true` if the event was folded into an already
    /// pending re-plan (the pending graph is replaced, the queue position and
    /// oldest submission time are kept).
    pub fn push(&mut self, tenant: u64, graph: Arc<ComputationGraph>, submitted: Instant) -> bool {
        self.events_in += 1;
        match self.pending.get_mut(&tenant) {
            Some(pending) => {
                pending.graph = graph;
                pending.coalesced += 1;
                true
            }
            None => {
                self.pending.insert(
                    tenant,
                    Pending {
                        graph,
                        coalesced: 1,
                        oldest_submit: submitted,
                    },
                );
                self.order.push_back(tenant);
                false
            }
        }
    }

    /// Takes the next re-plan to execute: the tenant whose pending entry has
    /// waited longest, with every event folded since.
    pub fn pop(&mut self) -> Option<CoalescedReplan> {
        let tenant = self.order.pop_front()?;
        let pending = self
            .pending
            .remove(&tenant)
            .expect("order and pending stay in sync");
        self.replans_out += 1;
        Some(CoalescedReplan {
            tenant,
            graph: pending.graph,
            coalesced: pending.coalesced,
            oldest_submit: pending.oldest_submit,
        })
    }

    /// Tenants currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if no re-plan is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Churn events pushed over the queue's lifetime.
    #[must_use]
    pub fn events_in(&self) -> u64 {
        self.events_in
    }

    /// Coalesced re-plans popped over the queue's lifetime.
    #[must_use]
    pub fn replans_out(&self) -> u64 {
        self.replans_out
    }

    /// Lifetime coalescing ratio: events in over re-plans out (1.0 when
    /// nothing was ever coalesced, >1 once bursts were folded).
    #[must_use]
    pub fn coalescing_ratio(&self) -> f64 {
        if self.replans_out == 0 {
            return 1.0;
        }
        self.events_in as f64 / self.replans_out as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn graph(batch: u32) -> Arc<ComputationGraph> {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text, Modality::Vision], batch);
        let tower = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(batch, 77, 768),
                2,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
            .unwrap();
        b.add_flow(*tower.last().unwrap(), loss).unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn bursts_for_one_tenant_fold_into_latest_graph() {
        let mut q = CoalescingQueue::new();
        let t0 = Instant::now();
        assert!(!q.push(7, graph(8), t0));
        assert!(q.push(7, graph(16), t0));
        assert!(q.push(7, graph(32), t0));
        assert_eq!(q.len(), 1);
        let replan = q.pop().unwrap();
        assert_eq!(replan.tenant, 7);
        assert_eq!(replan.coalesced, 3);
        assert_eq!(replan.graph.tasks()[0].batch_size(), 32, "latest wins");
        assert!(q.pop().is_none());
        assert_eq!(q.events_in(), 3);
        assert_eq!(q.replans_out(), 1);
        assert!((q.coalescing_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tenants_are_served_fifo_by_entry_open_time() {
        let mut q = CoalescingQueue::new();
        let t0 = Instant::now();
        q.push(1, graph(8), t0);
        q.push(2, graph(8), t0);
        // A burst for tenant 1 must not move it behind or ahead of its slot.
        q.push(1, graph(16), t0);
        q.push(3, graph(8), t0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.tenant).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn queue_latency_is_measured_from_the_oldest_event() {
        let mut q = CoalescingQueue::new();
        let t0 = Instant::now();
        q.push(1, graph(8), t0);
        let t1 = Instant::now();
        q.push(1, graph(16), t1);
        assert_eq!(q.pop().unwrap().oldest_submit, t0);
    }

    #[test]
    fn empty_queue_reports_unit_ratio() {
        let q = CoalescingQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!((q.coalescing_ratio() - 1.0).abs() < 1e-12);
    }
}
