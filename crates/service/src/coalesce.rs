//! Re-plan coalescing: folding queued churn events per tenant, drained by
//! deficit round-robin.
//!
//! A tenant whose task mix changes five times while its worker is busy does
//! not need five re-plans — only the *latest* graph matters, because a
//! re-plan always supersedes the plans before it. The [`CoalescingQueue`]
//! encodes exactly that: events are keyed by tenant, a newer event for a
//! pending tenant replaces the pending graph (latest-graph-wins).
//!
//! Pending tenants are drained by *deficit round-robin* (DRR). Each pending
//! entry carries a weight (from the tenant's
//! [`TenantPolicy`](crate::TenantPolicy)) and a deficit counter. [`pop`]
//! visits the entry at the front of the rotation, grants it
//! `quantum × weight` deficit, and serves it if the deficit covers the
//! entry's cost (its graph's operator count); otherwise the entry rotates to
//! the back, keeping its accrued deficit.
//!
//! **Starvation invariant**: a pending entry of cost `C` and weight `w` is
//! served within `ceil(C / (quantum × w))` full rotations of the pending set
//! — the deficit grows by `quantum × w` every rotation and is never reset
//! while pending, so no tenant waits forever behind a chatty neighbour, and
//! over a contended interval each tenant's served operator-cost converges to
//! its weight share. With `quantum = 0` (the default, meaning "one full
//! graph per visit") or any quantum at least the largest cost, equal-weight
//! tenants are served strictly FIFO by entry-open time — DRR degrades to the
//! original drain order, which is what the service uses when fairness is not
//! configured.
//!
//! The queue is a pure, single-threaded data structure — the service's worker
//! threads each own one — which keeps the coalescing semantics deterministic
//! and unit-testable without spawning a thread.
//!
//! [`pop`]: CoalescingQueue::pop

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use spindle_graph::ComputationGraph;

/// One coalesced unit of work: re-plan `tenant` against `graph`.
#[derive(Debug, Clone)]
pub struct CoalescedReplan {
    /// The tenant to re-plan.
    pub tenant: u64,
    /// The tenant's latest submitted graph (earlier pending graphs were
    /// superseded).
    pub graph: Arc<ComputationGraph>,
    /// Churn events folded into this re-plan (≥ 1).
    pub coalesced: usize,
    /// Submission time of the *oldest* folded event — queue latency is
    /// measured from the moment the pending entry was opened, so coalescing
    /// can never hide a tenant's true wait.
    pub oldest_submit: Instant,
}

#[derive(Debug)]
struct Pending {
    graph: Arc<ComputationGraph>,
    coalesced: usize,
    oldest_submit: Instant,
    /// DRR weight of the tenant (≥ 1).
    weight: u32,
    /// Deficit accrued over rotations while waiting to be served.
    deficit: u64,
}

/// A per-worker queue of pending re-plans with latest-graph-wins coalescing,
/// drained by weighted deficit round-robin (see the module docs for the
/// starvation invariant).
#[derive(Debug, Default)]
pub struct CoalescingQueue {
    pending: HashMap<u64, Pending>,
    /// Tenants with a pending entry, in rotation order (initially the order
    /// the entries were opened).
    order: VecDeque<u64>,
    /// DRR quantum in graph operators per visit; `0` means "one full graph
    /// per visit", i.e. strict FIFO for equal weights.
    quantum: u64,
    events_in: u64,
    replans_out: u64,
}

impl CoalescingQueue {
    /// Creates an empty queue draining strictly FIFO (quantum 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue with the given DRR quantum (operators granted
    /// per visit and unit weight). `0` selects strict FIFO draining.
    #[must_use]
    pub fn with_quantum(quantum: u64) -> Self {
        Self {
            quantum,
            ..Self::default()
        }
    }

    /// Records a churn event with unit DRR weight. Returns `true` if the
    /// event was folded into an already pending re-plan.
    pub fn push(&mut self, tenant: u64, graph: Arc<ComputationGraph>, submitted: Instant) -> bool {
        self.push_weighted(tenant, 1, graph, submitted)
    }

    /// Records a churn event: `tenant`'s task mix became `graph` at
    /// `submitted`, and the tenant drains with DRR weight `weight` (clamped
    /// to ≥ 1). Returns `true` if the event was folded into an already
    /// pending re-plan (the pending graph is replaced, the rotation position,
    /// accrued deficit and oldest submission time are kept).
    pub fn push_weighted(
        &mut self,
        tenant: u64,
        weight: u32,
        graph: Arc<ComputationGraph>,
        submitted: Instant,
    ) -> bool {
        self.events_in += 1;
        match self.pending.get_mut(&tenant) {
            Some(pending) => {
                pending.graph = graph;
                pending.coalesced += 1;
                pending.weight = weight.max(1);
                true
            }
            None => {
                self.pending.insert(
                    tenant,
                    Pending {
                        graph,
                        coalesced: 1,
                        oldest_submit: submitted,
                        weight: weight.max(1),
                        deficit: 0,
                    },
                );
                self.order.push_back(tenant);
                false
            }
        }
    }

    /// The cost a pending graph charges against its tenant's deficit.
    fn cost(graph: &ComputationGraph) -> u64 {
        (graph.num_ops() as u64).max(1)
    }

    /// Takes the next re-plan to execute under deficit round-robin: visits
    /// the front of the rotation, grants it `quantum × weight` deficit, and
    /// serves it once the deficit covers its graph's operator count —
    /// rotating it to the back (deficit kept) otherwise. Quantum `0` serves
    /// the front unconditionally (strict FIFO).
    pub fn pop(&mut self) -> Option<CoalescedReplan> {
        // Terminates: every full rotation adds `quantum × weight ≥ 1` to
        // each pending deficit, so some entry qualifies within
        // `max(ceil(cost / (quantum × weight)))` rotations.
        loop {
            let tenant = *self.order.front()?;
            let pending = self
                .pending
                .get_mut(&tenant)
                .expect("order and pending stay in sync");
            if self.quantum > 0 {
                pending.deficit = pending
                    .deficit
                    .saturating_add(self.quantum.saturating_mul(u64::from(pending.weight)));
                if pending.deficit < Self::cost(&pending.graph) {
                    self.order.rotate_left(1);
                    continue;
                }
            }
            self.order.pop_front();
            let pending = self
                .pending
                .remove(&tenant)
                .expect("order and pending stay in sync");
            self.replans_out += 1;
            return Some(CoalescedReplan {
                tenant,
                graph: pending.graph,
                coalesced: pending.coalesced,
                oldest_submit: pending.oldest_submit,
            });
        }
    }

    /// Tenants currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if no re-plan is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Churn events pushed over the queue's lifetime.
    #[must_use]
    pub fn events_in(&self) -> u64 {
        self.events_in
    }

    /// Coalesced re-plans popped over the queue's lifetime.
    #[must_use]
    pub fn replans_out(&self) -> u64 {
        self.replans_out
    }

    /// Lifetime coalescing ratio: events in over re-plans out (1.0 when
    /// nothing was ever coalesced, >1 once bursts were folded).
    #[must_use]
    pub fn coalescing_ratio(&self) -> f64 {
        if self.replans_out == 0 {
            return 1.0;
        }
        self.events_in as f64 / self.replans_out as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};

    fn graph(batch: u32) -> Arc<ComputationGraph> {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text, Modality::Vision], batch);
        let tower = b
            .add_op_chain(
                t,
                OpKind::Encoder(Modality::Text),
                TensorShape::new(batch, 77, 768),
                2,
            )
            .unwrap();
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(batch, 1, 768))
            .unwrap();
        b.add_flow(*tower.last().unwrap(), loss).unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn bursts_for_one_tenant_fold_into_latest_graph() {
        let mut q = CoalescingQueue::new();
        let t0 = Instant::now();
        assert!(!q.push(7, graph(8), t0));
        assert!(q.push(7, graph(16), t0));
        assert!(q.push(7, graph(32), t0));
        assert_eq!(q.len(), 1);
        let replan = q.pop().unwrap();
        assert_eq!(replan.tenant, 7);
        assert_eq!(replan.coalesced, 3);
        assert_eq!(replan.graph.tasks()[0].batch_size(), 32, "latest wins");
        assert!(q.pop().is_none());
        assert_eq!(q.events_in(), 3);
        assert_eq!(q.replans_out(), 1);
        assert!((q.coalescing_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tenants_are_served_fifo_by_entry_open_time() {
        let mut q = CoalescingQueue::new();
        let t0 = Instant::now();
        q.push(1, graph(8), t0);
        q.push(2, graph(8), t0);
        // A burst for tenant 1 must not move it behind or ahead of its slot.
        q.push(1, graph(16), t0);
        q.push(3, graph(8), t0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.tenant).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn queue_latency_is_measured_from_the_oldest_event() {
        let mut q = CoalescingQueue::new();
        let t0 = Instant::now();
        q.push(1, graph(8), t0);
        let t1 = Instant::now();
        q.push(1, graph(16), t1);
        assert_eq!(q.pop().unwrap().oldest_submit, t0);
    }

    #[test]
    fn empty_queue_reports_unit_ratio() {
        let q = CoalescingQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!((q.coalescing_ratio() - 1.0).abs() < 1e-12);
    }

    /// A graph with `layers + 1` operators, to give DRR costs a knob.
    fn graph_with_ops(layers: usize) -> Arc<ComputationGraph> {
        let mut b = GraphBuilder::new();
        let t = b.add_task("t", [Modality::Text], 8);
        let loss = b
            .add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))
            .unwrap();
        if layers > 0 {
            let tower = b
                .add_op_chain(
                    t,
                    OpKind::Encoder(Modality::Text),
                    TensorShape::new(8, 77, 768),
                    layers,
                )
                .unwrap();
            b.add_flow(*tower.last().unwrap(), loss).unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn large_quantum_with_equal_weights_preserves_fifo() {
        // quantum ≥ every cost ⇒ the first visit always serves: DRR must
        // degrade to the entry-open FIFO of the quantum-0 queue.
        let mut q = CoalescingQueue::with_quantum(1_000);
        let t0 = Instant::now();
        q.push(1, graph_with_ops(9), t0);
        q.push(2, graph_with_ops(1), t0);
        q.push(3, graph_with_ops(5), t0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.tenant).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn heavier_weights_are_served_earlier_under_contention() {
        // Equal costs (4 ops each), quantum 1: tenant 2's weight 4 covers the
        // cost on its first visit, while 1 and 3 (weight 1) need four
        // rotations — the heavy tenant overtakes its FIFO position.
        let mut q = CoalescingQueue::with_quantum(1);
        let t0 = Instant::now();
        q.push_weighted(1, 1, graph_with_ops(3), t0);
        q.push_weighted(2, 4, graph_with_ops(3), t0);
        q.push_weighted(3, 1, graph_with_ops(3), t0);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|r| r.tenant).collect();
        assert_eq!(
            order,
            vec![2, 1, 3],
            "weight 4 first, then FIFO among equals"
        );
    }

    #[test]
    fn expensive_tenants_wait_proportionally_but_never_starve() {
        // The starvation invariant, measured: a 20-op entry at weight 1 and
        // quantum 1 must be served within ceil(20/1) = 20 rotations even as
        // cheap 1-op tenants keep re-entering the rotation.
        let mut q = CoalescingQueue::with_quantum(1);
        let t0 = Instant::now();
        q.push(99, graph_with_ops(19), t0); // 20 ops
        q.push(1, graph_with_ops(0), t0); // 1 op each
        q.push(2, graph_with_ops(0), t0);
        let mut pops_until_big = 0usize;
        loop {
            let replan = q.pop().expect("queue never empties before 99 is served");
            if replan.tenant == 99 {
                break;
            }
            pops_until_big += 1;
            // The cheap tenants immediately re-enter, simulating chatter.
            q.push(replan.tenant, graph_with_ops(0), Instant::now());
            assert!(
                pops_until_big <= 2 * 20,
                "tenant 99 starved behind chatty cheap tenants"
            );
        }
        // Across the contended interval the cheap tenants shared the drain.
        assert!(
            pops_until_big >= 2,
            "cheap tenants should be served while 99 accrues"
        );
    }

    #[test]
    fn coalescing_updates_weight_but_keeps_deficit_and_slot() {
        let mut q = CoalescingQueue::with_quantum(1);
        let t0 = Instant::now();
        q.push_weighted(1, 1, graph_with_ops(3), t0);
        q.push_weighted(2, 1, graph_with_ops(3), t0);
        // Tenant 1's burst raises its weight mid-wait; its rotation slot and
        // oldest submission survive the fold.
        assert!(q.push_weighted(1, 4, graph_with_ops(7), t0));
        let first = q.pop().unwrap();
        assert_eq!(first.tenant, 1);
        assert_eq!(first.coalesced, 2);
        assert_eq!(first.oldest_submit, t0);
    }
}
