//! Per-tenant fairness: token-bucket rate limits, byte quotas and the weights
//! driving the deficit-round-robin drain of the coalescing queue.
//!
//! Two mechanisms, applied at different points of a submission's life:
//!
//! 1. **Admission** ([`TenantThrottle`]): before a graph reaches a worker
//!    queue, the tenant's token buckets are charged — one bucket counts
//!    *submissions per second*, the other *wire bytes per second* (the byte
//!    cost is [`graph_wire_len`](crate::proto::graph_wire_len), so the TCP
//!    and in-process transports charge identical figures). An empty bucket
//!    rejects with a precise refill hint instead of queueing — a chatty
//!    tenant's backlog never forms.
//! 2. **Drain order** ([`TenantPolicy::weight`]): once admitted, pending
//!    tenants are served by deficit round-robin (see
//!    [`CoalescingQueue`](crate::CoalescingQueue)), so a tenant's share of
//!    worker time is proportional to its weight regardless of its event rate.
//!
//! All state is keyed by explicit [`std::time::Instant`]s, so tests drive
//! time deterministically.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Per-tenant fairness knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Deficit-round-robin weight: the tenant's relative share of worker
    /// time when the queue is contended. Zero is clamped to one.
    pub weight: u32,
    /// Sustained submissions per second (token-bucket refill rate).
    /// `f64::INFINITY` disables the rate limit.
    pub rate: f64,
    /// Burst capacity in submissions (token-bucket depth).
    pub burst: f64,
    /// Sustained wire bytes per second. `f64::INFINITY` disables the quota.
    pub byte_rate: f64,
    /// Burst capacity in wire bytes.
    pub byte_burst: f64,
}

impl TenantPolicy {
    /// No limits and unit weight — the default for unknown tenants.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            weight: 1,
            rate: f64::INFINITY,
            burst: f64::INFINITY,
            byte_rate: f64::INFINITY,
            byte_burst: f64::INFINITY,
        }
    }

    /// Whether any bucket actually limits this tenant.
    #[must_use]
    pub fn is_limited(&self) -> bool {
        self.rate.is_finite() || self.byte_rate.is_finite()
    }

    /// The DRR weight with the zero case clamped away.
    #[must_use]
    pub fn effective_weight(&self) -> u32 {
        self.weight.max(1)
    }
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Service-wide fairness configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FairnessConfig {
    /// Policy applied to tenants without an override.
    pub default_policy: TenantPolicy,
    /// Per-tenant overrides.
    pub overrides: HashMap<u64, TenantPolicy>,
    /// Deficit-round-robin quantum in graph operators per rotation; `0`
    /// selects a quantum large enough that equal-weight tenants are served
    /// strictly FIFO (one full graph per visit).
    pub quantum: u64,
}

impl FairnessConfig {
    /// The policy governing `tenant`.
    #[must_use]
    pub fn policy(&self, tenant: u64) -> TenantPolicy {
        self.overrides
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// Whether any tenant can ever be throttled — the fast-path check that
    /// lets unlimited configurations skip wire-length computation entirely.
    #[must_use]
    pub fn any_limits(&self) -> bool {
        self.default_policy.is_limited() || self.overrides.values().any(TenantPolicy::is_limited)
    }
}

/// One token bucket: `level` tokens at `refreshed`, refilling at `rate`/s
/// up to `burst`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    level: f64,
    rate: f64,
    burst: f64,
    refreshed: Instant,
}

impl Bucket {
    fn new(rate: f64, burst: f64, now: Instant) -> Self {
        Self {
            level: burst,
            rate,
            burst,
            refreshed: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        if self.rate.is_finite() {
            let dt = now.saturating_duration_since(self.refreshed).as_secs_f64();
            self.level = (self.level + dt * self.rate).min(self.burst);
        }
        self.refreshed = now;
    }

    /// Charges `cost` tokens, or reports how long until they will exist.
    fn charge(&mut self, cost: f64, now: Instant) -> Result<(), Duration> {
        if !self.rate.is_finite() {
            return Ok(());
        }
        self.refill(now);
        if self.level >= cost {
            self.level -= cost;
            return Ok(());
        }
        let missing = cost - self.level;
        // A cost above the burst depth can never succeed; hint one full
        // burst-refill period so callers back off hard instead of spinning.
        let wait = if cost > self.burst {
            self.burst / self.rate.max(f64::MIN_POSITIVE)
        } else {
            missing / self.rate.max(f64::MIN_POSITIVE)
        };
        Err(Duration::from_secs_f64(wait.max(1e-6)))
    }
}

/// Admission-control state for every tenant the service has seen.
#[derive(Debug)]
pub struct TenantThrottle {
    config: FairnessConfig,
    buckets: HashMap<u64, (Bucket, Bucket)>,
}

impl TenantThrottle {
    /// Creates a throttle enforcing `config`.
    #[must_use]
    pub fn new(config: FairnessConfig) -> Self {
        Self {
            config,
            buckets: HashMap::new(),
        }
    }

    /// The configuration this throttle enforces.
    #[must_use]
    pub fn config(&self) -> &FairnessConfig {
        &self.config
    }

    /// Whether admission can ever reject — callers skip byte-cost
    /// computation when it cannot.
    #[must_use]
    pub fn enforcing(&self) -> bool {
        self.config.any_limits()
    }

    /// Charges one submission of `bytes` wire bytes to `tenant` at `now`.
    ///
    /// # Errors
    ///
    /// The minimum wait until both buckets would admit the submission.
    /// Nothing is charged on rejection.
    pub fn admit(&mut self, tenant: u64, bytes: usize, now: Instant) -> Result<(), Duration> {
        let policy = self.config.policy(tenant);
        if !policy.is_limited() {
            return Ok(());
        }
        let (events, volume) = self.buckets.entry(tenant).or_insert_with(|| {
            (
                Bucket::new(policy.rate, policy.burst, now),
                Bucket::new(policy.byte_rate, policy.byte_burst, now),
            )
        });
        // Check both before charging either: a rejection must not consume
        // tokens, or a tenant bouncing off one bucket would starve the other.
        let saved = (*events, *volume);
        match events
            .charge(1.0, now)
            .and_then(|()| volume.charge(bytes as f64, now))
        {
            Ok(()) => Ok(()),
            Err(wait) => {
                (*events, *volume) = saved;
                events.refill(now);
                volume.refill(now);
                Err(wait)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn unlimited_tenants_are_never_throttled() {
        let mut throttle = TenantThrottle::new(FairnessConfig::default());
        assert!(!throttle.enforcing());
        let now = t0();
        for i in 0..10_000 {
            assert!(throttle.admit(7, 1 << 20, now).is_ok(), "submission {i}");
        }
    }

    #[test]
    fn rate_limit_enforces_burst_then_refill() {
        let mut config = FairnessConfig::default();
        config.overrides.insert(
            1,
            TenantPolicy {
                rate: 10.0,
                burst: 3.0,
                ..TenantPolicy::unlimited()
            },
        );
        let mut throttle = TenantThrottle::new(config);
        assert!(throttle.enforcing());
        let start = t0();
        // The burst admits exactly three back-to-back submissions.
        for _ in 0..3 {
            throttle.admit(1, 0, start).unwrap();
        }
        let wait = throttle.admit(1, 0, start).unwrap_err();
        // One token refills in 100 ms at 10/s.
        assert!(wait >= Duration::from_millis(99), "hint was {wait:?}");
        assert!(wait <= Duration::from_millis(101), "hint was {wait:?}");
        // After the hinted wait the submission is admitted.
        throttle.admit(1, 0, start + wait).unwrap();
        // An unrelated tenant is untouched.
        throttle.admit(2, 0, start).unwrap();
    }

    #[test]
    fn byte_quota_charges_wire_bytes() {
        let config = FairnessConfig {
            default_policy: TenantPolicy {
                byte_rate: 1000.0,
                byte_burst: 2500.0,
                ..TenantPolicy::unlimited()
            },
            ..FairnessConfig::default()
        };
        let mut throttle = TenantThrottle::new(config);
        let start = t0();
        throttle.admit(1, 1000, start).unwrap();
        throttle.admit(1, 1000, start).unwrap();
        // 500 bytes left; a 1000-byte graph must wait for ~500 more.
        let wait = throttle.admit(1, 1000, start).unwrap_err();
        assert!(wait >= Duration::from_millis(499), "hint was {wait:?}");
        assert!(wait <= Duration::from_millis(501), "hint was {wait:?}");
        // The rejected attempt consumed nothing: a 500-byte graph still fits.
        throttle.admit(1, 500, start).unwrap();
    }

    #[test]
    fn oversized_costs_hint_a_full_refill_not_forever() {
        let config = FairnessConfig {
            default_policy: TenantPolicy {
                byte_rate: 100.0,
                byte_burst: 50.0,
                ..TenantPolicy::unlimited()
            },
            ..FairnessConfig::default()
        };
        let mut throttle = TenantThrottle::new(config);
        // A 1000-byte graph can never fit a 50-byte bucket; the hint is the
        // bucket's own refill period, not ten seconds.
        let wait = throttle.admit(1, 1000, t0()).unwrap_err();
        assert!(wait <= Duration::from_secs(1), "hint was {wait:?}");
    }

    #[test]
    fn policy_lookup_prefers_overrides() {
        let mut config = FairnessConfig {
            default_policy: TenantPolicy {
                weight: 2,
                ..TenantPolicy::unlimited()
            },
            ..FairnessConfig::default()
        };
        config.overrides.insert(
            9,
            TenantPolicy {
                weight: 7,
                ..TenantPolicy::unlimited()
            },
        );
        assert_eq!(config.policy(9).weight, 7);
        assert_eq!(config.policy(1).weight, 2);
        assert_eq!(
            TenantPolicy {
                weight: 0,
                ..TenantPolicy::unlimited()
            }
            .effective_weight(),
            1
        );
    }
}
