//! # spindle-service
//!
//! Planning as a service: a long-lived, multi-tenant daemon over
//! [`SpindleSession`](spindle_core::SpindleSession)s.
//!
//! A single session already makes online re-planning cheap — warm curve
//! caches, structural splicing, placed-skeleton reuse. This crate scales that
//! to a *fleet*: hundreds of tenants, each with its own churn process,
//! planned by a fixed pool of worker threads. Three mechanisms carry the
//! load:
//!
//! * **Sharding** — tenants map onto workers by rendezvous (highest-random-
//!   weight) hashing over stable worker keys; each worker owns its tenants'
//!   sessions outright, so per-tenant re-plans are FIFO and no lock is ever
//!   taken on a session. Stable keys make [`PlanService::resize`] cheap:
//!   re-sharding moves only the tenants whose highest-scoring key changed.
//! * **Coalescing** — workers drain their queue greedily between re-plans
//!   and fold queued events per tenant ([`CoalescingQueue`]): a burst of N
//!   churn events costs one re-plan against the latest graph, not N. Under
//!   contention the queue drains by deficit round-robin, weighted by the
//!   service's [`FairnessConfig`].
//! * **Backpressure & fairness** — worker queues are bounded; when one is
//!   full, [`PlanService::submit`] rejects with a retry hint instead of
//!   buffering without limit, and per-tenant token buckets
//!   ([`TenantThrottle`]) reject over-quota tenants before they reach a
//!   queue at all. Combined with the session caches' byte budgets
//!   (see [`PlannerConfig`](spindle_core::PlannerConfig)), the daemon's
//!   memory stays bounded no matter how long it runs.
//!
//! Remote callers speak a versioned, length-prefixed binary protocol
//! ([`proto`]-module framing) to a [`TcpIngress`] built on a nonblocking
//! `std::net` listener; in-process callers use [`LocalClient`]. Both
//! implement [`ServiceApi`] and produce bit-identical plan fingerprints for
//! the same submissions, which the `loadgen` binary proves on every run.
//!
//! The `loadgen` binary replays seeded multi-tenant traces
//! ([`TenantFleet`](spindle_workloads::TenantFleet)) against a service and
//! reports latency percentiles, coalescing ratio and throughput in the
//! repository's bench-report format.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use spindle_cluster::ClusterSpec;
//! use spindle_graph::{GraphBuilder, Modality, OpKind, TensorShape};
//! use spindle_service::{PlanService, ServiceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let t = b.add_task("tenant-42", [Modality::Vision, Modality::Text], 8);
//! let tower = b.add_op_chain(t, OpKind::Encoder(Modality::Vision), TensorShape::new(8, 197, 768), 4)?;
//! let loss = b.add_op(t, OpKind::ContrastiveLoss, TensorShape::new(8, 1, 768))?;
//! b.add_flow(*tower.last().unwrap(), loss)?;
//! let graph = Arc::new(b.build()?);
//!
//! let (service, completions) = PlanService::start(
//!     ClusterSpec::homogeneous(1, 8),
//!     ServiceConfig { workers: 2, queue_depth: 16, ..ServiceConfig::default() },
//! );
//! service.submit(42, graph)?;
//! let done = completions.recv()?;
//! assert_eq!(done.tenant, 42);
//! done.result?.plan.validate()?;
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod api;
pub mod backoff;
mod coalesce;
mod fairness;
mod listener;
pub mod proto;
mod service;

pub use api::{ApiCompletion, LocalClient, ServiceApi, TcpClient};
pub use backoff::{Backoff, BACKOFF_CAP, MIN_RETRY_HINT};
pub use coalesce::{CoalescedReplan, CoalescingQueue};
pub use fairness::{FairnessConfig, TenantPolicy, TenantThrottle};
pub use listener::TcpIngress;
pub use proto::{
    ErrorCode, FrameDecoder, ReplanSummary, Request, Response, WireError, WireStats, PROTO_VERSION,
};
pub use service::{Completion, PlanService, ServiceConfig, ServiceStats, SubmitError};
