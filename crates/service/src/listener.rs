//! The TCP front end: a nonblocking listener feeding a [`PlanService`].
//!
//! One acceptor thread owns the listener, every connection's buffers *and*
//! the service; connections never touch a worker thread directly. The loop
//! is plain `std::net` in nonblocking mode — accept what's pending, pump
//! each connection's reads through its [`FrameDecoder`], route finished
//! re-plans back to the tenant's connection, and back off adaptively when
//! nothing moved: a burst of bare yields first (a reply is usually one
//! scheduler quantum away), then sleeps that double from 20 µs up to a 2 ms
//! cap, reset by any progress. A busy loop keeps sub-quantum latency; a
//! long-idle one parks in millisecond naps instead of waking 5000 times a
//! second. Partial frames stay buffered per connection; a malformed or
//! oversized frame kills *only* its connection (after a best-effort
//! [`Response::Error`]) and never a worker.
//!
//! Protocol discipline: the first frame of every connection must be
//! [`Request::Hello`]; anything else — or an unsupported version — draws an
//! error and a close. After a [`Request::Shutdown`] (or
//! [`TcpIngress::shutdown`]) the service drains every accepted event, the
//! remaining [`Response::PlanReady`] frames are delivered, and every
//! connection receives a final [`Response::Stats`] before the socket closes.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use spindle_cluster::ClusterSpec;

use crate::proto::{ErrorCode, FrameDecoder, ReplanSummary, Request, Response, PROTO_VERSION};
use crate::{Completion, PlanService, ServiceConfig, ServiceStats, SubmitError};

/// Idle rounds the acceptor spends merely yielding before it starts
/// sleeping.
const IDLE_SPINS: u32 = 64;

/// First (shortest) idle sleep once the yield burst is exhausted.
const IDLE_SLEEP_MIN: Duration = Duration::from_micros(20);

/// Ceiling on one idle sleep. Bounds worst-case wake-up latency after a
/// long-idle stretch while keeping the parked acceptor near zero CPU.
const IDLE_SLEEP_MAX: Duration = Duration::from_millis(2);

/// Adaptive idle strategy of the acceptor loop: spin (yield) while traffic
/// is likely imminent, then exponentially longer sleeps up to
/// [`IDLE_SLEEP_MAX`]. Any progress resets the escalation.
#[derive(Debug, Default)]
struct IdleBackoff {
    idle_rounds: u32,
}

/// What the acceptor should do after `idle_rounds` consecutive rounds with
/// no progress: `None` yields, `Some(d)` sleeps `d`.
fn idle_pause(idle_rounds: u32) -> Option<Duration> {
    if idle_rounds <= IDLE_SPINS {
        return None;
    }
    let doublings = (idle_rounds - IDLE_SPINS - 1).min(7);
    Some(
        IDLE_SLEEP_MIN
            .saturating_mul(1 << doublings)
            .min(IDLE_SLEEP_MAX),
    )
}

impl IdleBackoff {
    fn reset(&mut self) {
        self.idle_rounds = 0;
    }

    fn wait(&mut self) {
        self.idle_rounds = self.idle_rounds.saturating_add(1);
        match idle_pause(self.idle_rounds) {
            None => std::thread::yield_now(),
            Some(pause) => std::thread::sleep(pause),
        }
    }
}

/// A running TCP ingress: the listener, its acceptor thread and the
/// [`PlanService`] behind them.
#[derive(Debug)]
pub struct TcpIngress {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<ServiceStats>>,
}

impl TcpIngress {
    /// Binds `addr`, starts a [`PlanService`] for `cluster` and spawns the
    /// acceptor thread. Bind to port 0 to let the OS pick
    /// (see [`Self::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any socket error while binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cluster: impl Into<Arc<ClusterSpec>>,
        config: ServiceConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (service, completions) = PlanService::start(cluster, config);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("spindle-ingress".to_string())
            .spawn(move || serve(&listener, service, &completions, &stop_flag))
            .expect("spawning the ingress acceptor thread");
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the listener is bound to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the ingress: the service drains every accepted event, open
    /// connections receive their remaining re-plans plus a final
    /// [`Response::Stats`], and the acceptor thread exits. Returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop.store(true, Ordering::Release);
        self.handle
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for TcpIngress {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One client connection's state inside the acceptor loop.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Bytes queued for writing; drained opportunistically (`WouldBlock`
    /// keeps the remainder).
    outbuf: Vec<u8>,
    /// Offset of the unwritten suffix of `outbuf`.
    written: usize,
    hello_done: bool,
    /// Marked on protocol violations and IO errors; the connection closes
    /// after a final flush.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            written: 0,
            hello_done: false,
            dead: false,
        })
    }

    /// Reads everything currently available; returns `true` if any byte
    /// arrived.
    fn pump_reads(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        let mut any = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return any;
                }
                Ok(n) => {
                    self.decoder.extend(&chunk[..n]);
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return any,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return any;
                }
            }
        }
    }

    fn queue(&mut self, response: &Response) {
        self.outbuf.extend_from_slice(&response.encode());
    }

    /// Writes as much of the out-buffer as the socket takes right now.
    fn flush(&mut self) -> bool {
        let mut any = false;
        while self.written < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.written == self.outbuf.len() && self.written > 0 {
            self.outbuf.clear();
            self.written = 0;
        }
        any
    }

    /// Final delivery for a dying or closing connection: block until the
    /// out-buffer is on the wire (errors just abandon the remainder).
    fn flush_blocking(&mut self) {
        if self.written >= self.outbuf.len() {
            return;
        }
        if self.stream.set_nonblocking(false).is_ok() {
            let _ = self.stream.write_all(&self.outbuf[self.written..]);
        }
        self.outbuf.clear();
        self.written = 0;
    }

    /// Whether this connection can be reaped.
    fn finished(&self) -> bool {
        self.dead && self.written >= self.outbuf.len()
    }
}

/// Converts a worker completion into its wire form.
fn plan_ready(done: &Completion) -> Response {
    Response::PlanReady {
        tenant: done.tenant,
        outcome: done
            .result
            .as_ref()
            .map(ReplanSummary::of)
            .unwrap_or_default(),
        error: done.result.as_ref().err().map(ToString::to_string),
        topology_change: done.topology_change,
        coalesced: done.coalesced as u32,
        queue_wait_ns: done.queue_wait.as_nanos() as u64,
        plan_time_ns: done.plan_time.as_nanos() as u64,
    }
}

/// Delivers `done` to the connection of its tenant's latest submitter (a
/// vanished connection just drops the frame — the work is already counted).
fn route(done: &Completion, conns: &mut [Option<Conn>], owner: &HashMap<u64, usize>) {
    let Some(&idx) = owner.get(&done.tenant) else {
        return;
    };
    if let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) {
        if !conn.dead {
            conn.queue(&plan_ready(done));
        }
    }
}

/// Handles one decoded request on `conn`. Returns `true` when the client
/// asked the whole ingress to shut down.
fn handle_request(
    request: Request,
    conn: &mut Conn,
    idx: usize,
    service: &PlanService,
    owner: &mut HashMap<u64, usize>,
) -> bool {
    if !conn.hello_done && !matches!(request, Request::Hello { .. }) {
        conn.queue(&Response::Error {
            code: ErrorCode::HelloRequired,
            message: "first frame must be Hello".to_string(),
        });
        conn.dead = true;
        return false;
    }
    match request {
        Request::Hello { proto_version } => {
            if proto_version == PROTO_VERSION {
                conn.hello_done = true;
                conn.queue(&Response::HelloAck {
                    proto_version: PROTO_VERSION,
                });
            } else {
                conn.queue(&Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!("server speaks version {PROTO_VERSION}, not {proto_version}"),
                });
                conn.dead = true;
            }
        }
        Request::SubmitGraph { tenant, graph } => {
            // Latest submitter wins the tenant's completion stream.
            owner.insert(tenant, idx);
            match service.submit(tenant, graph) {
                Ok(()) => conn.queue(&Response::Accepted { tenant }),
                Err(SubmitError::QueueFull { retry_hint }) => conn.queue(&Response::Rejected {
                    tenant,
                    retry_hint_ns: retry_hint.as_nanos() as u64,
                    throttled: false,
                }),
                Err(SubmitError::Throttled { retry_hint }) => conn.queue(&Response::Rejected {
                    tenant,
                    retry_hint_ns: retry_hint.as_nanos() as u64,
                    throttled: true,
                }),
                Err(SubmitError::WorkerGone) => conn.queue(&Response::Error {
                    code: ErrorCode::Unavailable,
                    message: "no worker is alive".to_string(),
                }),
            }
        }
        Request::Topology { removed, restored } => {
            match service.submit_topology(&removed, &restored) {
                Ok(workers) => conn.queue(&Response::TopologyAck {
                    workers: workers as u32,
                }),
                Err(_) => conn.queue(&Response::Error {
                    code: ErrorCode::Unavailable,
                    message: "no worker is alive".to_string(),
                }),
            }
        }
        Request::Stats => conn.queue(&Response::Stats(service.stats().into())),
        Request::Shutdown => return true,
    }
    false
}

/// The acceptor loop: runs until the owner's stop flag or a client
/// `Shutdown`, then drains the service and returns the final stats.
fn serve(
    listener: &TcpListener,
    service: PlanService,
    completions: &Receiver<Completion>,
    stop: &AtomicBool,
) -> ServiceStats {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut owner: HashMap<u64, usize> = HashMap::new();
    let mut shutdown_requested = false;
    let mut idle = IdleBackoff::default();
    while !shutdown_requested && !stop.load(Ordering::Acquire) {
        let mut progressed = false;
        // Accept whatever is pending.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if let Ok(conn) = Conn::new(stream) {
                        progressed = true;
                        match conns.iter().position(Option::is_none) {
                            Some(slot) => conns[slot] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Pump every connection: reads, frames, writes.
        for (idx, slot) in conns.iter_mut().enumerate() {
            let Some(mut conn) = slot.take() else {
                continue;
            };
            progressed |= conn.pump_reads();
            while !conn.dead && !shutdown_requested {
                match conn.decoder.next_frame() {
                    Ok(Some(payload)) => {
                        progressed = true;
                        match Request::decode(&payload) {
                            Ok(request) => {
                                shutdown_requested |=
                                    handle_request(request, &mut conn, idx, &service, &mut owner);
                            }
                            Err(e) => {
                                conn.queue(&Response::Error {
                                    code: ErrorCode::Malformed,
                                    message: e.to_string(),
                                });
                                conn.dead = true;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Unframeable stream (oversized prefix): this
                        // connection is done, the workers never noticed.
                        conn.queue(&Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        });
                        conn.dead = true;
                    }
                }
            }
            progressed |= conn.flush();
            if conn.dead {
                conn.flush_blocking();
            }
            if !conn.finished() {
                *slot = Some(conn);
            }
        }
        // Route finished re-plans back to their tenants' connections.
        while let Ok(done) = completions.try_recv() {
            progressed = true;
            route(&done, &mut conns, &owner);
        }
        if progressed {
            idle.reset();
        } else {
            idle.wait();
        }
    }
    // Drain: the service plans every accepted event before its workers
    // exit; dropping it disconnects the completion channel, so the loop
    // below terminates with nothing lost.
    let stats = service.shutdown();
    for done in completions.iter() {
        route(&done, &mut conns, &owner);
    }
    let final_stats = Response::Stats(stats.into());
    for conn in conns.iter_mut().flatten() {
        if !conn.dead {
            conn.queue(&final_stats);
        }
        conn.flush_blocking();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_pause_spins_then_escalates_to_the_cap() {
        for round in 0..=IDLE_SPINS {
            assert_eq!(idle_pause(round), None, "round {round} should yield");
        }
        assert_eq!(idle_pause(IDLE_SPINS + 1), Some(IDLE_SLEEP_MIN));
        let mut last = Duration::ZERO;
        for round in IDLE_SPINS + 1..IDLE_SPINS + 64 {
            let pause = idle_pause(round).expect("past the yield burst");
            assert!(pause >= IDLE_SLEEP_MIN && pause <= IDLE_SLEEP_MAX);
            assert!(
                pause >= last,
                "round {round}: {pause:?} shrank from {last:?}"
            );
            last = pause;
        }
        assert_eq!(last, IDLE_SLEEP_MAX, "escalation must reach the cap");
        assert_eq!(idle_pause(u32::MAX), Some(IDLE_SLEEP_MAX));
    }

    #[test]
    fn progress_resets_the_escalation() {
        let mut idle = IdleBackoff {
            idle_rounds: IDLE_SPINS + 32,
        };
        idle.reset();
        assert_eq!(idle.idle_rounds, 0);
        idle.wait();
        assert_eq!(idle.idle_rounds, 1);
    }
}
